"""Integration tests for Chang-Roberts leader election."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EMPTY_STORE,
    Multiset,
    Store,
    check_program_refinement,
    combine,
    instance_summary,
    pa,
)
from repro.protocols import changroberts as cr


def test_default_ids_are_a_permutation():
    for n in range(2, 7):
        assert sorted(cr.default_ids(n)) == list(range(1, n + 1))


def test_atomic_program_elects_max():
    n = 4
    summary = instance_summary(cr.make_atomic(n), cr.initial_global(n))
    assert not summary.can_fail
    assert summary.final_globals
    assert all(cr.spec_holds(g, n) for g in summary.final_globals)


def test_handler_forward_drop_elect():
    n = 3
    program = cr.make_atomic(n)
    g0 = cr.initial_global(n, ids=(2, 1, 3))
    channels = g0["CH"]
    # node 2 (id 1) holding message 2: forwards to node 3.
    g = g0.set("CH", channels.set(2, channels[2].add(2)))
    [t] = program["Handle"].outcomes(combine(g, Store({"j": 2})))
    assert 2 in t.new_global["CH"][3]
    assert t.created == Multiset([pa("Handle", j=3)])
    # node 3 (id 3) holding message 2: drops.
    g = g0.set("CH", channels.set(3, channels[3].add(2)))
    [t] = program["Handle"].outcomes(combine(g, Store({"j": 3})))
    assert not t.created
    assert not t.new_global["leader"][3]
    # node 3 holding its own id: becomes leader.
    g = g0.set("CH", channels.set(3, channels[3].add(3)))
    [t] = program["Handle"].outcomes(combine(g, Store({"j": 3})))
    assert t.new_global["leader"][3]


def test_upstream_threat_detection():
    n = 3
    g0 = cr.initial_global(n, ids=(1, 2, 3))
    # Pending Init(3): id 3 would be forwarded everywhere; node 2 is
    # threatened through node 1.
    g = g0.set("pendingAsyncs", Multiset([pa("Init", i=3)]))
    assert cr.upstream_threat(combine(g, Store()), 2, n)
    # A small message at node 2 cannot pass node 3: node 1 is safe from it.
    channels = g0["CH"]
    g = g0.set("CH", channels.set(2, channels[2].add(1))).set(
        "pendingAsyncs", Multiset([pa("Handle", j=2)])
    )
    assert not cr.upstream_threat(combine(g, Store()), 1, n)


def test_two_is_applications_pass():
    report = cr.verify(n=4)
    assert report.ok, report.summary()
    assert report.num_is_applications == 2  # the Table 1 count


def test_transformed_program_refines():
    n = 3
    applications = cr.make_sequentializations(n)
    original = applications[0][1].program
    final = applications[1][1].apply_and_drop()
    oracle = check_program_refinement(
        original, final, [(cr.initial_global(n), EMPTY_STORE)]
    )
    assert oracle.holds


@pytest.mark.parametrize("ids", list(itertools.permutations((1, 2, 3))))
def test_all_id_placements_at_n3(ids):
    report = cr.verify(n=3, ids=ids, ground_truth=True)
    assert report.ok, report.summary()


@given(st.permutations(list(range(1, 5))))
@settings(max_examples=8, deadline=None)
def test_random_id_permutations_at_n4(ids):
    report = cr.verify(n=4, ids=tuple(ids), ground_truth=False)
    assert report.ok


def test_invalid_ids_rejected():
    with pytest.raises(ValueError):
        cr.initial_global(3, ids=(1, 1, 2))
