"""Cross-protocol properties: every protocol's IS pipeline obeys the same
meta-level contracts (the soundness theorem, exercised uniformly)."""

import random

import pytest

from repro.core import initial_config, instance_summary, random_execution
from repro.engine import rewrite_execution
from repro.protocols import (
    broadcast,
    changroberts,
    nbuyer,
    pingpong,
    prodcons,
    twophase,
)

# (name, applications builder, initial global) at tiny instances.
CASES = [
    (
        "broadcast",
        lambda: [("one-shot", broadcast.make_sequentialization(2))],
        broadcast.initial_global(2),
    ),
    (
        "pingpong",
        lambda: [("all", pingpong.make_sequentialization(2))],
        pingpong.initial_global(2),
    ),
    (
        "prodcons",
        lambda: [("all", prodcons.make_sequentialization(2))],
        prodcons.initial_global(2),
    ),
    (
        "nbuyer",
        lambda: nbuyer.make_sequentializations(2),
        nbuyer.initial_global(2),
    ),
    (
        "changroberts",
        lambda: changroberts.make_sequentializations(3),
        changroberts.initial_global(3),
    ),
    (
        "twophase",
        lambda: twophase.make_sequentializations(2),
        twophase.initial_global(2),
    ),
]


@pytest.mark.parametrize("name,builder,initial", CASES, ids=[c[0] for c in CASES])
def test_final_states_preserved_by_sequentialization(name, builder, initial):
    """Trans(P) = Trans(P') on the instance: the sequentialization neither
    loses nor invents terminating behaviours here (the IS guarantee is
    one-sided; equality additionally shows our invariants are tight)."""
    applications = builder()
    original = applications[0][1].program
    final_program = applications[-1][1].apply_and_drop()
    s_orig = instance_summary(original, initial)
    s_seq = instance_summary(final_program, initial)
    assert not s_orig.can_fail
    assert not s_seq.can_fail
    assert s_orig.final_globals == s_seq.final_globals


@pytest.mark.parametrize(
    "name,builder,initial",
    [c for c in CASES if len(c[1]()) == 1],
    ids=[c[0] for c in CASES if len(c[1]()) == 1],
)
def test_random_executions_rewrite(name, builder, initial):
    """Lemma 4.3, concretely: random terminating executions rewrite into a
    single step of M' with identical final configuration."""
    [(_, application)] = builder()
    rng = random.Random(17)
    init = initial_config(initial)
    rewritten = 0
    for _ in range(60):
        execution = random_execution(application.program, init, rng)
        if not execution.terminating:
            continue
        result = rewrite_execution(application, execution)
        assert result.execution.final == execution.final
        rewritten += 1
        if rewritten >= 5:
            break
    assert rewritten >= 5


@pytest.mark.parametrize("name,builder,initial", CASES, ids=[c[0] for c in CASES])
def test_ghost_mirrors_pending_multiset(name, builder, initial):
    """The ghost variable equals Ω in every reachable configuration — the
    well-formedness underpinning the GhostContext discipline."""
    from repro.core import explore

    applications = builder()
    program = applications[0][1].program
    result = explore(program, [initial_config(initial)])
    for config in result.reachable:
        assert config.glob["pendingAsyncs"] == config.pending
