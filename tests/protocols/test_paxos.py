"""Integration tests for single-decree Paxos (Figure 4)."""

import pytest

from repro.core import (
    EMPTY_STORE,
    Multiset,
    Store,
    check_program_refinement,
    combine,
    instance_summary,
    pa,
)
from repro.protocols import paxos


def test_quorum_is_majority():
    assert paxos.is_quorum(frozenset({1, 2}), 3)
    assert not paxos.is_quorum(frozenset({1}), 3)
    assert paxos.is_quorum(frozenset({1, 2}), 2)


def test_atomic_program_safe():
    summary = instance_summary(
        paxos.make_atomic(1, 3), paxos.initial_global(1, 3)
    )
    assert not summary.can_fail
    assert all(paxos.spec_holds(g, 1) for g in summary.final_globals)


def test_decisions_and_stalls_both_reachable():
    """Message loss means rounds may stall; without loss they decide."""
    summary = instance_summary(
        paxos.make_atomic(1, 3), paxos.initial_global(1, 3)
    )
    decided = [g for g in summary.final_globals if g["decision"][1] is not None]
    stalled = [g for g in summary.final_globals if g["decision"][1] is None]
    assert decided and stalled


def test_join_respects_higher_rounds():
    program = paxos.make_atomic(2, 2)
    g = paxos.initial_global(2, 2)
    joined = g["joinedNodes"].set(2, frozenset({1}))
    g = g.set("joinedNodes", joined)
    outcomes = program["Join"].outcomes(combine(g, Store({"r": 1, "n": 1})))
    # Node 1 has joined round 2: it may only drop the round-1 join.
    assert len(outcomes) == 1
    assert outcomes[0].new_global["joinedNodes"][1] == frozenset()


def test_propose_adopts_highest_prior_vote():
    program = paxos.make_atomic(2, 3)
    g = paxos.initial_global(2, 3)
    g = g.set("voteInfo", g["voteInfo"].set(1, (7, frozenset({1, 2}))))
    g = g.set(
        "joinedNodes", g["joinedNodes"].set(2, frozenset({1, 2, 3}))
    )
    outcomes = program["Propose"].outcomes(combine(g, Store({"r": 2})))
    proposals = [
        t.new_global["voteInfo"][2][0]
        for t in outcomes
        if t.new_global["voteInfo"][2] is not None
    ]
    assert proposals
    # Every quorum of {1,2,3} intersects the voters {1,2}: value is forced.
    assert set(proposals) == {7}


def test_propose_free_choice_without_prior_votes():
    program = paxos.make_atomic(1, 3, values=(1, 2))
    g = paxos.initial_global(1, 3)
    g = g.set("joinedNodes", g["joinedNodes"].set(1, frozenset({1, 2})))
    outcomes = program["Propose"].outcomes(combine(g, Store({"r": 1})))
    proposals = {
        t.new_global["voteInfo"][1][0]
        for t in outcomes
        if t.new_global["voteInfo"][1] is not None
    }
    assert proposals == {1, 2}


def test_propose_gate_forbids_second_proposal():
    program = paxos.make_atomic(1, 2)
    g = paxos.initial_global(1, 2)
    g = g.set("voteInfo", g["voteInfo"].set(1, (1, frozenset())))
    assert not program["Propose"].gate(combine(g, Store({"r": 1})))


def test_vote_requires_matching_proposal_and_freshness():
    program = paxos.make_atomic(2, 2)
    g = paxos.initial_global(2, 2)
    g = g.set("voteInfo", g["voteInfo"].set(1, (9, frozenset())))
    # Node 1 joined round 2: its round-1 vote can only be dropped.
    g2 = g.set("joinedNodes", g["joinedNodes"].set(2, frozenset({1})))
    outcomes = program["Vote"].outcomes(combine(g2, Store({"r": 1, "n": 1, "v": 9})))
    assert all(t.new_global["voteInfo"][1][1] == frozenset() for t in outcomes)
    # Fresh node: the vote branch exists.
    outcomes = program["Vote"].outcomes(combine(g, Store({"r": 1, "n": 1, "v": 9})))
    assert any(t.new_global["voteInfo"][1][1] == frozenset({1}) for t in outcomes)


def test_conclude_requires_vote_quorum():
    program = paxos.make_atomic(1, 3)
    g = paxos.initial_global(1, 3)
    g = g.set("voteInfo", g["voteInfo"].set(1, (5, frozenset({1}))))
    outcomes = program["Conclude"].outcomes(combine(g, Store({"r": 1, "v": 5})))
    assert all(t.new_global["decision"][1] is None for t in outcomes)
    g = g.set("voteInfo", g["voteInfo"].set(1, (5, frozenset({1, 2}))))
    outcomes = program["Conclude"].outcomes(combine(g, Store({"r": 1, "v": 5})))
    assert any(t.new_global["decision"][1] == 5 for t in outcomes)


def test_propose_abs_gate_matches_figure_4c():
    program = paxos.make_atomic(2, 2)
    abstractions = paxos.make_abstractions(2, 2, program)
    g = paxos.initial_global(2, 2)
    # Pending Join of round <= r: gate must reject (lines 23-24).
    g_busy = g.set("pendingAsyncs", Multiset([pa("Join", r=1, n=1), pa("Propose", r=1)]))
    assert not abstractions["Propose"].gate(combine(g_busy, Store({"r": 1})))
    g_quiet = g.set("pendingAsyncs", Multiset([pa("Propose", r=1), pa("Join", r=2, n=1)]))
    assert abstractions["Propose"].gate(combine(g_quiet, Store({"r": 1})))


def test_is_conditions_pass_r1():
    report = paxos.verify(rounds=1, num_nodes=3)
    assert report.ok, report.summary()
    assert report.num_is_applications == 1  # the Table 1 count


def test_ground_truth_refinement_r1():
    app = paxos.make_sequentialization(1, 3)
    oracle = check_program_refinement(
        app.program, app.apply(), [(paxos.initial_global(1, 3), EMPTY_STORE)]
    )
    assert oracle.holds


@pytest.mark.slow
def test_is_conditions_pass_r2():
    """The multi-round instance exercises the cross-round interference
    that the Figure 4(c) abstraction gates exist for."""
    report = paxos.verify(rounds=2, num_nodes=2)
    assert report.ok, report.summary()


@pytest.mark.slow
def test_ground_truth_refinement_r2():
    app = paxos.make_sequentialization(2, 2)
    oracle = check_program_refinement(
        app.program, app.apply(), [(paxos.initial_global(2, 2), EMPTY_STORE)]
    )
    assert oracle.holds


@pytest.mark.slow
def test_nondet_round_count_variant():
    """The paper's 'arbitrary number of StartRound tasks': Main creates a
    nondeterministically chosen number of rounds. The policy-derived
    invariant covers every round count, and the IS conditions still hold."""
    from repro.core import EMPTY_STORE
    from repro.core.context import GhostContext
    from repro.core.universe import StoreUniverse
    from repro.core.semantics import initial_config
    from repro.protocols.common import GHOST

    app = paxos.make_sequentialization(2, 2, nondet_rounds=True)
    universe = StoreUniverse.from_reachable(
        app.program, [initial_config(paxos.initial_global(2, 2))]
    ).with_context(GhostContext(GHOST))
    assert app.check(universe).holds
    oracle = check_program_refinement(
        app.program, app.apply(), [(paxos.initial_global(2, 2), EMPTY_STORE)]
    )
    assert oracle.holds


@pytest.mark.slow
def test_sampled_universe_r2_n3():
    report = paxos.verify_sampled(rounds=2, num_nodes=3, walks=60, seed=4)
    assert report.ok, report.summary()
    # A sampled PASS is a bounded check and must say so.
    assert report.bounded
    assert "bounded" in report.summary()


def test_exhaustive_verify_is_not_bounded():
    report = paxos.verify(rounds=1, num_nodes=1, ground_truth=False)
    assert report.ok
    assert not report.bounded
    assert "bounded" not in report.summary()


def test_symmetry_spec_declares_node_and_value_sorts():
    spec = paxos.make_symmetry(2, 3)
    assert spec.order() == 12  # 3! nodes x 2! values
    assert spec.sorts["node"] == (1, 2, 3)
    assert spec.sorts["value"] == (1, 2)


@pytest.mark.slow
def test_exhaustive_quotiented_r2_n3():
    """The headline the symmetry quotient exists for: Paxos at R=2, N=3
    discharged over the *full* reachable universe (folded to orbit
    representatives, |G| = 12) — previously only checkable as a
    random-walk bounded instance. ~2-3 minutes serial."""
    report = paxos.verify(
        rounds=2, num_nodes=3, ground_truth=False, symmetry=True
    )
    assert report.status == "OK", report.summary()
    assert not report.bounded
    assert report.parameters["symmetry"] == "paxos-r2-n3"


def test_spec_accepts_partial_decisions():
    g = paxos.initial_global(3, 2)
    g = g.set("decision", g["decision"].update({1: 5, 3: 5}))
    assert paxos.spec_holds(g, 3)
    g = g.set("decision", g["decision"].set(3, 6))
    assert not paxos.spec_holds(g, 3)
