"""Integration tests for two-phase commit with early abort."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EMPTY_STORE,
    Multiset,
    Store,
    check_program_refinement,
    combine,
    instance_summary,
)
from repro.protocols import twophase
from repro.protocols.twophase import ABORT, COMMIT, NO, YES


def test_atomic_program_correct():
    n = 3
    summary = instance_summary(twophase.make_atomic(n), twophase.initial_global(n))
    assert not summary.can_fail
    assert all(twophase.spec_holds(g, n) for g in summary.final_globals)


def test_both_outcomes_reachable():
    n = 2
    summary = instance_summary(twophase.make_atomic(n), twophase.initial_global(n))
    decisions = {g["decision"] for g in summary.final_globals}
    assert decisions == {COMMIT, ABORT}


def test_early_abort_leaves_votes_undelivered():
    """With an abort, some yes-votes may remain in the coordinator channel
    forever — the early-abort optimization at work."""
    n = 3
    summary = instance_summary(twophase.make_atomic(n), twophase.initial_global(n))
    leftovers = [
        g
        for g in summary.final_globals
        if g["decision"] == ABORT and len(g["CH"]["coord"]) > 0
    ]
    assert leftovers, "expected aborts that skipped vote collection"


def test_collect_early_abort_transition():
    n = 3
    program = twophase.make_atomic(n)
    g = twophase.initial_global(n)
    channels = g["CH"]
    g = g.set("CH", channels.set("coord", channels["coord"].add(NO).add(YES)))
    outcomes = program["CollectVotes"].outcomes(combine(g, Store({"j": 0})))
    aborts = [t for t in outcomes if t.new_global["decision"] == ABORT]
    continues = [t for t in outcomes if t.new_global["decision"] is None]
    assert aborts and continues
    # The abort immediately spawns the decision broadcast.
    assert any(
        p.action == "BroadcastDecision"
        for t in aborts
        for p in t.created.support()
    )


def test_commit_requires_all_votes():
    n = 2
    program = twophase.make_atomic(n)
    g = twophase.initial_global(n)
    channels = g["CH"]
    g = g.set("CH", channels.set("coord", channels["coord"].add(YES)))
    outcomes = program["CollectVotes"].outcomes(combine(g, Store({"j": 1})))
    assert all(t.new_global["decision"] == COMMIT for t in outcomes)


def test_decision_handlers_concurrent_with_request_handlers():
    """A participant can learn the decision before voting: after an early
    abort, HandleDecision(i) and HandleRequest(i) are both pending."""
    from repro.core import explore, initial_config

    n = 2
    program = twophase.make_atomic(n)
    result = explore(program, [initial_config(twophase.initial_global(n))])
    both_pending = [
        c
        for c in result.reachable
        for i in (1, 2)
        if any(p.action == "HandleRequest" and p.locals["i"] == i for p in c.pending.support())
        and any(p.action == "HandleDecision" and p.locals["i"] == i for p in c.pending.support())
    ]
    assert both_pending


def test_four_is_applications_pass():
    report = twophase.verify(n=3)
    assert report.ok, report.summary()
    assert report.num_is_applications == 4  # the Table 1 count


def test_transformed_program_refines():
    applications = twophase.make_sequentializations(2)
    original = applications[0][1].program
    final = applications[-1][1].apply_and_drop()
    oracle = check_program_refinement(
        original, final, [(twophase.initial_global(2), EMPTY_STORE)]
    )
    assert oracle.holds


def test_spec_rejects_mixed_finalizations():
    from repro.core import FrozenDict

    g = twophase.initial_global(2).update({"decision": COMMIT})
    g = g.set("finalized", FrozenDict({1: COMMIT, 2: ABORT}))
    g = g.set("vote", FrozenDict({1: YES, 2: YES}))
    assert not twophase.spec_holds(g, 2)


def test_spec_rejects_commit_without_unanimity():
    from repro.core import FrozenDict

    g = twophase.initial_global(2).update({"decision": COMMIT})
    g = g.set("finalized", FrozenDict({1: COMMIT, 2: COMMIT}))
    g = g.set("vote", FrozenDict({1: YES, 2: NO}))
    assert not twophase.spec_holds(g, 2)


@given(st.integers(min_value=1, max_value=3))
@settings(max_examples=3, deadline=None)
def test_scales_over_participants(n):
    assert twophase.verify(n=n, ground_truth=(n <= 2)).ok
