"""Integration tests for Ping-Pong."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EMPTY_STORE,
    Multiset,
    Store,
    check_program_refinement,
    combine,
    instance_summary,
    pa,
)
from repro.protocols import pingpong


def test_atomic_program_asserts_hold():
    summary = instance_summary(pingpong.make_atomic(3), pingpong.initial_global(3))
    assert not summary.can_fail
    assert all(pingpong.spec_holds(g, 3) for g in summary.final_globals)


def test_pong_gate_rejects_wrong_number():
    program = pingpong.make_atomic(2)
    g = pingpong.initial_global(2).set("pong_ch", Multiset([7]))
    assert not program["Pong"].gate(combine(g, Store({"x": 1})))
    assert program["Pong"].gate(combine(g, Store({"x": 7})))


def test_await_gate_rejects_wrong_ack():
    program = pingpong.make_atomic(2)
    g = pingpong.initial_global(2).set("ping_ch", Multiset([5]))
    assert not program["PingAwait"].gate(combine(g, Store({"x": 1})))


def test_handlers_block_on_empty_channels():
    program = pingpong.make_atomic(2)
    g = pingpong.initial_global(2)
    assert program["Pong"].outcomes(combine(g, Store({"x": 1}))) == []
    assert program["PingAwait"].outcomes(combine(g, Store({"x": 1}))) == []


def test_abstractions_are_nonblocking_where_gated():
    program = pingpong.make_atomic(2)
    abstractions = pingpong.make_abstractions(2, program)
    g = pingpong.initial_global(2).set("pong_ch", Multiset([1]))
    state = combine(g, Store({"x": 1}))
    assert abstractions["Pong"].gate(state)
    assert abstractions["Pong"].outcomes(state)


def test_measure_decreases_across_rounds():
    measure = pingpong.make_measure(3)
    from repro.core import Config

    before = Config(pingpong.initial_global(3), Multiset([pa("Pong", x=1)]))
    after = Config(pingpong.initial_global(3), Multiset([pa("Pong", x=2)]))
    assert measure.decreases(before, after)


def test_is_conditions_pass():
    report = pingpong.verify(rounds=3)
    assert report.ok, report.summary()
    assert report.num_is_applications == 1  # the Table 1 count


def test_transformed_program_refines():
    app = pingpong.make_sequentialization(2)
    oracle = check_program_refinement(
        app.program, app.apply(), [(pingpong.initial_global(2), EMPTY_STORE)]
    )
    assert oracle.holds


def test_sequentialization_alternates():
    """In the policy-driven schedule the channels never hold more than one
    message — the alternation of the paper's description."""
    app = pingpong.make_sequentialization(3)
    sigma = pingpong.initial_global(3)
    for t in app.invariant.outcomes(sigma):
        assert len(t.new_global["ping_ch"]) + len(t.new_global["pong_ch"]) <= 1


@given(st.integers(min_value=1, max_value=4))
@settings(max_examples=4, deadline=None)
def test_scales_over_rounds(rounds):
    assert pingpong.verify(rounds=rounds, ground_truth=(rounds <= 3)).ok
