"""Cross-layer tests: fine-grained implementations P1 refine the atomic
programs P2 (the CIVL step that precedes IS).

The layers may use different variable representations — most prominently
Paxos, where the implementation's ``acceptorState``/``joinChannel``/
``voteChannel`` are hidden behind the abstract ``joinedNodes``/``voteInfo``
(Section 5.2); the refinement is then checked on a shared observation view
(the decision map), exactly as a client would use ``Paxos'``.
"""

import pytest

from repro.core import EMPTY_STORE, Store, initial_config
from repro.lang import build_finegrained, summarize_module
from repro.protocols import broadcast, paxos, pingpong, prodcons
from repro.reduction import check_layer_refinement


class TestBroadcast:
    def test_p1_refines_p2(self):
        n = 2
        module = broadcast.make_module(n)
        p1 = build_finegrained(module)
        p2 = broadcast.make_atomic(n)
        g0 = broadcast.initial_global(n)
        check = check_layer_refinement(
            p1,
            p2,
            [(g0, module.initial_main_locals(), EMPTY_STORE)],
            hidden_vars=("pendingAsyncs",),
        )
        assert check.holds

    def test_summarized_module_refines_handwritten(self):
        n = 2
        module = broadcast.make_module(n)
        summarized = summarize_module(module)
        p2 = broadcast.make_atomic(n)
        g0 = broadcast.initial_global(n)
        check = check_layer_refinement(
            summarized, p2, [(g0, EMPTY_STORE, EMPTY_STORE)]
        )
        assert check.holds


class TestPingPong:
    def test_p1_refines_p2_modulo_channel_representation(self):
        rounds = 2
        module = pingpong.make_module(rounds)
        p1 = build_finegrained(module)
        p2 = pingpong.make_atomic(rounds)

        def impl_view(final: Store) -> Store:
            channels = final["CHS"]
            return Store(
                {
                    "last_ping": final["last_ping"],
                    "last_pong": final["last_pong"],
                    "ping": channels["ping"],
                    "pong": channels["pong"],
                }
            )

        def abstract_view(final: Store) -> Store:
            return Store(
                {
                    "last_ping": final["last_ping"],
                    "last_pong": final["last_pong"],
                    "ping": final["ping_ch"],
                    "pong": final["pong_ch"],
                }
            )

        check = check_layer_refinement(
            p1,
            p2,
            [
                (
                    pingpong.initial_impl_global(rounds),
                    module.initial_main_locals(),
                    pingpong.initial_global(rounds),
                    EMPTY_STORE,
                )
            ],
            concrete_view=impl_view,
            abstract_view=abstract_view,
        )
        assert check.holds

    def test_p1_asserts_hold(self):
        from repro.core import explore

        rounds = 2
        module = pingpong.make_module(rounds)
        p1 = build_finegrained(module)
        init = initial_config(
            pingpong.initial_impl_global(rounds), module.initial_main_locals()
        )
        result = explore(p1, [init])
        assert not result.can_fail
        assert result.final_globals


class TestProdCons:
    def test_p1_refines_p2_modulo_queue_representation(self):
        bound = 3
        module = prodcons.make_module(bound)
        p1 = build_finegrained(module)
        p2 = prodcons.make_atomic(bound)

        def impl_view(final: Store) -> Store:
            return Store({"consumed": final["consumed"], "queue": final["Q"]["q"]})

        def abstract_view(final: Store) -> Store:
            return Store({"consumed": final["consumed"], "queue": final["queue"]})

        check = check_layer_refinement(
            p1,
            p2,
            [
                (
                    prodcons.initial_impl_global(bound),
                    module.initial_main_locals(),
                    prodcons.initial_global(bound),
                    EMPTY_STORE,
                )
            ],
            concrete_view=impl_view,
            abstract_view=abstract_view,
        )
        assert check.holds


class TestChangRoberts:
    def test_p1_refines_p2(self):
        n = 3
        from repro.protocols import changroberts as cr

        module = cr.make_module(n)
        p1 = build_finegrained(module)
        p2 = cr.make_atomic(n)
        g0 = cr.initial_global(n)
        check = check_layer_refinement(
            p1,
            p2,
            [(g0, module.initial_main_locals(), EMPTY_STORE)],
            hidden_vars=("pendingAsyncs",),
        )
        assert check.holds

    def test_p1_elects_the_max(self):
        from repro.core import explore
        from repro.protocols import changroberts as cr

        n = 3
        module = cr.make_module(n)
        p1 = build_finegrained(module)
        init = initial_config(cr.initial_global(n), module.initial_main_locals())
        result = explore(p1, [init])
        assert not result.can_fail
        assert all(cr.spec_holds(g, n) for g in result.final_globals)


class TestTwoPhase:
    def test_p1_refines_p2(self):
        from repro.protocols import twophase

        n = 2
        module = twophase.make_module(n)
        p1 = build_finegrained(module)
        p2 = twophase.make_atomic(n)
        g0 = twophase.initial_global(n)
        check = check_layer_refinement(
            p1,
            p2,
            [(g0, module.initial_main_locals(), EMPTY_STORE)],
            hidden_vars=("pendingAsyncs",),
        )
        assert check.holds

    def test_p1_consistent_and_early_aborts(self):
        from repro.core import explore
        from repro.protocols import twophase

        n = 2
        module = twophase.make_module(n)
        p1 = build_finegrained(module)
        init = initial_config(twophase.initial_global(n), module.initial_main_locals())
        result = explore(p1, [init])
        assert not result.can_fail
        assert all(twophase.spec_holds(g, n) for g in result.final_globals)
        assert any(
            g["decision"] == twophase.ABORT and len(g["CH"]["coord"]) > 0
            for g in result.final_globals
        )


class TestNBuyer:
    def test_p1_refines_p2(self):
        from repro.protocols import nbuyer

        n = 2
        module = nbuyer.make_module(n)
        p1 = build_finegrained(module)
        p2 = nbuyer.make_atomic(n)
        g0 = nbuyer.initial_global(n)
        check = check_layer_refinement(
            p1,
            p2,
            [(g0, module.initial_main_locals(), EMPTY_STORE)],
            hidden_vars=("pendingAsyncs",),
        )
        assert check.holds

    def test_p1_spec_holds(self):
        from repro.core import explore
        from repro.protocols import nbuyer

        n = 2
        module = nbuyer.make_module(n)
        p1 = build_finegrained(module)
        init = initial_config(nbuyer.initial_global(n), module.initial_main_locals())
        result = explore(p1, [init])
        assert not result.can_fail
        assert all(nbuyer.spec_holds(g, n) for g in result.final_globals)


class TestPaxos:
    def test_implementation_refines_abstract_on_decisions(self):
        R, N = 1, 2
        module = paxos.make_module(R, N)
        p1 = build_finegrained(module)
        p2 = paxos.make_atomic(R, N)
        check = check_layer_refinement(
            p1,
            p2,
            [
                (
                    paxos.initial_impl_global(R, N),
                    module.initial_main_locals(),
                    paxos.initial_global(R, N),
                    EMPTY_STORE,
                )
            ],
            concrete_view=paxos.impl_decision_view,
            abstract_view=paxos.impl_decision_view,
            name="Paxos impl ≼ abstract (decision view)",
        )
        assert check.holds

    def test_implementation_reaches_both_decisions_and_stalls(self):
        from repro.core import explore

        R, N = 1, 2
        module = paxos.make_module(R, N)
        p1 = build_finegrained(module)
        init = initial_config(
            paxos.initial_impl_global(R, N), module.initial_main_locals()
        )
        result = explore(p1, [init])
        views = {paxos.impl_decision_view(g)["decision"][1] for g in result.final_globals}
        assert views == {None, 1, 2}

    @pytest.mark.slow
    def test_implementation_refines_abstract_three_acceptors(self):
        R, N = 1, 3
        module = paxos.make_module(R, N)
        p1 = build_finegrained(module)
        p2 = paxos.make_atomic(R, N)
        check = check_layer_refinement(
            p1,
            p2,
            [
                (
                    paxos.initial_impl_global(R, N),
                    module.initial_main_locals(),
                    paxos.initial_global(R, N),
                    EMPTY_STORE,
                )
            ],
            concrete_view=paxos.impl_decision_view,
            abstract_view=paxos.impl_decision_view,
        )
        assert check.holds
