"""Integration tests for broadcast consensus (Figure 1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EMPTY_STORE,
    check_program_refinement,
    initial_config,
    instance_summary,
    random_execution,
)
from repro.protocols import broadcast


class TestPrograms:
    def test_initial_global_validates_values(self):
        with pytest.raises(ValueError):
            broadcast.initial_global(3, values=(1, 2))

    def test_atomic_program_terminates_consistently(self):
        n = 3
        summary = instance_summary(
            broadcast.make_atomic(n), broadcast.initial_global(n)
        )
        assert not summary.can_fail
        values = broadcast.default_values(n)
        assert all(
            broadcast.spec_holds(final, n, values)
            for final in summary.final_globals
        )

    def test_collect_blocks_until_n_messages(self):
        n = 2
        program = broadcast.make_atomic(n)
        g0 = broadcast.initial_global(n)
        collect = program["Collect"]
        from repro.core import combine, Store

        assert collect.outcomes(combine(g0, Store({"i": 1}))) == []


class TestOneShotIS:
    def test_conditions_pass(self):
        app = broadcast.make_sequentialization(3)
        universe = broadcast.make_universe(app.program, 3)
        result = app.check(universe)
        assert result.holds, result.report()

    def test_transformed_program_refines(self):
        n = 3
        app = broadcast.make_sequentialization(n)
        oracle = check_program_refinement(
            app.program,
            app.apply(),
            [(broadcast.initial_global(n), EMPTY_STORE)],
        )
        assert oracle.holds

    def test_main_prime_is_single_atomic_summary(self):
        n = 2
        app = broadcast.make_sequentialization(n)
        sequential = app.apply_and_drop()
        summary = instance_summary(sequential, broadcast.initial_global(n))
        values = broadcast.default_values(n)
        assert all(
            broadcast.spec_holds(final, n, values)
            for final in summary.final_globals
        )


class TestIteratedIS:
    def test_both_applications_pass(self):
        report = broadcast.verify(n=3, iterated=True)
        assert report.ok, report.summary()
        assert report.num_is_applications == 2  # the Table 1 count

    def test_second_collect_abs_needs_no_ghost_clause(self):
        """Section 5.3: after eliminating Broadcast, CollectAbs no longer
        needs the 'no pending Broadcasts' gate (line 33 of Figure 1)."""
        apps = broadcast.make_iterated_sequentializations(3)
        weaker_abs = apps[1].abstractions["Collect"]
        from repro.core import Store, combine, Multiset, pa

        # A store with a Broadcast still pending: the one-shot CollectAbs
        # gate rejects it, the iterated one accepts it.
        g = broadcast.initial_global(3).set(
            "pendingAsyncs", Multiset([pa("Broadcast", i=1), pa("Collect", i=1)])
        )
        channels = g["CH"]
        full = channels.set(1, channels[1].add(1).add(2).add(3))
        g = g.set("CH", full)
        state = combine(g, Store({"i": 1}))
        assert weaker_abs.gate(state)
        strict = broadcast.make_collect_abs(3, require_no_broadcasts=True)
        assert not strict.gate(state)


class TestVerifyPipeline:
    def test_one_shot_report(self):
        report = broadcast.verify(n=2, iterated=False)
        assert report.ok
        assert report.num_is_applications == 1
        assert "broadcast" in report.summary()

    @given(st.integers(min_value=2, max_value=4))
    @settings(max_examples=3, deadline=None)
    def test_scales_over_n(self, n):
        assert broadcast.verify(n=n, iterated=False, ground_truth=(n < 4)).ok

    @given(
        st.lists(
            st.integers(min_value=-5, max_value=5), min_size=3, max_size=3, unique=True
        )
    )
    @settings(max_examples=5, deadline=None)
    def test_arbitrary_value_assignments(self, values):
        report = broadcast.verify(
            n=3, values=values, iterated=False, ground_truth=False
        )
        assert report.ok


def test_random_executions_reach_only_spec_states():
    """Property: any random scheduler run of the *concurrent* program ends
    in a state the sequentialization also reaches (refinement, sampled)."""
    n = 3
    app = broadcast.make_sequentialization(n)
    sequential = app.apply_and_drop()
    init = initial_config(broadcast.initial_global(n))
    seq_finals = instance_summary(sequential, broadcast.initial_global(n)).final_globals
    rng = random.Random(0)
    for _ in range(20):
        execution = random_execution(app.program, init, rng)
        if execution.terminating:
            assert execution.final.glob in seq_finals
