"""Failure injection: seeded protocol bugs must be caught by the pipeline.

Each mutation models a realistic implementation mistake; the corresponding
detection point differs (sequential spec, gate failure, deadlock, IS
condition), which is itself part of what these tests document.
"""

from repro.core import (
    Action,
    pa,
    ISApplication,
    Multiset,
    Store,
    Transition,
    choice_from_policy,
    instance_summary,
    invariant_from_policy,
)
from repro.protocols import broadcast, changroberts, paxos, prodcons, twophase
from repro.protocols.common import GHOST, ghost_step, sub_multisets


def test_broadcast_undercounting_collect_caught():
    """Collect that decides after n-1 messages can decide a non-maximal
    value: the sequential spec (and the ground truth) reject it."""
    n = 3
    program = broadcast.make_atomic(n)

    def buggy_transitions(state):
        i = state["i"]
        channel = state["CH"][i]
        if len(channel) < n - 1:
            return
        for received in sub_multisets(channel, n - 1):
            new_global = (
                state.restrict(broadcast.GLOBAL_VARS)
                .update(
                    {
                        "CH": state["CH"].set(i, channel - received),
                        "decision": state["decision"].set(i, max(received)),
                        GHOST: ghost_step(
                            state,
                            pa(
                                "Collect", i=i
                            ),
                        ),
                    }
                )
            )
            yield Transition(new_global)

    buggy = program.with_action(
        "Collect", Action("Collect", lambda _s: True, buggy_transitions, ("i",))
    )
    summary = instance_summary(buggy, broadcast.initial_global(n))
    values = broadcast.default_values(n)
    assert not all(
        broadcast.spec_holds(final, n, values) for final in summary.final_globals
    )


def test_twophase_off_by_one_commit_caught():
    """A coordinator committing after n-1 yes votes violates 'commit only
    with unanimity' — caught by the spec on the concurrent program and on
    the sequentialization alike."""
    n = 3
    program = twophase.make_atomic(n)
    original = program["CollectVotes"]

    def buggy_transitions(state):
        j = state["j"]
        channels = state["CH"]
        for vote in channels["coord"].support():
            drained = channels.set("coord", channels["coord"].remove(vote))
            if vote == twophase.NO:
                yield from original.transitions(state)
                return
            # BUG: commit one vote early (j + 2 instead of j + 1).
            if j + 2 >= n:
                created = Multiset(
                    [pa("BroadcastDecision")]
                )
                new_global = state.restrict(twophase.GLOBAL_VARS).update(
                    {
                        "decision": twophase.COMMIT,
                        "CH": drained,
                        GHOST: ghost_step(state, pa("CollectVotes", j=j), created),
                    }
                )
                yield Transition(new_global, created)
            else:
                created = Multiset([pa("CollectVotes", j=j + 1)])
                new_global = state.restrict(twophase.GLOBAL_VARS).update(
                    {"CH": drained, GHOST: ghost_step(state, pa("CollectVotes", j=j), created)}
                )
                yield Transition(new_global, created)

    buggy = program.with_action(
        "CollectVotes",
        Action("CollectVotes", original.gate, buggy_transitions, ("j",)),
    )
    summary = instance_summary(buggy, twophase.initial_global(n))
    assert not all(twophase.spec_holds(g, n) for g in summary.final_globals)


def test_paxos_ignoring_prior_votes_caught():
    """A proposer that always proposes a fresh value (ignoring reported
    votes) breaks agreement across rounds; the sequentialization's spec
    catches the conflict."""
    R, N = 2, 3
    program = paxos.make_atomic(R, N, values=(1, 2))
    from itertools import combinations

    def buggy_transitions(state):
        r = state["r"]
        ghost_only = state.restrict(paxos.GLOBAL_VARS).set(
            GHOST,
            ghost_step(
                state, pa("Propose", r=r)
            ),
        )
        yield Transition(ghost_only)
        joined = state["joinedNodes"][r]
        for size in range(1, len(joined) + 1):
            for ns in combinations(sorted(joined), size):
                if not paxos.is_quorum(frozenset(ns), N):
                    continue
                for v in (1, 2):  # BUG: free choice even with prior votes
                    created = [
                        pa(
                            "Vote", r=r, n=n, v=v
                        )
                        for n in range(1, N + 1)
                    ] + [
                        pa(
                            "Conclude", r=r, v=v
                        )
                    ]
                    new_global = state.restrict(paxos.GLOBAL_VARS).update(
                        {
                            "voteInfo": state["voteInfo"].set(r, (v, frozenset())),
                            GHOST: ghost_step(
                                state,
                                pa(
                                    "Propose", r=r
                                ),
                                created,
                            ),
                        }
                    )
                    yield Transition(new_global, Multiset(created))

    buggy = program.with_action(
        "Propose",
        Action("Propose", program["Propose"].gate, buggy_transitions, ("r",)),
    )
    application = paxos.make_sequentialization(R, N)
    buggy_app = ISApplication(
        program=buggy,
        m_name=application.m_name,
        eliminated=application.eliminated,
        invariant=invariant_from_policy(
            buggy, "Main", paxos.make_policy(R, N), name="BuggyInv"
        ),
        measure=application.measure,
        choice=choice_from_policy(paxos.make_policy(R, N)),
        abstractions=paxos.make_abstractions(R, N, buggy),
    )
    sequential = buggy_app.apply_and_drop()
    summary = instance_summary(sequential, paxos.initial_global(R, N))
    assert not all(paxos.spec_holds(g, R) for g in summary.final_globals)


def test_changroberts_greedy_election_caught():
    """Electing on m >= id (instead of strict equality) produces multiple
    leaders."""
    n = 3
    program = changroberts.make_atomic(n)
    original = program["Handle"]

    def buggy_transitions(state):
        j = state["j"]
        own = state["id"][j]
        for t in original.transitions(state):
            yield t
            # BUG: additionally declare leadership on any m >= own id.
            channel = state["CH"][j]
            for message in channel.support():
                if message > own:
                    yield Transition(
                        t.new_global.set(
                            "leader", state["leader"].set(j, True)
                        ),
                        t.created,
                    )

    buggy = program.with_action(
        "Handle", Action("Handle", original.gate, buggy_transitions, ("j",))
    )
    summary = instance_summary(buggy, changroberts.initial_global(n))
    assert not all(changroberts.spec_holds(g, n) for g in summary.final_globals)


def test_prodcons_missing_producer_round_deadlocks():
    """A producer that stops one item early starves the consumer: no
    terminating execution remains, which the pipeline reports as a failing
    sequential spec (empty summary)."""
    bound = 3
    program = prodcons.make_atomic(bound)
    original = program["Produce"]

    def buggy_transitions(state):
        if state["x"] == bound:
            # BUG: drop the final item (and its continuation).
            new_global = state.restrict(prodcons.GLOBAL_VARS).set(
                GHOST,
                ghost_step(
                    state,
                    pa(
                        "Produce", x=state["x"]
                    ),
                ),
            )
            yield Transition(new_global)
            return
        yield from original.transitions(state)

    buggy = program.with_action(
        "Produce", Action("Produce", original.gate, buggy_transitions, ("x",))
    )
    summary = instance_summary(buggy, prodcons.initial_global(bound))
    assert not summary.final_globals  # consumer waits forever


def test_pingpong_wrong_assertion_surfaces_in_i3():
    """Failure preservation: a protocol whose assertion is wrong (Pong
    expects x+1) cannot be sequentialized with the failure hidden — the
    gate obligation resurfaces as an I3 violation, mirroring how IS
    propagates potential failures into the invariant's gate (Section 4)."""
    from repro.core import (
        choice_from_policy,
        invariant_from_policy,
    )
    from repro.core.context import GhostContext
    from repro.core.semantics import initial_config
    from repro.core.universe import StoreUniverse
    from repro.protocols import pingpong

    rounds = 2
    program = pingpong.make_atomic(rounds)
    original = program["Pong"]

    def wrong_gate(state):
        return all(y == state["x"] + 1 for y in state["pong_ch"].support())

    buggy = program.with_action(
        "Pong", Action("Pong", wrong_gate, original.transitions, ("x",))
    )
    assert instance_summary(buggy, pingpong.initial_global(rounds)).can_fail

    policy = pingpong.make_policy(rounds)
    application = ISApplication(
        buggy,
        "Main",
        ("Ping", "Pong", "PingAwait"),
        invariant=invariant_from_policy(buggy, "Main", policy),
        measure=pingpong.make_measure(rounds),
        choice=choice_from_policy(policy),
        abstractions=pingpong.make_abstractions(rounds, buggy),
    )
    universe = StoreUniverse.from_reachable(
        buggy, [initial_config(pingpong.initial_global(rounds))]
    ).with_context(GhostContext(GHOST))
    result = application.check(universe)
    assert not result.holds
    assert not result.conditions["I3"].holds
