"""Tests for the shared protocol infrastructure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Multiset, Store, pa
from repro.protocols.common import (
    GHOST,
    ProtocolReport,
    bag_send,
    count_pas_to,
    ghost_of,
    ghost_step,
    has_pa_to,
    sub_multisets,
    timed,
)


def _state(*pending):
    return Store({GHOST: Multiset(pending)})


class TestGhost:
    def test_ghost_of(self):
        assert ghost_of(_state(pa("A"))) == Multiset([pa("A")])

    def test_ghost_step_removes_self_adds_created(self):
        state = _state(pa("A"), pa("B"))
        updated = ghost_step(state, pa("A"), [pa("C")])
        assert updated == Multiset([pa("B"), pa("C")])

    def test_ghost_step_tolerant_removal(self):
        state = _state(pa("B"))
        updated = ghost_step(state, pa("A"), [])
        assert updated == Multiset([pa("B")])

    def test_ghost_step_none_self(self):
        state = _state(pa("B"))
        assert ghost_step(state, None, [pa("C")]).count(pa("C")) == 1

    def test_has_pa_to_and_count(self):
        state = _state(pa("A", i=1), pa("A", i=2), pa("B"))
        assert has_pa_to(state, "A")
        assert not has_pa_to(state, "Z")
        assert count_pas_to(state, "A") == 2


class TestSubMultisets:
    def test_exhaustive_small(self):
        bag = Multiset([1, 1, 2])
        subs = set(sub_multisets(bag, 2))
        assert subs == {Multiset([1, 1]), Multiset([1, 2])}

    def test_size_zero(self):
        assert list(sub_multisets(Multiset([1]), 0)) == [Multiset()]

    def test_oversized_yields_nothing(self):
        assert list(sub_multisets(Multiset([1]), 2)) == []

    @given(st.lists(st.integers(0, 3), max_size=6), st.integers(0, 4))
    def test_all_results_are_included_subsets_of_right_size(self, elems, k):
        bag = Multiset(elems)
        results = list(sub_multisets(bag, k))
        assert len(set(results)) == len(results)  # distinct
        for sub in results:
            assert len(sub) == k
            assert bag.includes(sub)

    @given(st.lists(st.integers(0, 2), min_size=0, max_size=5))
    def test_counts_match_binomial_product(self, elems):
        from math import comb

        bag = Multiset(elems)
        k = len(bag) // 2
        expected_total = 0
        # number of distinct sub-multisets: product over counts is not a
        # simple binomial; verify instead against brute force.
        import itertools

        brute = {
            Multiset(combo)
            for combo in itertools.combinations(sorted(bag), k)
        }
        assert set(sub_multisets(bag, k)) == brute


class TestBagSend:
    def test_appends(self):
        assert bag_send(Multiset(["m"]), "m").count("m") == 2


class TestProtocolReport:
    def test_ok_requires_all_parts(self):
        report = ProtocolReport("p", {})
        assert report.ok  # nothing failed (vacuous)
        report.spec_ok = False
        assert not report.ok

    def test_failed_is_result_blocks_ok(self):
        from repro.core import ISResult
        from repro.core.refinement import CheckResult

        report = ProtocolReport("p", {})
        bad = ISResult({"X": CheckResult("X", False)})
        report.is_results.append(("stage", bad))
        assert not report.ok
        assert "FAIL" in report.summary()

    def test_timed_accumulates(self):
        report = ProtocolReport("p", {})
        with timed(report, "phase"):
            pass
        with timed(report, "phase"):
            pass
        assert report.timings["phase"] >= 0
        assert report.total_time == pytest.approx(
            sum(report.timings.values())
        )


def test_cli_list_and_verify(capsys):
    from repro.__main__ import main

    assert main(["list"]) == 0
    assert "paxos" in capsys.readouterr().out
    assert main(["verify", "prodcons"]) == 0
    assert "producer-consumer" in capsys.readouterr().out
    assert main(["verify", "nope"]) == 2
