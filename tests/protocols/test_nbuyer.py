"""Integration tests for N-Buyer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EMPTY_STORE,
    Store,
    check_program_refinement,
    combine,
    instance_summary,
)
from repro.protocols import nbuyer


def test_atomic_program_correct():
    n = 2
    summary = instance_summary(nbuyer.make_atomic(n), nbuyer.initial_global(n))
    assert not summary.can_fail
    assert all(nbuyer.spec_holds(g, n) for g in summary.final_globals)


def test_order_placed_iff_contributions_cover_price():
    n = 2
    summary = instance_summary(
        nbuyer.make_atomic(n, prices=(2,), contributions=(0, 2)),
        nbuyer.initial_global(n),
    )
    placed = [g for g in summary.final_globals if g["ordered"]]
    skipped = [g for g in summary.final_globals if not g["ordered"]]
    assert placed and skipped
    for g in placed:
        assert g["order_total"] >= g["price"]
    for g in skipped:
        assert g["order_total"] < g["price"]


def test_quote_blocks_before_request():
    program = nbuyer.make_atomic(2)
    state = combine(nbuyer.initial_global(2), Store())
    assert program["Quote"].outcomes(state) == []


def test_decide_blocks_for_all_contributions():
    n = 3
    program = nbuyer.make_atomic(n)
    g = nbuyer.initial_global(n)
    channels = g["CH"]
    partial = channels.set("decide", channels["decide"].add(1).add(1))
    state = combine(g.set("CH", partial), Store())
    assert program["Decide"].outcomes(state) == []  # needs n = 3


def test_four_is_applications_pass():
    report = nbuyer.verify(n=3)
    assert report.ok, report.summary()
    assert report.num_is_applications == 4  # the Table 1 count


def test_transformed_program_refines():
    applications = nbuyer.make_sequentializations(2)
    original = applications[0][1].program
    final = applications[-1][1].apply_and_drop()
    oracle = check_program_refinement(
        original, final, [(nbuyer.initial_global(2), EMPTY_STORE)]
    )
    assert oracle.holds


def test_spec_rejects_mismatched_total():
    n = 2
    g = nbuyer.initial_global(n).update(
        {"ordered": True, "order_total": 99, "price": 1}
    )
    from repro.core import FrozenDict

    g = g.set("contrib", FrozenDict({1: 1, 2: 1}))
    assert not nbuyer.spec_holds(g, n)


@given(
    st.lists(st.integers(1, 4), min_size=1, max_size=2, unique=True),
    st.lists(st.integers(0, 3), min_size=1, max_size=3, unique=True),
)
@settings(max_examples=5, deadline=None)
def test_arbitrary_price_and_contribution_domains(prices, contributions):
    report = nbuyer.verify(
        n=2, prices=prices, contributions=contributions, ground_truth=False
    )
    assert report.ok
