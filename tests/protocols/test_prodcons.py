"""Integration tests for Producer-Consumer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EMPTY_STORE,
    Store,
    check_program_refinement,
    combine,
    explore,
    initial_config,
    instance_summary,
)
from repro.protocols import prodcons


def test_atomic_program_correct():
    summary = instance_summary(prodcons.make_atomic(4), prodcons.initial_global(4))
    assert not summary.can_fail
    assert all(prodcons.spec_holds(g, 4) for g in summary.final_globals)


def test_consumer_gate_is_fifo_order_assertion():
    program = prodcons.make_atomic(3)
    g = prodcons.initial_global(3).set("queue", (2, 1))
    assert not program["Consume"].gate(combine(g, Store({"x": 1})))
    assert program["Consume"].gate(combine(g, Store({"x": 2})))


def test_consumer_blocks_on_empty_queue():
    program = prodcons.make_atomic(3)
    state = combine(prodcons.initial_global(3), Store({"x": 1}))
    assert program["Consume"].gate(state)  # blocking, not failing
    assert program["Consume"].outcomes(state) == []


def test_consumer_abs_requires_nonempty_queue():
    program = prodcons.make_atomic(3)
    abs_action = prodcons.make_consumer_abs(3, program)
    empty = combine(prodcons.initial_global(3), Store({"x": 1}))
    assert not abs_action.gate(empty)
    loaded = combine(
        prodcons.initial_global(3).set("queue", (1,)), Store({"x": 1})
    )
    assert abs_action.gate(loaded)
    assert abs_action.outcomes(loaded)


def test_is_conditions_pass():
    report = prodcons.verify(bound=4)
    assert report.ok, report.summary()
    assert report.num_is_applications == 1  # the Table 1 count


def test_transformed_program_refines():
    app = prodcons.make_sequentialization(3)
    oracle = check_program_refinement(
        app.program, app.apply(), [(prodcons.initial_global(3), EMPTY_STORE)]
    )
    assert oracle.holds


def test_concurrent_queue_grows_sequential_queue_does_not():
    """The paper's headline simplification: concurrently the queue grows to
    the full bound; in the sequential schedule it never exceeds one."""
    bound = 4
    program = prodcons.make_atomic(bound)
    assert prodcons.max_queue_length(program, prodcons.initial_global(bound)) == bound
    app = prodcons.make_sequentialization(bound)
    sigma = prodcons.initial_global(bound)
    assert max(len(t.new_global["queue"]) for t in app.invariant.outcomes(sigma)) <= 1


def test_interleaving_count_collapses():
    """The sequentialization removes all scheduling freedom."""
    bound = 3
    concurrent = prodcons.make_atomic(bound)
    init = initial_config(prodcons.initial_global(bound))
    concurrent_configs = explore(concurrent, [init]).num_configs
    sequential = prodcons.make_sequentialization(bound).apply_and_drop()
    sequential_configs = explore(sequential, [init]).num_configs
    assert sequential_configs < concurrent_configs


@given(st.integers(min_value=1, max_value=5))
@settings(max_examples=5, deadline=None)
def test_scales_over_bound(bound):
    assert prodcons.verify(bound=bound, ground_truth=(bound <= 4)).ok
