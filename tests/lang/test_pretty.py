"""Tests for the mini-CIVL pretty-printer."""

from repro.lang import (
    Assert,
    Assign,
    Assume,
    Async,
    Block,
    C,
    Foreach,
    Havoc,
    If,
    MapAssign,
    Module,
    Procedure,
    Receive,
    Send,
    Skip,
    V,
    While,
    pretty_module,
    pretty_procedure,
    pretty_stmt,
)


def test_simple_statements():
    assert pretty_stmt(Skip()) == "skip"
    assert pretty_stmt(Assign("x", C(1))) == "x := 1"
    assert pretty_stmt(MapAssign("d", V("i"), C(2))) == "d[i] := 2"
    assert "havoc v" in pretty_stmt(Havoc("v", lambda _s: (1,)))
    assert pretty_stmt(Assume(V("x") > C(0))) == "assume (x > 0)"
    assert pretty_stmt(Assert(V("x") == C(0))) == "assert (x == 0)"


def test_channel_statements():
    assert pretty_stmt(Send("CH", V("j"), V("m"))) == "send m CH[j]"
    assert pretty_stmt(Receive("y", "CH", V("i"))) == "y := receive CH[i]"
    assert "[fifo]" in pretty_stmt(Send("Q", C("q"), C(1), kind="fifo"))


def test_async_statement():
    assert pretty_stmt(Async.of("Broadcast", i=V("i"))) == "async Broadcast(i=i)"


def test_control_flow_indentation():
    text = pretty_stmt(
        If.of(V("c"), [Assign("x", C(1))], [While.of(V("c"), [Skip()])])
    )
    lines = text.splitlines()
    assert lines[0].startswith("if ")
    assert lines[1] == "    x := 1"
    assert lines[2] == "else:"
    assert lines[3].startswith("    while ")
    assert lines[4] == "        skip"


def test_foreach_and_block():
    text = pretty_stmt(
        Foreach.of("i", lambda _s: (1, 2), [Block.of(Skip(), Skip())])
    )
    assert text.splitlines()[0] == "for i in <domain>:"
    assert text.count("skip") == 2


def test_procedure_with_linear_class():
    proc = Procedure("Work", ("i",), (Skip(),), linear_class="chain")
    text = pretty_procedure(proc)
    assert text.splitlines()[0] == "proc Work(i):  // linear class: chain"


def test_module_main_first():
    module = Module(
        {
            "Main": Procedure("Main", (), (Async.of("W"),)),
            "W": Procedure("W", (), (Skip(),)),
        },
        global_vars=("x",),
    )
    text = pretty_module(module)
    assert text.index("proc Main") < text.index("proc W")
    assert "// globals: x" in text


def test_broadcast_module_renders_like_figure_1():
    from repro.protocols import broadcast

    text = pretty_module(broadcast.make_module(2))
    assert "proc Main():" in text
    assert "async Broadcast(i=i)" in text
    assert "send value[i] CH[j]" in text
    assert "receive CH[i]" in text
