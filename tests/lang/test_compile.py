"""Tests for atomic summarization (big-step compilation to actions)."""

import pytest

from repro.core import (
    EMPTY,
    EMPTY_STORE,
    Multiset,
    Store,
    instance_summary,
    pa,
)
from repro.core.mapping import FrozenDict
from repro.lang import (
    Assert,
    Assign,
    Async,
    C,
    Foreach,
    Havoc,
    If,
    Module,
    Procedure,
    Receive,
    Send,
    Skip,
    SummaryExplosion,
    V,
    While,
    summarize_module,
    summarize_procedure,
)
from repro.protocols.common import GHOST

GLOBALS = ("x", "CH", GHOST)


def _module(body, locals=None, extra=None):
    procs = {"Main": Procedure("Main", (), tuple(body), locals=dict(locals or {}))}
    procs.update(extra or {})
    return Module(procs, global_vars=GLOBALS)


def _g(x=0, ch=None):
    return Store(
        {
            "x": x,
            "CH": FrozenDict({"c": ch if ch is not None else EMPTY}),
            GHOST: Multiset([pa("Main")]),
        }
    )


def test_summary_single_transition():
    module = _module([Assign("x", V("x") + C(1))])
    action = summarize_procedure(module, module.procedure("Main"))
    [t] = action.outcomes(_g(x=3))
    assert t.new_global["x"] == 4
    assert t.created == EMPTY


def test_summary_enumerates_havoc_branches():
    module = _module([Havoc("x", lambda _s: (1, 2))])
    action = summarize_procedure(module, module.procedure("Main"))
    outs = action.outcomes(_g())
    assert {t.new_global["x"] for t in outs} == {1, 2}


def test_summary_gate_from_assert():
    module = _module([Assert(V("x") > C(0))])
    action = summarize_procedure(module, module.procedure("Main"))
    assert action.gate(_g(x=1))
    assert not action.gate(_g(x=0))


def test_summary_gate_rejects_any_failing_branch():
    module = _module([Havoc("x", lambda _s: (0, 1)), Assert(V("x") > C(0))])
    action = summarize_procedure(module, module.procedure("Main"))
    assert not action.gate(_g(x=5))


def test_summary_blocks_on_empty_receive():
    module = _module([Receive("y", "CH", C("c"))], locals={"y": None})
    action = summarize_procedure(module, module.procedure("Main"))
    assert action.outcomes(_g()) == []
    assert action.gate(_g())  # blocking, not failing


def test_summary_spawns_pas_by_procedure_name():
    worker = Procedure("Work", ("k",), (Skip(),))
    module = _module([Async.of("Work", k=C(9))], extra={"Work": worker})
    action = summarize_procedure(module, module.procedure("Main"))
    [t] = action.outcomes(_g())
    assert t.created == Multiset([pa("Work", k=9)])


def test_summary_maintains_ghost():
    worker = Procedure("Work", ("k",), (Skip(),))
    module = _module([Async.of("Work", k=C(9))], extra={"Work": worker})
    action = summarize_procedure(module, module.procedure("Main"))
    [t] = action.outcomes(_g())
    assert t.new_global[GHOST] == Multiset([pa("Work", k=9)])


def test_summary_loop_and_branch():
    body = [
        Foreach.of(
            "i",
            lambda _s: (1, 2, 3, 4),
            [If.of(V("i") % C(2) == C(0), [Assign("x", V("x") + V("i"))])],
        )
    ]
    module = _module(body)
    action = summarize_procedure(module, module.procedure("Main"))
    [t] = action.outcomes(_g())
    assert t.new_global["x"] == 6


def test_summary_explosion_guard():
    module = _module([While.of(C(True), [Assign("x", V("x") + C(1))])])
    action = summarize_procedure(module, module.procedure("Main"))
    with pytest.raises(SummaryExplosion):
        action.outcomes(_g())


def test_summarize_module_matches_finegrained_behaviour():
    """The summarized program must have the same terminating states as the
    fine-grained program (modulo the ghost, which only it maintains)."""
    from repro.lang import build_finegrained

    worker = Procedure(
        "Work", ("k",), (Send("CH", C("c"), V("k")),)
    )
    collector = Procedure(
        "Collect",
        (),
        (Receive("y", "CH", C("c")), Assign("x", V("x") + V("y"))),
        locals={"y": None},
    )
    module = _module(
        [Async.of("Work", k=C(5)), Async.of("Collect")],
        extra={"Work": worker, "Collect": collector},
    )
    atomic = summarize_module(module)
    fine = build_finegrained(module)
    summary_atomic = instance_summary(atomic, _g())
    init_locals = module.initial_main_locals()
    from repro.core import initial_config, explore

    fine_result = explore(fine, [initial_config(_g(), init_locals)])
    finals_atomic = {g.without([GHOST]) for g in summary_atomic.final_globals}
    finals_fine = {g.without([GHOST]) for g in fine_result.final_globals}
    assert finals_atomic == finals_fine == {
        Store({"x": 5, "CH": FrozenDict({"c": EMPTY})})
    }


def test_summarized_broadcast_equals_handwritten():
    """The summarizer reproduces the hand-written atomic actions of
    Figure 1-② from the Figure 1-① implementation."""
    from repro.protocols import broadcast

    n = 2
    module = broadcast.make_module(n)
    summarized = summarize_module(module)
    handwritten = broadcast.make_atomic(n)
    g0 = broadcast.initial_global(n)
    s1 = instance_summary(summarized, g0)
    s2 = instance_summary(handwritten, g0)
    assert s1.final_globals == s2.final_globals
    assert not s1.can_fail and not s2.can_fail
