"""Tests for the expression AST of the mini-CIVL language."""

import pytest

from repro.core import FrozenDict, Store
from repro.lang import BinOp, C, Call, MapGet, UnOp, V


def test_var_and_const():
    env = Store({"x": 7})
    assert V("x").eval(env) == 7
    assert C(3).eval(env) == 3


def test_missing_var_raises():
    with pytest.raises(KeyError):
        V("nope").eval(Store())


def test_arithmetic_operators():
    env = Store({"x": 7, "y": 3})
    assert (V("x") + V("y")).eval(env) == 10
    assert (V("x") - C(2)).eval(env) == 5
    assert (V("x") * C(2)).eval(env) == 14
    assert (V("x") % C(4)).eval(env) == 3


def test_comparison_operators():
    env = Store({"x": 7})
    assert (V("x") == C(7)).eval(env)
    assert (V("x") != C(8)).eval(env)
    assert (V("x") > C(5)).eval(env)
    assert (V("x") >= C(7)).eval(env)
    assert (V("x") < C(8)).eval(env)
    assert (V("x") <= C(7)).eval(env)


def test_boolean_operators():
    env = Store({"a": True, "b": False})
    assert (V("a") & ~V("b")).eval(env)
    assert (V("b") | V("a")).eval(env)
    assert not (V("a") & V("b")).eval(env)


def test_short_circuit_semantics_of_and_or():
    env = Store({"a": 0, "b": 5})
    assert BinOp("and", V("a"), V("b")).eval(env) is False
    assert BinOp("or", V("a"), V("b")).eval(env) is True


def test_map_get():
    env = Store({"m": FrozenDict({1: "one"}), "k": 1})
    assert MapGet(V("m"), V("k")).eval(env) == "one"


def test_unop_len_max_min():
    env = Store({"xs": (3, 1, 2)})
    assert UnOp("len", V("xs")).eval(env) == 3
    assert UnOp("max", V("xs")).eval(env) == 3
    assert UnOp("min", V("xs")).eval(env) == 1
    assert UnOp("-", C(4)).eval(env) == -4


def test_call_escape_hatch():
    expr = Call("sum3", lambda a, b, c: a + b + c, (C(1), C(2), V("x")))
    assert expr.eval(Store({"x": 3})) == 6
    assert "sum3" in repr(expr)


def test_reprs_are_readable():
    expr = (V("x") + C(1)) > MapGet(V("d"), V("i"))
    text = repr(expr)
    assert "x" in text and "d" in text and ">" in text
