"""Tests for lowering structured statements to flat control flow."""

from repro.lang import (
    Assign,
    Block,
    C,
    CJump,
    Foreach,
    If,
    IterInit,
    IterNext,
    Jump,
    Prim,
    Skip,
    V,
    While,
    lower,
)
from repro.lang.lower import hidden_locals


def test_straight_line():
    instrs = lower([Assign("x", C(1)), Assign("y", C(2))])
    assert len(instrs) == 2
    assert all(isinstance(i, Prim) for i in instrs)


def test_block_flattens():
    instrs = lower([Block.of(Assign("x", C(1)), Assign("y", C(2)))])
    assert len(instrs) == 2


def test_if_without_else():
    instrs = lower([If.of(V("c"), [Assign("x", C(1))]), Assign("y", C(2))])
    cjump = instrs[0]
    assert isinstance(cjump, CJump)
    assert cjump.then == 1
    assert cjump.orelse == 2  # skips over the then-branch


def test_if_with_else():
    instrs = lower(
        [If.of(V("c"), [Assign("x", C(1))], [Assign("x", C(2))]), Skip()]
    )
    cjump = instrs[0]
    assert isinstance(cjump, CJump)
    then_last = instrs[cjump.then + 1 - 1 + 1]
    assert isinstance(instrs[2], Jump)  # jump over the else branch
    assert instrs[2].target == 4
    assert cjump.orelse == 3


def test_while_shape():
    instrs = lower([While.of(V("c"), [Assign("x", V("x") + C(1))])])
    cjump = instrs[0]
    assert isinstance(cjump, CJump)
    assert cjump.orelse == 3  # loop exit past the back-jump
    back = instrs[2]
    assert isinstance(back, Jump) and back.target == 0


def test_foreach_shape_and_hidden_locals():
    instrs = lower(
        [Foreach.of("i", lambda _s: (1, 2), [Assign("x", V("i"))])]
    )
    assert isinstance(instrs[0], IterInit)
    assert isinstance(instrs[1], IterNext)
    assert instrs[1].done == 4
    back = instrs[3]
    assert isinstance(back, Jump) and back.target == 1
    names = hidden_locals(instrs)
    assert instrs[0].it_var in names and instrs[0].ix_var in names
    assert "i" in names


def test_nested_loops_get_distinct_hidden_locals():
    instrs = lower(
        [
            Foreach.of(
                "i",
                lambda _s: (1,),
                [Foreach.of("j", lambda _s: (1,), [Skip()])],
            )
        ]
    )
    inits = [i for i in instrs if isinstance(i, IterInit)]
    assert len(inits) == 2
    assert inits[0].it_var != inits[1].it_var


def test_lower_rejects_unknown_statement():
    import pytest

    class Strange:
        pass

    with pytest.raises(TypeError):
        lower([Strange()])
