"""Tests for the fine-grained semantics of mini-CIVL modules."""

import pytest

from repro.core import (
    EMPTY,
    Multiset,
    Store,
    explore,
    initial_config,
)
from repro.core.mapping import FrozenDict
from repro.lang import (
    Assert,
    Assign,
    Assume,
    Async,
    C,
    Foreach,
    Havoc,
    If,
    MapAssign,
    Module,
    Procedure,
    Receive,
    Send,
    Skip,
    V,
    action_name,
    build_finegrained,
)

GLOBALS = ("x", "CH")


def _module(body, locals=None, extra_procs=None, global_vars=GLOBALS):
    procs = {"Main": Procedure("Main", (), tuple(body), locals=dict(locals or {}))}
    procs.update(extra_procs or {})
    return Module(procs, global_vars=global_vars)


def _run(module, global_store):
    program = build_finegrained(module)
    init = initial_config(global_store, module.initial_main_locals())
    return explore(program, [init])


def _g(x=0, ch=None):
    return Store({"x": x, "CH": FrozenDict({"c": ch if ch is not None else EMPTY})})


def test_assign_global():
    result = _run(_module([Assign("x", C(42))]), _g())
    assert {g["x"] for g in result.final_globals} == {42}


def test_assign_local_then_global():
    module = _module(
        [Assign("t", V("x") + C(1)), Assign("x", V("t") * C(2))], locals={"t": 0}
    )
    result = _run(module, _g(x=3))
    assert {g["x"] for g in result.final_globals} == {8}


def test_map_assign():
    module = _module([MapAssign("CH", C("c"), C("payload"))], global_vars=GLOBALS)
    result = _run(module, _g())
    assert {g["CH"]["c"] for g in result.final_globals} == {"payload"}


def test_havoc_enumerates_choices():
    module = _module([Havoc("x", lambda _s: (1, 2, 3))])
    result = _run(module, _g())
    assert {g["x"] for g in result.final_globals} == {1, 2, 3}


def test_assume_blocks():
    module = _module([Assume(V("x") > C(0)), Assign("x", C(9))])
    result = _run(module, _g(x=0))
    assert result.final_globals == set()
    assert result.deadlocks  # the assume blocks forever


def test_assert_failure():
    module = _module([Assert(V("x") > C(0))])
    result = _run(module, _g(x=0))
    assert result.can_fail


def test_assert_pass():
    module = _module([Assert(V("x") == C(0))])
    result = _run(module, _g(x=0))
    assert not result.can_fail
    assert len(result.final_globals) == 1


def test_send_receive_roundtrip():
    module = _module(
        [Send("CH", C("c"), C("msg")), Receive("y", "CH", C("c")), Assign("x", V("y"))],
        locals={"y": None},
    )
    result = _run(module, _g())
    assert {g["x"] for g in result.final_globals} == {"msg"}
    assert all(len(g["CH"]["c"]) == 0 for g in result.final_globals)


def test_receive_blocks_on_empty_channel():
    module = _module([Receive("y", "CH", C("c"))], locals={"y": None})
    result = _run(module, _g())
    assert result.deadlocks


def test_fifo_receive_delivers_head():
    module = _module(
        [
            Send("CH", C("c"), C(1), kind="fifo"),
            Send("CH", C("c"), C(2), kind="fifo"),
            Receive("y", "CH", C("c"), kind="fifo"),
            Assign("x", V("y")),
        ],
        locals={"y": None},
    )
    g0 = Store({"x": 0, "CH": FrozenDict({"c": ()})})
    result = _run(module, g0)
    assert {g["x"] for g in result.final_globals} == {1}


def test_async_spawns_concurrent_instance():
    worker = Procedure("Work", ("k",), (Assign("x", V("x") + V("k")),))
    module = _module(
        [Async.of("Work", k=C(5)), Async.of("Work", k=C(7))],
        extra_procs={"Work": worker},
    )
    result = _run(module, _g())
    assert {g["x"] for g in result.final_globals} == {12}


def test_foreach_iterates_snapshot():
    module = _module(
        [Foreach.of("i", lambda _s: (1, 2, 3), [Assign("x", V("x") + V("i"))])]
    )
    result = _run(module, _g())
    assert {g["x"] for g in result.final_globals} == {6}


def test_if_branches():
    body = [
        If.of(V("x") > C(0), [Assign("x", C(100))], [Assign("x", C(-100))]),
    ]
    assert {g["x"] for g in _run(_module(body), _g(x=1)).final_globals} == {100}
    assert {g["x"] for g in _run(_module(body), _g(x=0)).final_globals} == {-100}


def test_action_names():
    module = _module([Skip(), Skip()])
    assert action_name(module, "Main", 0) == "Main"
    assert action_name(module, "Main", 1) == "Main#1"


def test_missing_argument_rejected():
    worker = Procedure("Work", ("k",), (Skip(),))
    with pytest.raises(ValueError):
        worker.local_frame({})


def test_empty_body_rejected():
    with pytest.raises(ValueError):
        build_finegrained(
            Module({"Main": Procedure("Main", (), ())}, global_vars=GLOBALS)
        )


def test_module_requires_main():
    with pytest.raises(ValueError):
        Module({"NotMain": Procedure("NotMain", (), (Skip(),))}, global_vars=())
