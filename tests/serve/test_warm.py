"""WarmState: reuse must change wall-clock only, never verdicts."""

from __future__ import annotations

from repro.engine.warm import WarmState
from repro.protocols import broadcast, pingpong


def _typed_verdict(report):
    """Everything a client can act on, with timings stripped."""
    return {
        "name": report.name,
        "status": report.status,
        "ok": report.ok,
        "spec_ok": report.spec_ok,
        "is": [(label, r.holds, r.total_checked)
               for label, r in report.is_results],
        "ground_truth": (
            None if report.ground_truth is None else report.ground_truth.holds
        ),
    }


def test_warm_reports_are_typed_identical_to_cold():
    cold = pingpong.verify(rounds=2)
    warm_state = WarmState()
    first = pingpong.verify(rounds=2, warm=warm_state)
    second = pingpong.verify(rounds=2, warm=warm_state)
    assert _typed_verdict(first) == _typed_verdict(cold)
    assert _typed_verdict(second) == _typed_verdict(cold)


def test_second_warm_run_executes_zero_obligations(tmp_path):
    warm_state = WarmState(rcache=str(tmp_path / "rcache"))
    pingpong.verify(rounds=2, warm=warm_state)
    report = pingpong.verify(rounds=2, warm=warm_state)
    total = cached = resumed = 0
    for _label, result in report.is_results:
        total += result.num_obligations
        cached += len(result.cached_keys)
        resumed += len(result.resumed_keys)
    assert total > 0
    assert total - cached - resumed == 0, (total, cached, resumed)


def test_warm_state_reuses_universes_and_pipelines():
    warm_state = WarmState()
    pingpong.verify(rounds=2, warm=warm_state)
    built = warm_state.stats.universe_builds
    assert built > 0
    pingpong.verify(rounds=2, warm=warm_state)
    assert warm_state.stats.universe_builds == built
    assert warm_state.stats.universe_hits >= built
    assert warm_state.stats.pipeline_hits >= 1


def test_different_instances_do_not_collide():
    warm_state = WarmState()
    two = pingpong.verify(rounds=2, warm=warm_state)
    three = pingpong.verify(rounds=3, warm=warm_state)
    assert two.parameters != three.parameters
    assert _typed_verdict(three) == _typed_verdict(pingpong.verify(rounds=3))


def test_hand_rolled_broadcast_pipeline_supports_warm():
    warm_state = WarmState()
    cold = broadcast.verify(n=2)
    first = broadcast.verify(n=2, warm=warm_state)
    second = broadcast.verify(n=2, warm=warm_state)
    assert _typed_verdict(first) == _typed_verdict(cold)
    assert _typed_verdict(second) == _typed_verdict(cold)
    assert warm_state.stats.universe_hits > 0


def test_eviction_bounds_the_resident_maps():
    warm_state = WarmState(max_entries=1)
    pingpong.verify(rounds=2, warm=warm_state)
    pingpong.verify(rounds=3, warm=warm_state)
    assert len(warm_state._universes) == 1
    assert warm_state.stats.evictions > 0
    # An evicted instance still verifies correctly (it just rebuilds).
    report = pingpong.verify(rounds=2, warm=warm_state)
    assert report.ok


def test_forget_drops_maps_but_keeps_the_rcache(tmp_path):
    warm_state = WarmState(rcache=str(tmp_path / "rcache"))
    pingpong.verify(rounds=2, warm=warm_state)
    rcache = warm_state.rcache
    assert rcache is not None
    warm_state.forget()
    assert warm_state.describe()["universes"] == 0
    assert warm_state.rcache is rcache
    report = pingpong.verify(rounds=2, warm=warm_state)
    assert report.ok
