"""Job model and job journal: validation, fingerprints, restart replay."""

from __future__ import annotations

import json

import pytest

from repro.serve.jobs import (
    JOBS_SCHEMA,
    Job,
    JobRequest,
    JobStore,
    StaleJobStoreError,
)

# ------------------------------------------------------------------ #
# JobRequest validation and canonicalization
# ------------------------------------------------------------------ #


def test_verify_request_round_trips_through_payload():
    request = JobRequest.from_payload(
        {"kind": "verify", "protocol": "pingpong", "params": {"rounds": 4}}
    )
    assert request.describe() == "verify pingpong"
    again = JobRequest.from_payload(request.as_payload())
    assert again == request
    assert again.fingerprint == request.fingerprint


@pytest.mark.parametrize(
    "payload,match",
    [
        ([], "JSON object"),
        ({"kind": "frobnicate"}, "kind must be one of"),
        ({"kind": "verify"}, "'protocol'"),
        ({"kind": "explain"}, "'fixture'"),
        ({"kind": "verify", "protocol": "pingpong", "zzz": 1}, "unknown fields"),
        (
            {"kind": "verify", "protocol": "pingpong", "params": [1]},
            "'params' must be",
        ),
        (
            {
                "kind": "verify",
                "protocol": "pingpong",
                "params": {"rounds": {"nested": 1}},
            },
            "scalar or array",
        ),
        (
            {"kind": "verify", "protocol": "pingpong", "max_configs": 0},
            "max_configs",
        ),
        (
            {"kind": "verify", "protocol": "pingpong", "ground_truth": "yes"},
            "ground_truth",
        ),
    ],
)
def test_malformed_requests_are_rejected_with_presentable_errors(
    payload, match
):
    with pytest.raises(ValueError, match=match):
        JobRequest.from_payload(payload)


def test_fingerprint_ignores_param_order_but_not_values():
    a = JobRequest.from_payload(
        {"kind": "verify", "protocol": "paxos",
         "params": {"rounds": 2, "num_nodes": 2}}
    )
    b = JobRequest.from_payload(
        {"kind": "verify", "protocol": "paxos",
         "params": {"num_nodes": 2, "rounds": 2}}
    )
    c = JobRequest.from_payload(
        {"kind": "verify", "protocol": "paxos",
         "params": {"rounds": 3, "num_nodes": 2}}
    )
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint


# ------------------------------------------------------------------ #
# JobStore journal
# ------------------------------------------------------------------ #


def _job(job_id="job-0001-abc", **payload) -> Job:
    payload.setdefault("kind", "verify")
    payload.setdefault("protocol", "pingpong")
    return Job(id=job_id, request=JobRequest.from_payload(payload))


def test_journal_round_trip_folds_events_newest_wins(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JobStore(path)
    store.open()
    job = _job()
    store.record("submitted", job)
    job.status = "running"
    job.attempts = 1
    store.record("started", job)
    job.status = "done"
    job.result = {"status": "OK", "ok": True}
    store.record("finished", job)
    store.close()

    loaded, events = JobStore.load(path)
    assert [j.id for j in loaded] == [job.id]
    replayed = loaded[0]
    assert replayed.status == "done"
    assert replayed.result == {"status": "OK", "ok": True}
    assert replayed.attempts == 1
    assert [e["event"] for e in events] == ["submitted", "started", "finished"]


def test_unfinished_jobs_are_the_restart_backlog(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JobStore(path)
    store.open()
    finished, interrupted, queued = _job("a"), _job("b"), _job("c")
    for job in (finished, interrupted, queued):
        store.record("submitted", job)
    finished.status = "done"
    store.record("started", finished)
    store.record("finished", finished)
    store.record("started", interrupted)
    store.record("interrupted", interrupted)
    store.close()

    loaded, _ = JobStore.load(path)
    by_id = {j.id: j.status for j in loaded}
    assert by_id == {"a": "done", "b": "interrupted", "c": "queued"}


def test_torn_tail_is_dropped_not_fatal(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JobStore(path)
    store.open()
    job = _job()
    store.record("submitted", job)
    store.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"event": "finished", "id": "job-0001-abc", "stat')

    loaded, _ = JobStore.load(path)
    assert loaded[0].status == "queued"  # the torn 'finished' never lands


def test_fingerprint_mismatch_drops_the_record(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JobStore(path)
    store.open()
    job = _job()
    store.record("submitted", job)
    store.close()
    lines = path.read_text().splitlines()
    record = json.loads(lines[1])
    record["request"]["protocol"] = "paxos"  # tampered: hash no longer matches
    lines[1] = json.dumps(record)
    path.write_text("\n".join(lines) + "\n")

    loaded, _ = JobStore.load(path)
    assert loaded == []


def test_wrong_schema_raises_stale(tmp_path):
    path = tmp_path / "jobs.jsonl"
    path.write_text('{"schema": "someone/elses/v9"}\n')
    with pytest.raises(StaleJobStoreError):
        JobStore.load(path)


def test_reopen_appends_instead_of_truncating(tmp_path):
    path = tmp_path / "jobs.jsonl"
    store = JobStore(path)
    store.open()
    store.record("submitted", _job())
    store.close()
    store = JobStore(path)
    store.open()  # append mode: the header is not rewritten
    store.record("submitted", _job("job-0002-def"))
    store.close()
    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["schema"] == JOBS_SCHEMA
    assert len(lines) == 3
    loaded, _ = JobStore.load(path)
    assert [j.id for j in loaded] == ["job-0001-abc", "job-0002-def"]
