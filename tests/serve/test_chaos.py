"""Crash-consistency drills against a real daemon *process*.

The in-process suite (test_daemon) covers SIGTERM's cooperative drain;
these tests cover the uncooperative end: SIGKILL mid-job — no drain, no
atexit, no flush — then a restart on the same state directory. The
contract is the journals': the job journal re-enqueues the unfinished
job, the obligation checkpoint journal seeds back every outcome that
was appended before the kill (``resumed > 0``), and the rerun's typed
verdict is the ordinary one.

The full randomized chaos soak (worker kills + disk faults under load)
lives in ``benchmarks/chaos_soak.py``; the CI ``chaos-soak`` job runs
it seeded. Here we keep one deterministic kill so the fast lane guards
the recovery path.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"

PINGPONG = {"kind": "verify", "protocol": "pingpong", "params": {"rounds": 2}}


class DaemonProcess:
    """`repro serve` as a real child process on an ephemeral port."""

    def __init__(self, state_dir, env_extra=None, args=()):
        env = os.environ.copy()
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        env.update(env_extra or {})
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--state",
                str(state_dir),
                *args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.base = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on (http://[^ ]+:\d+)", line)
            if match:
                self.base = match.group(1)
                break
        assert self.base, "daemon never announced its port"

    def get(self, path):
        with urllib.request.urlopen(self.base + path, timeout=30) as resp:
            return resp.status, json.load(resp)

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path, data=json.dumps(payload).encode("utf-8")
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.load(resp)

    def wait_status(self, job_id, states, timeout=120.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            _s, detail = self.get(f"/jobs/{job_id}")
            if detail["status"] in states:
                return detail
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} still {detail['status']!r}")

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=30)
        self.proc.stdout.close()

    def terminate(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30)
        self.proc.stdout.close()


def _checkpoint_lines(state_dir) -> int:
    """Outcome records across every per-job checkpoint journal."""
    total = 0
    for path in Path(state_dir).glob("ckpt/*/*.jsonl"):
        total += max(0, len(path.read_text().splitlines()) - 1)  # - header
    return total


@pytest.mark.real_protocol
def test_sigkill_midjob_restart_reenqueues_and_resumes(tmp_path):
    """SIGKILL — not SIGTERM — while an obligation hangs: nothing gets
    to flush or journal an 'interrupted' record. The restarted daemon
    must rebuild the backlog purely from what already hit disk."""
    daemon = DaemonProcess(
        tmp_path, env_extra={"REPRO_FAULTS": "I2=hang"}
    )
    try:
        _status, accepted = daemon.post("/jobs", PINGPONG)
        job_id = accepted["job"]["id"]
        daemon.wait_status(job_id, ("running",), timeout=60)
        # Wait for the pre-hang waves to be checkpointed, then kill -9.
        deadline = time.time() + 60
        while _checkpoint_lines(tmp_path) == 0 and time.time() < deadline:
            time.sleep(0.05)
        assert _checkpoint_lines(tmp_path) > 0, "no obligation checkpointed"
    finally:
        daemon.sigkill()

    # No 'interrupted'/'finished' record made it out — the job journal
    # ends with 'started', which is exactly the restart backlog shape.
    events = [
        json.loads(line)["event"]
        for line in (tmp_path / "jobs.jsonl").read_text().splitlines()[1:]
    ]
    assert events[-1] == "started", events

    restarted = DaemonProcess(tmp_path)  # no faults this time
    try:
        detail = restarted.wait_status(
            job_id, ("done", "failed", "crashed"), timeout=120
        )
        assert detail["status"] == "done"
        assert detail["result"]["status"] == "OK"
        assert detail["result"]["obligations"]["resumed"] > 0
        assert detail["attempts"] >= 2
        # And the daemon is healthy, not limping: a fresh identical
        # request is warm-served without re-execution.
        _s, again = restarted.post("/jobs", PINGPONG)
        repeat = restarted.wait_status(again["job"]["id"], ("done",))
        assert repeat["result"]["obligations"]["executed"] == 0
    finally:
        restarted.terminate()
