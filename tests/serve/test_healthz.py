"""The ``/healthz`` v2 schema: the operator's one-glance surface.

PR-pinned contract: every key an operations dashboard (or the chaos
drill) reads must exist with the right shape, for both isolation modes,
from the first request onward. Additive evolution only — removing or
renaming a key here is a breaking change for deployed scrapers.
"""

from __future__ import annotations

from repro.serve.daemon import HEALTH_SCHEMA

from .test_daemon import PINGPONG, DaemonHarness

#: Top-level keys every healthz response must carry.
REQUIRED_KEYS = {
    "schema",
    "status",
    "uptime_seconds",
    "queue",
    "jobs",
    "counters",
    "sandbox",
    "store",
    "rcache",
    "warm",
}


def test_schema_version_is_v2():
    assert HEALTH_SCHEMA == "repro.serve/healthz/v2"


def test_healthz_shape_in_process_mode(tmp_path):
    with DaemonHarness(state_dir=str(tmp_path)) as harness:
        _status, health = harness.get("/healthz")
        assert REQUIRED_KEYS <= set(health)
        assert health["schema"] == HEALTH_SCHEMA
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert health["queue"].keys() == {"depth", "capacity"}
        assert health["counters"] == {
            "executed": 0,
            "failed": 0,
            "crashed": 0,
            "interrupted": 0,
        }
        # In-process mode: the sandbox section says so, explicitly.
        assert health["sandbox"] == {"enabled": False}
        assert health["store"] == {"write_errors": 0}
        # state_dir arms the rcache, so its counters are a dict here.
        assert health["rcache"]["write_errors"] == 0
        assert "stats" in health["warm"]


def test_healthz_counts_work_after_jobs(tmp_path):
    with DaemonHarness(state_dir=str(tmp_path)) as harness:
        harness.run_job(PINGPONG)
        harness.run_job(PINGPONG)
        _status, health = harness.get("/healthz")
        assert health["counters"]["executed"] == 2
        assert health["counters"]["failed"] == 0
        assert health["jobs"] == {"done": 2}
        # First run populated the result cache (the repeat is served by
        # the in-memory warm memo, one level above the rcache).
        assert health["rcache"]["stores"] > 0
        assert health["rcache"]["write_errors"] == 0


def test_healthz_sandbox_section_when_sandboxed():
    with DaemonHarness(sandbox=True) as harness:
        harness.run_job(PINGPONG)
        _status, health = harness.get("/healthz")
        sandbox = health["sandbox"]
        assert sandbox["enabled"] is True
        assert sandbox["alive"] is True
        assert isinstance(sandbox["worker_pid"], int)
        assert sandbox["spawns"] == 1
        assert sandbox["restarts"] == 0
        assert sandbox["jobs"] == 1
        assert set(sandbox["limits"]) == {
            "max_rss_mb",
            "cpu_seconds",
            "recycle_after",
            "applied",
        }
        assert sandbox["breaker"] == {"threshold": 2, "open": []}
        # Cacheless daemon: rcache section is explicit null, not absent.
        assert health["rcache"] is None
