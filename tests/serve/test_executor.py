"""The subprocess sandbox: protocol round trip, degradation ladder,
watchdog, recycling, and the daemon integration.

Direct :class:`SandboxExecutor` tests spawn a real worker process and
speak the JSONL protocol over its pipes — no mocks; crashes are induced
with the ``sandbox.job`` fault key (fired *inside* the worker, where
``exit`` faults are honored) or by stopping the worker with signals.
The daemon tests boot a sandboxed ``ServeDaemon`` over HTTP and pin the
typed ``CRASHED`` verdict and the flagged in-process fallback.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.engine.faults import FAULTS_ENV, clear
from repro.protocols import pingpong
from repro.serve.executor import (
    SandboxConfig,
    SandboxCrashed,
    SandboxExecutor,
    crashed_payload,
)
from repro.serve.jobs import JobRequest

from .test_daemon import PINGPONG, DaemonHarness


@pytest.fixture(autouse=True)
def _no_faults(monkeypatch):
    """Faults leak into workers through the environment; keep every test
    hermetic."""
    clear()
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    yield
    clear()


def _request(rounds=2):
    return JobRequest.from_payload(
        {"kind": "verify", "protocol": "pingpong", "params": {"rounds": rounds}}
    )


BUDGETS = {"max_configs": None, "jobs": None, "clamped": False}


@pytest.fixture
def executor(request):
    """A SandboxExecutor built from the test's ``sandbox_config`` marker
    (default config otherwise), shut down afterwards."""
    marker = request.node.get_closest_marker("sandbox_config")
    config = SandboxConfig(**(marker.kwargs if marker else {}))
    sandbox = SandboxExecutor(config)
    yield sandbox
    sandbox.shutdown()


# ------------------------------------------------------------------ #
# Round trip
# ------------------------------------------------------------------ #


def test_round_trip_matches_in_process_verdict(executor):
    spans = []
    payload = executor.execute(
        "job-1", _request(), BUDGETS, publish_span=spans.append
    )
    reference = pingpong.verify(rounds=2)
    assert payload["status"] == reference.status
    assert payload["ok"] is reference.ok
    assert payload["obligations"]["total"] == sum(
        r.num_obligations for _l, r in reference.is_results
    )
    # Spans stream across the process boundary, one dict per obligation
    # (plus rcache/meta spans), each already seq-stamped by the worker.
    assert len(spans) >= payload["obligations"]["total"]
    assert all("seq" in record for record in spans)
    health = executor.describe()
    assert health["alive"] is True
    assert health["worker_pid"] == executor.worker_pid
    assert health["spawns"] == 1 and health["jobs"] == 1


def test_second_job_reuses_warm_worker(tmp_path):
    sandbox = SandboxExecutor(SandboxConfig(), state_dir=tmp_path)
    try:
        first = sandbox.execute("job-1", _request(), BUDGETS)
        second = sandbox.execute("job-2", _request(), BUDGETS)
    finally:
        sandbox.shutdown()
    assert second["status"] == first["status"]
    # Same worker process: its warm memos and result cache served the
    # repeat — zero re-executed obligations.
    assert sandbox.stats["spawns"] == 1
    assert second["obligations"]["executed"] == 0
    assert second["warm"]["universe_hits"] >= 1


@pytest.mark.sandbox_config(recycle_after=2)
def test_worker_recycles_after_configured_jobs(executor):
    for n in range(3):
        executor.execute(f"job-{n}", _request(), BUDGETS)
    assert executor.stats["recycles"] == 1
    assert executor.stats["spawns"] == 2
    # A recycle is hygiene, not a crash.
    assert executor.stats["restarts"] == 0


def test_rlimits_are_applied_in_worker():
    sandbox = SandboxExecutor(
        SandboxConfig(max_rss_mb=2048, cpu_seconds=300)
    )
    try:
        payload = sandbox.execute("job-1", _request(), BUDGETS)
        assert payload["status"] == "OK"
        applied = sandbox.describe()["limits"]["applied"]
        # The worker reports back what setrlimit actually accepted.
        assert applied.get("rlimit_as_bytes") == 2048 * 1024 * 1024
        assert applied.get("rlimit_cpu_seconds") == 300
    finally:
        sandbox.shutdown()


# ------------------------------------------------------------------ #
# Degradation ladder
# ------------------------------------------------------------------ #


@pytest.mark.sandbox_config(max_respawns=2, breaker_threshold=3)
def test_crash_once_respawns_and_retries(executor, monkeypatch):
    """Rung 1: a worker that dies mid-job is respawned and the job is
    retried — the caller sees only the successful payload."""
    monkeypatch.setenv(FAULTS_ENV, "sandbox.job=exit:1")
    payload = executor.execute("job-1", _request(), BUDGETS)
    assert payload["status"] == "OK"
    assert executor.stats["restarts"] == 1
    assert executor.stats["spawns"] == 2


@pytest.mark.sandbox_config(max_respawns=1, breaker_threshold=2)
def test_repeat_crasher_exhausts_respawns_and_opens_breaker(
    executor, monkeypatch
):
    """Rung 2: a request that kills every worker it touches exhausts its
    respawn budget, opens its circuit breaker, and from then on is
    refused without spawning anything."""
    monkeypatch.setenv(FAULTS_ENV, "sandbox.job=exit:99")
    with pytest.raises(SandboxCrashed) as crashed:
        executor.execute("job-1", _request(), BUDGETS)
    assert crashed.value.crashes == 2
    assert crashed.value.breaker_open is True
    spawns = executor.stats["spawns"]
    # Breaker short-circuit: no new worker, no new attempt.
    with pytest.raises(SandboxCrashed) as again:
        executor.execute("job-2", _request(), BUDGETS)
    assert again.value.breaker_open is True
    assert executor.stats["spawns"] == spawns
    assert _request().fingerprint in executor.describe()["breaker"]["open"]


@pytest.mark.sandbox_config(max_respawns=1, breaker_threshold=5)
def test_different_requests_track_separate_crash_counts(
    executor, monkeypatch
):
    monkeypatch.setenv(FAULTS_ENV, "sandbox.job=exit:99")
    with pytest.raises(SandboxCrashed) as crashed:
        executor.execute("job-1", _request(rounds=2), BUDGETS)
    assert crashed.value.breaker_open is False  # 2 crashes < threshold 5
    monkeypatch.delenv(FAULTS_ENV)
    # A different instance is unaffected by job-1's crash history.
    payload = executor.execute("job-2", _request(rounds=3), BUDGETS)
    assert payload["status"] == "OK"
    assert executor.describe()["breaker"]["open"] == []


@pytest.mark.sandbox_config(
    heartbeat_interval=0.1, heartbeat_grace=1.5, max_respawns=1
)
def test_watchdog_detects_stopped_worker(executor):
    """A worker that stops heartbeating (here: SIGSTOP, the moral
    equivalent of a livelock or an OOM-paused cgroup) is declared dead
    by the watchdog, killed, and replaced."""
    warmup = executor.execute("job-0", _request(), BUDGETS)
    assert warmup["status"] == "OK"
    os.kill(executor.worker_pid, signal.SIGSTOP)
    payload = executor.execute("job-1", _request(), BUDGETS)
    assert payload["status"] == "OK"
    assert executor.stats["restarts"] == 1


def test_sigkilled_worker_is_respawned(executor):
    warmup = executor.execute("job-0", _request(), BUDGETS)
    assert warmup["status"] == "OK"
    pid = executor.worker_pid
    os.kill(pid, signal.SIGKILL)
    deadline = time.time() + 10
    while executor._proc.poll() is None and time.time() < deadline:
        time.sleep(0.01)
    payload = executor.execute("job-1", _request(), BUDGETS)
    assert payload["status"] == "OK"
    assert executor.worker_pid != pid


def test_crashed_payload_is_typed():
    crash = SandboxCrashed("worker exited with 99", crashes=3, breaker_open=True)
    payload = crashed_payload(_request(), crash)
    assert payload["kind"] == "verify"
    assert payload["ok"] is False
    assert payload["status"] == "CRASHED"
    assert payload["sandbox"]["mode"] == "sandbox"
    assert payload["sandbox"]["crashes"] == 3
    assert payload["sandbox"]["breaker_open"] is True


# ------------------------------------------------------------------ #
# Daemon integration
# ------------------------------------------------------------------ #


def test_daemon_sandbox_round_trip_and_healthz(tmp_path):
    with DaemonHarness(state_dir=str(tmp_path), sandbox=True) as harness:
        first = harness.run_job(PINGPONG)
        assert first["status"] == "done"
        assert first["result"]["status"] == "OK"
        second = harness.run_job(PINGPONG)
        assert second["result"]["obligations"]["executed"] == 0
        _status, health = harness.get("/healthz")
        assert health["sandbox"]["enabled"] is True
        assert health["sandbox"]["jobs"] == 2
        assert health["counters"]["executed"] == 2


def test_daemon_serves_typed_crashed_verdict(monkeypatch):
    """The ladder's floor, end to end: a repeat-crasher job surfaces as
    a terminal ``crashed`` job with a typed ``CRASHED`` result — and the
    daemon itself stays up and keeps serving."""
    monkeypatch.setenv(FAULTS_ENV, "sandbox.job=exit:99")
    with DaemonHarness(
        sandbox=True, sandbox_max_respawns=1, sandbox_breaker_threshold=2
    ) as harness:
        detail = harness.run_job(PINGPONG)
        assert detail["status"] == "crashed"
        assert detail["result"]["status"] == "CRASHED"
        assert detail["result"]["sandbox"]["crashes"] == 2
        monkeypatch.delenv(FAULTS_ENV)
        # Daemon still live; a different instance still verifies.
        other = harness.run_job(
            {"kind": "verify", "protocol": "pingpong", "params": {"rounds": 3}}
        )
        assert other["status"] == "done"
        _status, health = harness.get("/healthz")
        assert health["counters"]["crashed"] == 1
        assert len(health["sandbox"]["breaker"]["open"]) == 1


def test_daemon_inprocess_fallback_is_flagged(monkeypatch):
    """With ``--sandbox-fallback`` the daemon climbs past the breaker to
    rung 3: run in-process, but stamp the payload so the report can
    never silently masquerade as an isolated run."""
    monkeypatch.setenv(FAULTS_ENV, "sandbox.job=exit:99")
    with DaemonHarness(
        sandbox=True,
        sandbox_max_respawns=0,
        sandbox_breaker_threshold=1,
        sandbox_fallback=True,
    ) as harness:
        detail = harness.run_job(PINGPONG)
        assert detail["status"] == "done"
        assert detail["result"]["status"] == "OK"
        assert detail["result"]["sandbox"]["mode"] == "inprocess-fallback"
        assert detail["result"]["sandbox"]["crashes"] >= 1
