"""ServeConfig: flag > environment > default resolution and validation."""

from __future__ import annotations

import pytest

from repro.serve.config import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_QUEUE_DEPTH,
    ServeConfig,
)


def test_defaults_without_env_or_flags():
    config = ServeConfig.from_env(environ={})
    assert config.host == DEFAULT_HOST
    assert config.port == DEFAULT_PORT
    assert config.queue_depth == DEFAULT_QUEUE_DEPTH
    assert config.state_dir is None


def test_environment_supplies_defaults():
    config = ServeConfig.from_env(
        environ={
            "REPRO_SERVE_HOST": "0.0.0.0",
            "REPRO_SERVE_PORT": "8080",
            "REPRO_SERVE_QUEUE_DEPTH": "4",
        }
    )
    assert config.host == "0.0.0.0"
    assert config.port == 8080
    assert config.queue_depth == 4


def test_flags_beat_environment():
    config = ServeConfig.from_env(
        environ={
            "REPRO_SERVE_HOST": "0.0.0.0",
            "REPRO_SERVE_PORT": "8080",
            "REPRO_SERVE_QUEUE_DEPTH": "4",
        },
        host="127.0.0.1",
        port=0,
        queue_depth=2,
    )
    assert config.host == "127.0.0.1"
    assert config.port == 0
    assert config.queue_depth == 2


def test_none_flag_falls_through_to_environment():
    config = ServeConfig.from_env(
        environ={"REPRO_SERVE_PORT": "9000"}, port=None, host="10.0.0.1"
    )
    assert config.port == 9000
    assert config.host == "10.0.0.1"


def test_blank_environment_value_means_unset():
    config = ServeConfig.from_env(environ={"REPRO_SERVE_PORT": "  "})
    assert config.port == DEFAULT_PORT


def test_non_integer_environment_port_is_an_error():
    with pytest.raises(ValueError, match="REPRO_SERVE_PORT"):
        ServeConfig.from_env(environ={"REPRO_SERVE_PORT": "eighty"})


@pytest.mark.parametrize("field,value", [("queue_depth", 0), ("port", 70000)])
def test_validation_rejects_out_of_range(field, value):
    with pytest.raises(ValueError):
        ServeConfig(**{field: value})
