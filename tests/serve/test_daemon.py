"""Daemon lifecycle: admission, backpressure, determinism, drain, SSE.

Each test boots a real ``ServeDaemon`` on a background thread bound to
an ephemeral port and speaks actual HTTP to it — the same path the CI
``serve-smoke`` job and the benchmark harness use. The daemon's worker
runs verifications in-process, so the suite sticks to the smallest
instances (pingpong at ``rounds=2``).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import faults
from repro.protocols import pingpong
from repro.serve import ServeConfig
from repro.serve.daemon import ServeDaemon

PINGPONG = {"kind": "verify", "protocol": "pingpong", "params": {"rounds": 2}}


class DaemonHarness:
    """A daemon on a background thread plus a tiny HTTP client."""

    def __init__(self, **config):
        config.setdefault("host", "127.0.0.1")
        config.setdefault("port", 0)
        self.daemon = ServeDaemon(ServeConfig(**config))
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.run()), daemon=True
        )

    def __enter__(self):
        self.thread.start()
        assert self.daemon.ready.wait(timeout=30), "daemon never came up"
        self.base = f"http://127.0.0.1:{self.daemon.bound_port}"
        return self

    def __exit__(self, *exc):
        self.daemon.request_shutdown()
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "daemon failed to drain"

    def get(self, path):
        with urllib.request.urlopen(self.base + path, timeout=30) as resp:
            return resp.status, json.load(resp)

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path, data=json.dumps(payload).encode("utf-8")
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.load(resp)

    def run_job(self, payload, timeout=120.0):
        _status, accepted = self.post("/jobs", payload)
        return self.wait(accepted["job"]["id"], timeout)

    def wait(self, job_id, timeout=120.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            _status, detail = self.get(f"/jobs/{job_id}")
            if detail["status"] in ("done", "failed", "crashed", "interrupted"):
                return detail
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} still {detail['status']!r}")


def test_healthz_reports_queue_and_warm_state():
    with DaemonHarness(queue_depth=3) as harness:
        status, health = harness.get("/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["queue"] == {"depth": 0, "capacity": 3}
        assert "warm" in health and "stats" in health["warm"]


def test_job_round_trip_and_warm_second_request(tmp_path):
    with DaemonHarness(state_dir=str(tmp_path)) as harness:
        first = harness.run_job(PINGPONG)
        assert first["status"] == "done"
        assert first["result"]["status"] == "OK"
        assert first["result"]["obligations"]["total"] > 0
        second = harness.run_job(PINGPONG)
        assert second["result"]["obligations"]["executed"] == 0
        assert second["result"]["status"] == first["result"]["status"]


def test_daemon_verdicts_match_one_shot_cli_reports():
    """Typed verdict parity: what the daemon returns for a protocol must
    equal a one-shot in-process ``verify()`` of the same instance."""
    reference = pingpong.verify(rounds=2)
    with DaemonHarness() as harness:
        detail = harness.run_job(PINGPONG)
    result = detail["result"]
    assert result["status"] == reference.status
    assert result["ok"] is reference.ok
    assert result["obligations"]["total"] == sum(
        r.num_obligations for _l, r in reference.is_results
    )
    assert [c["label"] for c in result["is_checks"]] == [
        label for label, _r in reference.is_results
    ]
    assert [c["holds"] for c in result["is_checks"]] == [
        r.holds for _l, r in reference.is_results
    ]


def test_concurrent_clients_get_deterministic_results():
    """N clients hammering the same question concurrently must all see
    the same typed verdict — the queue serializes, warm reuse must not
    bleed state between in-flight requests."""
    results = []
    errors = []
    with DaemonHarness() as harness:

        def client():
            try:
                detail = harness.run_job(PINGPONG)
                results.append(
                    (detail["result"]["status"], detail["result"]["ok"],
                     detail["result"]["obligations"]["total"])
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
    assert not errors
    assert len(results) == 4
    assert len(set(results)) == 1, results
    assert results[0][0] == "OK"


def test_queue_full_returns_429_with_retry_after():
    faults.install(
        faults.FaultInjector(
            [faults.FaultSpec(key="I1", mode="hang", seconds=20.0)]
        )
    )
    try:
        with DaemonHarness(queue_depth=1, drain_grace=0.2) as harness:
            harness.post("/jobs", PINGPONG)  # occupies the worker (hangs)
            time.sleep(0.3)
            harness.post("/jobs", PINGPONG)  # fills the queue
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                harness.post("/jobs", PINGPONG)
            assert excinfo.value.code == 429
            retry_after = excinfo.value.headers["Retry-After"]
            assert int(retry_after) >= 1
    finally:
        faults.clear()


def test_bad_requests_are_400_and_unknown_jobs_404():
    with DaemonHarness() as harness:
        for payload in (
            {"kind": "frobnicate"},
            {"kind": "verify", "protocol": "not-a-protocol"},
            {"kind": "verify", "protocol": "pingpong", "params": {"zz": 1}},
            {"kind": "explain", "fixture": "not-a-fixture"},
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                harness.post("/jobs", payload)
            assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            harness.get("/jobs/job-9999-nope")
        assert excinfo.value.code == 404


def test_sse_stream_replays_spans_and_terminates():
    with DaemonHarness() as harness:
        detail = harness.run_job(PINGPONG)
        with urllib.request.urlopen(
            harness.base + f"/jobs/{detail['id']}/events", timeout=30
        ) as resp:
            assert resp.headers["Content-Type"] == "text/event-stream"
            body = resp.read().decode("utf-8")
    events = [
        line.split(": ", 1)[1]
        for line in body.splitlines()
        if line.startswith("event: ")
    ]
    assert "span" in events
    assert events[-1] == "result"
    # Every frame is id/event/data/blank; data lines are valid JSON.
    for line in body.splitlines():
        if line.startswith("data: "):
            json.loads(line.split(": ", 1)[1])


def test_draining_daemon_refuses_new_jobs_then_exits():
    harness = DaemonHarness()
    with harness:
        harness.run_job(PINGPONG)
    # __exit__ drained; the socket is gone entirely.
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(harness.base + "/healthz", timeout=5)


def test_sigterm_midjob_journals_then_restart_resumes(tmp_path):
    """In-process version of the CI serve-smoke drill: hang an
    obligation, drain mid-job, assert the journal recorded the
    interruption, restart on the same state, and watch the backlog job
    resume to completion."""
    state = str(tmp_path)
    faults.install(
        faults.FaultInjector(
            [faults.FaultSpec(key="I2", mode="hang", seconds=3.0)]
        )
    )
    try:
        with DaemonHarness(state_dir=state, drain_grace=0.3) as harness:
            _status, accepted = harness.post("/jobs", PINGPONG)
            job_id = accepted["job"]["id"]
            deadline = time.time() + 30
            while time.time() < deadline:
                _s, detail = harness.get(f"/jobs/{job_id}")
                if detail["status"] == "running":
                    break
                time.sleep(0.05)
            time.sleep(1.0)  # journal the pre-hang obligations, hit the hang
        # __exit__ drained: the hung job must be journaled as interrupted.
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "jobs.jsonl")
            .read_text()
            .splitlines()[1:]
        ]
        assert events[-1] == "interrupted", events
    finally:
        faults.clear()
    # Give the hung worker thread time to wake and die quietly before
    # the restarted daemon re-runs the same instance.
    time.sleep(2.5)
    with DaemonHarness(state_dir=state) as harness:
        detail = harness.wait(job_id)
        assert detail["status"] == "done"
        assert detail["result"]["status"] == "OK"
        assert detail["result"]["obligations"]["resumed"] > 0
        assert detail["attempts"] >= 2


def test_stale_job_journal_is_set_aside_not_fatal(tmp_path):
    (tmp_path / "jobs.jsonl").write_text('{"schema": "other/v1"}\n')
    with DaemonHarness(state_dir=str(tmp_path)) as harness:
        detail = harness.run_job(PINGPONG)
        assert detail["status"] == "done"
    assert (tmp_path / "jobs.jsonl.stale").exists()
