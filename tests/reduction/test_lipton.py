"""Tests for Lipton reduction: mover inference and the atomicity pattern."""

import pytest

from repro.core import MoverType, Store, initial_config
from repro.core.mapping import FrozenDict
from repro.core.multiset import EMPTY
from repro.lang import (
    Assign,
    Async,
    C,
    Module,
    Procedure,
    Receive,
    Send,
    Skip,
    V,
)
from repro.reduction import analyze_module, successors
from repro.reduction.lipton import check_procedure_pattern, module_context

GLOBALS = ("x", "CH")


def _g(x=0):
    return Store({"x": x, "CH": FrozenDict({"a": EMPTY, "b": EMPTY})})


def test_successors_shapes():
    proc = Procedure(
        "P",
        (),
        (
            Send("CH", C("a"), C(1)),
            Send("CH", C("a"), C(2)),
        ),
    )
    assert successors(proc.instrs, 0) == [1]
    assert successors(proc.instrs, 1) == []


def test_module_context_excludes_same_instance():
    module = Module(
        {"Main": Procedure("Main", (), (Skip(), Skip()))}, global_vars=GLOBALS
    )
    context = module_context(module)
    from repro.core import pa

    assert not context.pair(Store(), pa("Main"), pa("Main#1"))


def test_send_then_receive_is_atomic_pattern_violation_free():
    """receive (right mover) before send (left mover) is the atomic
    pattern; the converse send-then-receive breaks it."""
    fine = Module(
        {
            "Main": Procedure("Main", (), (Async.of("Fwd"), Send("CH", C("a"), C(1)))),
            "Fwd": Procedure(
                "Fwd",
                (),
                (Receive("y", "CH", C("a")), Send("CH", C("b"), V("y"))),
                locals={"y": None},
            ),
        },
        global_vars=GLOBALS,
    )
    analysis = analyze_module(fine, [initial_config(_g())])
    assert analysis.patterns["Fwd"].atomic
    assert analysis.sound


def test_receive_after_send_violates_pattern():
    """Two symmetric processes that send then receive on crossing channels:
    each send is a genuine left-only mover (the peer receives from that
    channel) and each receive a right-only mover — so receive-after-send
    breaks the R*;N?;L* pattern and summarization is refused."""
    module = Module(
        {
            "Main": Procedure("Main", (), (Async.of("P"), Async.of("Q"))),
            "P": Procedure(
                "P",
                (),
                (Send("CH", C("a"), C(1)), Receive("y", "CH", C("b"))),
                locals={"y": None},
            ),
            "Q": Procedure(
                "Q",
                (),
                (Send("CH", C("b"), C(2)), Receive("y", "CH", C("a"))),
                locals={"y": None},
            ),
        },
        global_vars=GLOBALS,
    )
    analysis = analyze_module(module, [initial_config(_g())])
    assert not analysis.patterns["P"].atomic
    assert not analysis.patterns["Q"].atomic
    assert any(v.reason for v in analysis.patterns["P"].violations)
    assert not analysis.sound


def test_linearity_violation_detected():
    """Spawning two identical instances of a procedure breaks the
    per-instance linearity assumption and is reported."""
    module = Module(
        {
            "Main": Procedure("Main", (), (Async.of("W"), Async.of("W"))),
            "W": Procedure("W", (), (Assign("x", V("x") + C(1)),)),
        },
        global_vars=GLOBALS,
    )
    analysis = analyze_module(module, [initial_config(_g())])
    assert analysis.linearity_violations
    assert not analysis.sound


def test_report_is_readable():
    module = Module(
        {"Main": Procedure("Main", (), (Assign("x", C(1)),))},
        global_vars=GLOBALS,
    )
    analysis = analyze_module(module, [initial_config(_g())])
    text = analysis.report()
    assert "mover types" in text
    assert "Main" in text


def test_pingpong_module_is_atomic():
    """The Ping-Pong handlers follow receive-then-send: atomic pattern."""
    from repro.protocols import pingpong

    module = pingpong.make_module(2)
    init = initial_config(
        pingpong.initial_impl_global(2), module.initial_main_locals()
    )
    analysis = analyze_module(module, [init])
    assert analysis.sound, analysis.report()


def test_prodcons_module_is_atomic():
    """FIFO enqueue (left) after dequeue (right) per procedure: atomic."""
    from repro.protocols import prodcons

    module = prodcons.make_module(2)
    init = initial_config(
        prodcons.initial_impl_global(2), module.initial_main_locals()
    )
    analysis = analyze_module(module, [init])
    assert analysis.sound, analysis.report()


def test_changroberts_module_is_atomic():
    """Handlers are multi-instance (one per in-flight message) yet still
    follow receive-then-forward: atomic."""
    from repro.protocols import changroberts as cr

    module = cr.make_module(3)
    init = initial_config(cr.initial_global(3), module.initial_main_locals())
    analysis = analyze_module(module, [init])
    assert analysis.sound, analysis.report()


def test_nbuyer_module_is_atomic():
    from repro.protocols import nbuyer

    module = nbuyer.make_module(2, prices=(2,), contributions=(0, 2))
    init = initial_config(nbuyer.initial_global(2), module.initial_main_locals())
    analysis = analyze_module(module, [init])
    assert analysis.sound, analysis.report()


@pytest.mark.slow
def test_twophase_module_is_atomic():
    from repro.protocols import twophase

    module = twophase.make_module(2)
    init = initial_config(twophase.initial_global(2), module.initial_main_locals())
    analysis = analyze_module(module, [init])
    assert analysis.sound, analysis.report()


@pytest.mark.slow
def test_paxos_module_needs_the_abstraction_step():
    """Negative result matching the paper: Paxos's fine-grained layer does
    *not* satisfy the plain atomicity pattern (Join and Vote of the same
    acceptor conflict on ``acceptorState``; proposers' aggregation loops
    interleave). The paper's P1 ≼ P2 step for Paxos is therefore not pure
    reduction — it changes the state representation and introduces the
    message-loss nondeterminism (Section 5.2), which we validate instead
    via the decision-view layer refinement (test_layers_impl)."""
    from repro.protocols import paxos

    module = paxos.make_module(1, 2)
    init = initial_config(
        paxos.initial_impl_global(1, 2), module.initial_main_locals()
    )
    analysis = analyze_module(module, [init])
    assert not analysis.sound
    broken = {name for name, p in analysis.patterns.items() if not p.atomic}
    assert "Join" in broken or "Vote" in broken


def test_linear_class_violation_detected():
    """Declaring a linear class that the program violates is reported."""
    from repro.lang import Assign, Async, C, Module, Procedure, V

    module = Module(
        {
            "Main": Procedure(
                "Main", (), (Async.of("W", k=C(1)), Async.of("W", k=C(2)))
            ),
            "W": Procedure(
                "W",
                ("k",),
                (Assign("x", V("x") + V("k")),),
                linear_class="only-one",  # wrong: two live instances
            ),
        },
        global_vars=GLOBALS,
    )
    analysis = analyze_module(module, [initial_config(_g())])
    assert analysis.linearity_violations
    assert not analysis.sound


@pytest.mark.slow
def test_broadcast_module_mover_types_match_paper():
    """The full Section 2.1 story, derived not asserted: on the broadcast
    implementation of Figure 1-①, sends are left movers, receives right
    movers, local/disjoint accesses both movers — and all three procedures
    satisfy the atomicity pattern, licensing Figure 1-②."""
    from repro.protocols import broadcast

    module = broadcast.make_module(2)
    init = initial_config(
        broadcast.initial_global(2), module.initial_main_locals()
    )
    analysis = analyze_module(module, [init])
    assert analysis.sound
    # Broadcast's send instruction: a left (not right) mover.
    send_types = [
        t for name, t in analysis.mover_types.items()
        if name.startswith("Broadcast#") and t is MoverType.LEFT
    ]
    assert send_types, "expected a genuine left-mover send"
    # Collect's receive instruction: a right (not left) mover.
    receive_types = [
        t for name, t in analysis.mover_types.items()
        if name.startswith("Collect#") and t is MoverType.RIGHT
    ]
    assert receive_types, "expected a genuine right-mover receive"
    assert all(p.atomic for p in analysis.patterns.values())
