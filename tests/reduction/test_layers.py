"""Tests for layered refinement chains."""

import pytest

from repro.core import EMPTY_STORE, Store
from repro.reduction import LayerLink, RefinementChain, check_layer_refinement

from ..conftest import make_assert_program, make_counter_program


def test_layer_refinement_identical_programs():
    program = make_counter_program(2)
    result = check_layer_refinement(
        program, program, [(Store({"x": 0}), EMPTY_STORE, EMPTY_STORE)]
    )
    assert result.holds


def test_layer_refinement_modulo_hidden_vars():
    """Two programs whose final states differ only in a hidden variable."""
    from repro.core import Action, Multiset, Program, Transition, pa

    def main_with_ghost(state):
        created = [pa("Inc", i=0)]
        yield Transition(
            state.restrict(("x", "ghost")).set("ghost", "dirty"), Multiset(created)
        )

    def inc(state):
        yield Transition(
            state.restrict(("x", "ghost")).set("x", state["x"] + 1)
        )

    ghostly = Program(
        {
            "Main": Action("Main", lambda _s: True, main_with_ghost),
            "Inc": Action("Inc", lambda _s: True, inc, ("i",)),
        },
        global_vars=("x", "ghost"),
    )
    plain = make_counter_program(1)
    init = Store({"x": 0, "ghost": "clean"})
    assert not check_layer_refinement(
        ghostly, plain, [(init, EMPTY_STORE, EMPTY_STORE)]
    ).holds
    assert check_layer_refinement(
        ghostly, plain, [(init, EMPTY_STORE, EMPTY_STORE)], hidden_vars=("ghost",)
    ).holds


def test_layer_refinement_detects_missing_behaviour():
    result = check_layer_refinement(
        make_counter_program(2),
        make_counter_program(1),
        [(Store({"x": 0}), EMPTY_STORE, EMPTY_STORE)],
    )
    assert not result.holds


def test_layer_refinement_failing_abstract_is_vacuous():
    result = check_layer_refinement(
        make_counter_program(1),
        make_assert_program(0),
        [(Store({"x": 0}), EMPTY_STORE, EMPTY_STORE)],
    )
    assert result.holds


def test_chain_composition_enforced():
    p1 = make_counter_program(1)
    p2 = make_counter_program(1)
    p3 = make_counter_program(1)
    chain = RefinementChain()
    chain.add(LayerLink("reduce", p1, p2))
    with pytest.raises(ValueError):
        chain.add(LayerLink("broken", p1, p3))  # p1 is not p2
    chain.add(LayerLink("is", p2, p3))
    assert chain.bottom is p1
    assert chain.top is p3
    assert chain.ok
    assert "P1 ≼ P2" in chain.report()


def test_chain_empty_errors():
    chain = RefinementChain()
    with pytest.raises(ValueError):
        chain.top
    with pytest.raises(ValueError):
        chain.bottom


def test_full_broadcast_chain():
    """End-to-end layered verification of broadcast consensus:
    P1 (fine-grained) ≼ P2 (atomic) ≼ P' (sequentialized)."""
    from repro.protocols import broadcast
    from repro.core import check_program_refinement

    n = 2
    module = broadcast.make_module(n)
    from repro.lang import build_finegrained

    p1 = build_finegrained(module)
    p2 = broadcast.make_atomic(n)
    application = broadcast.make_sequentialization(n)
    p_prime = application.apply_and_drop()

    g0 = broadcast.initial_global(n)
    chain = RefinementChain()
    link1 = LayerLink("summarization (reduction)", p1, p2)
    link1.check = check_layer_refinement(
        p1,
        p2,
        [(g0, module.initial_main_locals(), EMPTY_STORE)],
        hidden_vars=("pendingAsyncs",),
    )
    chain.add(link1)
    link2 = LayerLink("inductive sequentialization", p2, p_prime)
    link2.check = check_program_refinement(p2, p_prime, [(g0, EMPTY_STORE)])
    chain.add(link2)
    assert chain.ok, chain.report()
