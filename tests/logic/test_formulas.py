"""Tests for the enumerative first-order formula layer."""

from repro.logic import (
    And,
    Atom,
    Exists,
    FALSE,
    Forall,
    Implies,
    Not,
    Or,
    TRUE,
    check_validity,
    count_conjuncts,
)


def _positive():
    return Atom("x>0", lambda e: e["x"] > 0)


def test_atom_eval():
    assert _positive().holds({"x": 1})
    assert not _positive().holds({"x": 0})


def test_constants():
    assert TRUE.holds({})
    assert not FALSE.holds({})


def test_connectives():
    p, q = _positive(), Atom("x<10", lambda e: e["x"] < 10)
    assert And((p, q)).holds({"x": 5})
    assert not And((p, q)).holds({"x": 11})
    assert Or((p, FALSE)).holds({"x": 1})
    assert Not(p).holds({"x": -1})
    assert Implies(p, q).holds({"x": -5})  # vacuous
    assert not Implies(p, q).holds({"x": 50})


def test_operator_sugar():
    p, q = _positive(), Atom("even", lambda e: e["x"] % 2 == 0)
    assert (p & q).holds({"x": 2})
    assert (p | q).holds({"x": -2})
    assert (~p).holds({"x": 0})
    assert (p >> q).holds({"x": -1})


def test_forall_over_static_domain():
    formula = Forall("i", range(3), Atom("i<x", lambda e: e["i"] < e["x"]))
    assert formula.holds({"x": 3})
    assert not formula.holds({"x": 2})


def test_exists_over_state_dependent_domain():
    formula = Exists(
        "i", lambda e: range(e["x"]), Atom("i=2", lambda e: e["i"] == 2)
    )
    assert formula.holds({"x": 3})
    assert not formula.holds({"x": 2})


def test_multi_variable_quantifier():
    formula = Forall(
        ("i", "j"),
        range(3),
        Atom("comm", lambda e: e["i"] + e["j"] == e["j"] + e["i"]),
    )
    assert formula.holds({})


def test_nested_quantifiers_and_shadowing():
    inner = Exists("i", range(2), Atom("eq", lambda e: e["i"] == e["j"]))
    formula = Forall("j", range(2), inner)
    assert formula.holds({})


def test_bound_variable_shadows_state():
    formula = Forall("x", range(1), Atom("x=0", lambda e: e["x"] == 0))
    assert formula.holds({"x": 99})


def test_count_conjuncts():
    p = Atom("p", lambda _e: True)
    assert count_conjuncts(p) == 1
    assert count_conjuncts(And((p, p, p))) == 3
    assert count_conjuncts(Forall("i", range(2), And((p, p)))) == 2
    assert count_conjuncts(And((p, Forall("i", range(1), And((p, p)))))) == 3


def test_check_validity_counterexamples():
    holds, cex = check_validity(_positive(), [{"x": 1}, {"x": 0}, {"x": -1}])
    assert not holds
    assert len(cex) == 2
    holds, cex = check_validity(_positive(), [{"x": 1}, {"x": 2}])
    assert holds and not cex


def test_check_validity_limit():
    states = [{"x": 0}] * 100
    _holds, cex = check_validity(_positive(), states, limit=3)
    assert len(cex) == 3


def test_reprs():
    p = Atom("p", lambda _e: True)
    assert "∀" in repr(Forall("i", range(1), p))
    assert "∃" in repr(Exists("i", range(1), p))
    assert "∧" in repr(And((p, p)))
    assert "∨" in repr(Or((p, p)))
    assert "¬" in repr(Not(p))
    assert "⇒" in repr(Implies(p, p))
