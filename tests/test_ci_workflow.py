"""Sanity checks on the CI pipeline definition.

CI config rots silently — a typo'd job name or an unpinned action only
fails on the forge, after push. These tests lint ``ci.yml`` locally: the
jobs the README badge implies must exist, every third-party action must
be version-pinned, and the commands must reference tox environments and
scripts that actually exist in this repo.
"""

from __future__ import annotations

import configparser
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

ROOT = Path(__file__).resolve().parent.parent
WORKFLOW = ROOT / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text())


def _steps(workflow, job):
    return workflow["jobs"][job]["steps"]


def _run_commands(workflow):
    for job in workflow["jobs"].values():
        for step in job["steps"]:
            if "run" in step:
                yield step["run"]


def test_expected_jobs_exist(workflow):
    assert set(workflow["jobs"]) == {
        "lint",
        "fast",
        "full",
        "bench-smoke",
        "trace-artifact",
        "fault-injection",
        "incremental-verification",
        "serve-smoke",
        "explain-artifact",
        "chaos-soak",
    }


def test_every_job_is_timeout_bounded(workflow):
    """A hung runner bills by the minute and blocks the queue; every
    job — not just the fault-injecting ones — must carry a sane
    ``timeout-minutes``."""
    for name, job in workflow["jobs"].items():
        minutes = job.get("timeout-minutes")
        assert minutes is not None, f"{name}: missing timeout-minutes"
        assert 0 < minutes <= 30, f"{name}: timeout-minutes {minutes}"


def test_every_action_is_version_pinned(workflow):
    for name, job in workflow["jobs"].items():
        for step in job["steps"]:
            uses = step.get("uses")
            if uses is None:
                continue
            action, _, version = uses.partition("@")
            assert version, f"{name}: unpinned action {uses!r}"
            assert version.startswith("v"), f"{name}: loose pin {uses!r}"
            assert action.startswith("actions/"), (
                f"{name}: unexpected third-party action {uses!r}"
            )


def test_fast_lane_covers_supported_pythons(workflow):
    matrix = workflow["jobs"]["fast"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.11", "3.12", "3.13"]


def test_full_suite_gated_on_lint_and_fast(workflow):
    assert set(workflow["jobs"]["full"]["needs"]) == {"lint", "fast"}
    assert any('-m ""' in cmd for cmd in _run_commands(workflow))


def test_tox_environments_referenced_by_ci_exist(workflow):
    tox = configparser.ConfigParser()
    tox.read(ROOT / "tox.ini")
    referenced = []
    for cmd in _run_commands(workflow):
        tokens = cmd.split()
        if "tox" not in tokens:
            continue
        for flag, value in zip(tokens, tokens[1:]):
            if flag == "-e":
                referenced.extend(value.split(","))
    assert referenced, "no tox environments referenced by ci.yml"
    for env in referenced:
        assert tox.has_section(f"testenv:{env}"), (
            f"ci.yml uses tox env {env!r} missing from tox.ini"
        )


def test_smoke_and_trace_scripts_exist(workflow):
    commands = list(_run_commands(workflow))
    assert any("bench_obligations.py --smoke" in cmd for cmd in commands)
    assert any("--trace" in cmd and "--metrics" in cmd for cmd in commands)
    assert (ROOT / "benchmarks" / "bench_obligations.py").exists()


def test_bench_smoke_guards_representation_attribution(workflow):
    """The bench-smoke job must assert the per-layer representation
    attribution exists in the smoke JSON, and hold the committed full
    benchmark to the serial columnar-vs-dict speedup floor."""
    commands = [step["run"] for step in _steps(workflow, "bench-smoke")
                if "run" in step]
    smoke = next(cmd for cmd in commands
                 if "BENCH_obligations_smoke.json" in cmd)
    for field in (
        "serial_dict",
        "serial_interned",
        "serial_columnar",
        "interning_vs_dict",
        "batching_vs_interned",
        "columnar_vs_dict",
        "int_bounds_bytes",
    ):
        assert field in smoke, f"smoke validation misses {field!r}"

    floor = next(
        cmd for cmd in commands
        if '"BENCH_obligations.json"' in cmd and "floor" in cmd
    )
    assert "columnar_vs_dict" in floor
    assert "3.0" in floor
    # The committed benchmark itself must already satisfy what CI checks.
    import json

    recorded = json.loads((ROOT / "BENCH_obligations.json").read_text())
    assert recorded["representation"]["speedup"]["columnar_vs_dict"] >= 3.0


@pytest.mark.parametrize(
    "job",
    [
        "trace-artifact",
        "fault-injection",
        "serve-smoke",
        "explain-artifact",
        "chaos-soak",
    ],
)
def test_artifact_upload_requires_files(workflow, job):
    uploads = [
        step
        for step in _steps(workflow, job)
        if step.get("uses", "").startswith("actions/upload-artifact")
    ]
    assert len(uploads) == 1
    assert uploads[0]["with"]["if-no-files-found"] == "error"


def test_fault_injection_job_interrupts_then_resumes(workflow):
    """The resilience job must be hang-bounded (``timeout-minutes``), run
    the fault/journal regression files, demand the partial-report exit
    code (130) from the injected-interrupt run, and resume from the
    salvaged journal afterwards."""
    job = workflow["jobs"]["fault-injection"]
    assert 0 < job["timeout-minutes"] <= 30
    commands = [step["run"] for step in job["steps"] if "run" in step]
    suite = next(cmd for cmd in commands if "pytest" in cmd)
    for name in ("test_faults.py", "test_resilience.py", "test_journal.py"):
        assert name in suite
        assert (ROOT / "tests" / "engine" / name).exists()
    interrupted = next(
        step
        for step in job["steps"]
        if "REPRO_FAULTS" in (step.get("env") or {})
    )
    assert "interrupt" in interrupted["env"]["REPRO_FAULTS"]
    assert "--checkpoint" in interrupted["run"]
    assert "130" in interrupted["run"]
    assert any("--resume" in cmd for cmd in commands)


def test_incremental_verification_job_proves_cache_reuse(workflow):
    """The incremental job must verify twice against one ``--cache``
    directory, assert the warm run discharges *zero* obligations (the
    ``executed=0`` grep), then edit exactly one gate through a mutation
    anchor that still exists in the source and demand a partial re-run
    (``0 < executed < total``)."""
    job = workflow["jobs"]["incremental-verification"]
    assert "fast" in job["needs"]
    commands = [step["run"] for step in job["steps"] if "run" in step]

    verify_cmds = [cmd for cmd in commands if "repro verify" in cmd]
    assert len(verify_cmds) == 3, "cold, warm, and post-edit runs"
    for cmd in verify_cmds:
        assert "--cache .rcache" in cmd
        assert "--cache-stats" in cmd
        # tee feeds the greps; without pipefail a failed verify would
        # vanish behind tee's exit code.
        assert "set -o pipefail" in cmd

    warm = verify_cmds[1]
    assert "executed=0" in warm

    mutation = next(cmd for cmd in commands if "mutation anchor" in cmd)
    anchor = next(
        line.split("needle = ", 1)[1].strip("'\" ")
        for line in mutation.splitlines()
        if line.strip().startswith("needle =")
    )
    source = (ROOT / "src" / "repro" / "protocols" / "pingpong.py").read_text()
    assert source.count(anchor) == 1, "mutation anchor drifted from source"

    partial = verify_cmds[2]
    assert "0 < executed < total" in partial


def test_chaos_soak_job_is_seeded_and_gated(workflow):
    """The chaos job must run the soak with a pinned ``--seed`` (a CI
    failure has to replay locally), write the event-log artifact, and
    hold the sandbox isolation overhead to the recorded ≤15% gate."""
    job = workflow["jobs"]["chaos-soak"]
    commands = [step["run"] for step in job["steps"] if "run" in step]
    soak = next(cmd for cmd in commands if "chaos_soak.py" in cmd)
    assert "--seed" in soak
    assert "chaos-events.jsonl" in soak
    assert (ROOT / "benchmarks" / "chaos_soak.py").exists()
    overhead = next(cmd for cmd in commands if "--sandbox-overhead" in cmd)
    assert "set -o pipefail" in overhead
    # The committed benchmark already satisfies what CI re-measures.
    import json

    recorded = json.loads((ROOT / "BENCH_obligations.json").read_text())
    sandbox = recorded["sandbox"]
    assert sandbox["overhead_fraction"] <= sandbox["gate_max_fraction"]
    assert sandbox["verdict"] is True


def test_every_job_caches_pip_and_tox_environments(workflow):
    """Every job must restore the pip/tox caches, keyed on the files
    that define the environments (``pyproject.toml``/``tox.ini``) so an
    edit to either invalidates the cache instead of serving stale
    dependencies."""
    for name, job in workflow["jobs"].items():
        caches = [
            step
            for step in job["steps"]
            if step.get("uses", "").startswith("actions/cache")
        ]
        assert len(caches) == 1, f"{name}: expected exactly one cache step"
        with_ = caches[0]["with"]
        assert "~/.cache/pip" in with_["path"], name
        assert ".tox" in with_["path"], name
        key = with_["key"]
        assert "hashFiles('pyproject.toml', 'tox.ini')" in key, name
        # Matrix jobs must key per interpreter, or 3.10 wheels leak
        # into the 3.13 environment.
        assert "py" in key, name


def test_serve_smoke_job_gates_warm_reuse_and_resume(workflow):
    """The serve-smoke job must boot the daemon, prove the second
    identical request executes zero obligations, run the sustained load
    test that produces the uploaded histogram, SIGTERM the daemon
    mid-job under an injected hang, and assert the journal-backed
    resume completes after restart."""
    job = workflow["jobs"]["serve-smoke"]
    assert "fast" in job["needs"]
    assert 0 < job["timeout-minutes"] <= 30
    commands = [step["run"] for step in job["steps"] if "run" in step]

    boot = next(cmd for cmd in commands if "repro serve" in cmd)
    assert "repro-serve: listening" in boot

    warm = next(cmd for cmd in commands if '"executed"' in cmd)
    assert 'split["executed"] == 0' in warm

    load = next(cmd for cmd in commands if "bench_serve.py" in cmd)
    assert "--load" in load
    assert "serve-load.json" in load
    assert (ROOT / "benchmarks" / "bench_serve.py").exists()

    hang_step = next(
        step
        for step in job["steps"]
        if "REPRO_FAULTS" in (step.get("env") or {})
    )
    assert "hang" in hang_step["env"]["REPRO_FAULTS"]
    assert "kill -TERM" in hang_step["run"]
    assert '"event": "interrupted"' in hang_step["run"]

    resume = next(cmd for cmd in commands if "resumed" in cmd)
    assert 'split["resumed"] > 0' in resume

    upload = next(
        step
        for step in job["steps"]
        if step.get("uses", "").startswith("actions/upload-artifact")
    )
    assert upload["with"]["path"] == "serve-load.json"


def test_explain_job_runs_seeded_fixture_and_gates_on_minimization(workflow):
    """The diagnostics job must run ``repro explain`` on a fixture that
    exists in the registry, write the JSON report, and assert both replay
    confirmation and shrinkage before uploading."""
    from repro.diagnose import FIXTURES

    commands = [
        step["run"]
        for step in _steps(workflow, "explain-artifact")
        if "run" in step
    ]
    explain_cmd = next(cmd for cmd in commands if "repro explain" in cmd)
    fixture_name = explain_cmd.split("repro explain", 1)[1].split()[0]
    assert fixture_name in FIXTURES
    assert "--json" in explain_cmd
    validation = next(cmd for cmd in commands if "failure-report.json" in cmd
                      and "json.load" in cmd)
    assert "repro.obs/failure/v1" in validation
    assert "replay_confirmed" in validation
    assert "minimized_size" in validation
