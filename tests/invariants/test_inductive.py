"""Tests for the baseline inductive-invariant checker and the invariant
library (the Section 5.2 invariant-complexity comparison)."""

import pytest

from repro.core import Store, explore, initial_config
from repro.invariants import (
    ConfigView,
    broadcast_invariant,
    broadcast_invariant_weakened,
    check_inductive_invariant,
    paxos_easy_invariant,
    paxos_full_invariant,
    paxos_invariants,
)
from repro.invariants.library import paxos_candidate_space
from repro.logic import Atom, count_atoms, count_conjuncts
from repro.protocols import broadcast, paxos

from ..conftest import make_counter_program


def test_config_view_exposes_globals_and_omega():
    program = make_counter_program(1)
    init = initial_config(Store({"x": 0}))
    view = ConfigView(init)
    assert view["x"] == 0
    assert len(view["Omega"]) == 1
    assert view.get("missing", "d") == "d"


def test_trivial_invariant_on_counter():
    program = make_counter_program(2)
    init = initial_config(Store({"x": 0}))
    reach = explore(program, [init]).reachable
    inv = Atom("x≥0", lambda e: e["x"] >= 0)
    result = check_inductive_invariant(program, inv, [init], reach)
    assert result.holds


def test_non_inductive_invariant_detected():
    program = make_counter_program(2)
    init = initial_config(Store({"x": 0}))
    reach = explore(program, [init]).reachable
    inv = Atom("x≤1", lambda e: e["x"] <= 1)  # broken by the second Inc
    result = check_inductive_invariant(program, inv, [init], reach)
    assert not result.inductive_ok
    assert any(kind == "consecution" for kind, _w in result.counterexamples)


def test_initiation_failure_detected():
    program = make_counter_program(1)
    init = initial_config(Store({"x": 0}))
    inv = Atom("x>5", lambda e: e["x"] > 5)
    result = check_inductive_invariant(program, inv, [init], [])
    assert not result.init_ok


def test_safety_failure_detected():
    program = make_counter_program(1)
    init = initial_config(Store({"x": 0}))
    reach = explore(program, [init]).reachable
    inv = Atom("true", lambda _e: True)
    result = check_inductive_invariant(
        program, inv, [init], reach, spec=lambda c: c.glob["x"] == 99
    )
    assert not result.safe_ok


class TestBroadcastInvariant2:
    """The paper's invariant (2) is inductive and implies the spec; the
    version missing the intermediate disjunct is not inductive."""

    def _setup(self, n=3):
        program = broadcast.make_atomic(n)
        init = initial_config(broadcast.initial_global(n))
        reach = explore(program, [init]).reachable
        return program, init, reach, n

    def test_full_invariant_inductive_and_safe(self):
        program, init, reach, n = self._setup()
        values = broadcast.default_values(n)
        result = check_inductive_invariant(
            program,
            broadcast_invariant(),
            [init],
            reach,
            spec=lambda c: broadcast.spec_holds(c.glob, n, values),
        )
        assert result.holds

    def test_weakened_invariant_not_inductive(self):
        program, init, reach, _n = self._setup()
        result = check_inductive_invariant(
            program, broadcast_invariant_weakened(), [init], reach
        )
        assert not result.inductive_ok

    def test_invariant_complexity_exceeds_is_artifacts(self):
        """Invariant (2) carries three disjuncts with multiple atoms each,
        versus the single-gate abstraction IS needs."""
        assert count_atoms(broadcast_invariant()) >= 8


class TestPaxosBaseline:
    def test_easy_conjuncts_not_inductive_over_candidates(self):
        """Without the choosable-style conjunct (formulas (8)-(12) of
        'Paxos made EPR'), consecution fails — the classical CTI."""
        R, N = 2, 2
        program = paxos.make_atomic(R, N)
        init = initial_config(paxos.initial_global(R, N))
        candidates = paxos_candidate_space(R, N)
        result = check_inductive_invariant(
            program, paxos_easy_invariant(N), [init], candidates
        )
        assert not result.inductive_ok

    def test_full_invariant_inductive_over_candidates(self):
        R, N = 2, 2
        program = paxos.make_atomic(R, N)
        init = initial_config(paxos.initial_global(R, N))
        candidates = paxos_candidate_space(R, N)
        result = check_inductive_invariant(
            program,
            paxos_full_invariant(N),
            [init],
            candidates,
            spec=lambda c: paxos.spec_holds(c.glob, R),
        )
        assert result.holds

    def test_hard_conjuncts_are_extra_work(self):
        easy, hard = paxos_invariants(3)
        assert len(easy) >= 4
        assert len(hard) >= 1
        assert count_conjuncts(paxos_full_invariant(3)) == len(easy) + len(hard)
