"""Checkpoint journal format, staleness guard, and torn-tail recovery.

The journal's contract: the file on disk is always a valid prefix of the
run (header + one JSON line per *completed* obligation), a resume only
accepts a journal whose fingerprint matches the current run, and a
truncated trailing record — the writer died mid-append — is dropped
rather than poisoning the load.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.engine.obligations as obligations_mod
from repro.core.refinement import CheckResult
from repro.engine.journal import (
    JOURNAL_SCHEMA,
    CheckpointJournal,
    StaleJournalError,
    run_fingerprint,
)
from repro.engine.obligations import Obligation
from repro.engine.scheduler import ObligationOutcome, SerialScheduler

CHAIN = [
    Obligation(key="A", kind="abs", condition="A"),
    Obligation(key="B", kind="I1", condition="B", deps=("A",)),
    Obligation(key="C", kind="I2", condition="C", deps=("B",)),
    Obligation(key="D", kind="CO", condition="D"),
]

FP = "f" * 64


def _completed(key, holds=True, checked=7, witnesses=()):
    return ObligationOutcome(
        key,
        CheckResult(key, holds, list(witnesses), checked=checked),
        elapsed=0.25,
        pid=os.getpid(),
        attempts=1,
    )


# --------------------------------------------------------------------- #
# Fingerprint
# --------------------------------------------------------------------- #


def test_fingerprint_is_deterministic_and_key_sensitive():
    fp = run_fingerprint(None, None, CHAIN)
    assert fp == run_fingerprint(None, None, CHAIN)
    assert fp != run_fingerprint(None, None, CHAIN[:-1])


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #


def test_fresh_journal_writes_header_then_records(tmp_path):
    journal, completed = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    assert completed == {}
    assert journal.record(_completed("A"))
    journal.close()

    lines = (tmp_path / "demo.jsonl").read_text().splitlines()
    header = json.loads(lines[0])
    assert header == {
        "schema": JOURNAL_SCHEMA,
        "fingerprint": FP,
        "label": "demo",
        "obligations": 4,
    }
    record = json.loads(lines[1])
    assert record["key"] == "A" and record["holds"] is True
    assert record["checked"] == 7 and record["witnesses"] is None


def test_only_completed_outcomes_are_journaled(tmp_path):
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    pid = os.getpid()
    skipped = ObligationOutcome("B", None, 0.0, pid)
    timed_out = ObligationOutcome("C", None, 1.0, pid, timed_out=True)
    crashed = ObligationOutcome("D", None, 1.0, pid, error="FaultError: boom")
    resumed = _completed("A")
    resumed.resumed = True
    assert not journal.record(skipped)
    assert not journal.record(timed_out)
    assert not journal.record(crashed)
    assert not journal.record(resumed)
    journal.close()
    assert len((tmp_path / "demo.jsonl").read_text().splitlines()) == 1


def test_witnesses_roundtrip_through_base64_pickle(tmp_path):
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    journal.record(_completed("A", holds=False, witnesses=[("store", 1), ("store", 2)]))
    journal.close()

    loaded = CheckpointJournal.load(tmp_path / "demo.jsonl", FP)
    result = loaded["A"].to_result()
    assert result.holds is False
    assert result.counterexamples == [("store", 1), ("store", 2)]


def test_open_without_resume_truncates_existing_journal(tmp_path):
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    journal.record(_completed("A"))
    journal.close()
    journal, completed = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    journal.close()
    assert completed == {}
    assert len((tmp_path / "demo.jsonl").read_text().splitlines()) == 1


def test_resume_loads_completed_outcomes_and_appends(tmp_path):
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    journal.record(_completed("A"))
    journal.record(_completed("B", holds=False))
    journal.close()

    journal, completed = CheckpointJournal.open(
        tmp_path, "demo", FP, 4, resume=True
    )
    assert set(completed) == {"A", "B"}
    assert completed["B"].holds is False
    # Appending after a resume extends the same file (no new header).
    journal.record(_completed("C"))
    journal.close()
    lines = (tmp_path / "demo.jsonl").read_text().splitlines()
    assert len(lines) == 4 and json.loads(lines[-1])["key"] == "C"


def test_newest_record_wins_on_duplicate_keys(tmp_path):
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    journal.record(_completed("A", holds=False))
    journal.record(_completed("A", holds=True, checked=11))
    journal.close()
    loaded = CheckpointJournal.load(tmp_path / "demo.jsonl", FP)
    assert loaded["A"].holds is True and loaded["A"].checked == 11


def test_maybe_sync_flushes_but_throttles_fsync(tmp_path, monkeypatch):
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    fsyncs = []
    monkeypatch.setattr(
        "repro.engine.journal.os.fsync", lambda fd: fsyncs.append(fd)
    )
    for key in ("A", "B", "C", "D"):
        journal.record(_completed(key))
        journal.maybe_sync(min_interval=3600.0)
    # Flushed (visible on disk) without one fsync per record.
    assert not fsyncs
    assert len((tmp_path / "demo.jsonl").read_text().splitlines()) == 5
    journal.sync()
    assert len(fsyncs) == 1
    journal.close()


# --------------------------------------------------------------------- #
# Staleness guard and corruption
# --------------------------------------------------------------------- #


def test_resume_refuses_mismatched_fingerprint(tmp_path):
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    journal.record(_completed("A"))
    journal.close()
    with pytest.raises(StaleJournalError, match="different run"):
        CheckpointJournal.open(tmp_path, "demo", "0" * 64, 4, resume=True)


def test_load_refuses_corrupted_header(tmp_path):
    path = tmp_path / "demo.jsonl"
    path.write_text("{not json\n")
    with pytest.raises(StaleJournalError, match="unreadable header"):
        CheckpointJournal.load(path, FP)


def test_torn_multibyte_header_raises_stale_not_unicode_error(tmp_path):
    """Regression: a header torn mid-UTF-8-sequence used to escape as a
    raw ``UnicodeDecodeError`` from ``read_text`` before any guard ran —
    it must degrade to the same StaleJournalError as other corruption."""
    path = tmp_path / "demo.jsonl"
    torn = '{"label": "café"'.encode("utf-8")[:-2]  # cut inside 'é'
    path.write_bytes(torn + b"\n")
    with pytest.raises(StaleJournalError, match="unreadable header"):
        CheckpointJournal.load(path, FP)


def test_binary_garbage_header_raises_stale_not_unicode_error(tmp_path):
    path = tmp_path / "demo.jsonl"
    path.write_bytes(b"\xff\xfe\x00garbage\n")
    with pytest.raises(StaleJournalError, match="unreadable header"):
        CheckpointJournal.load(path, FP)


def test_torn_multibyte_trailing_record_is_dropped(tmp_path):
    """Byte-level torn tail: a record cut mid-multibyte-sequence drops
    exactly like one cut mid-JSON, keeping the valid prefix."""
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    journal.record(_completed("A"))
    journal.close()
    path = tmp_path / "demo.jsonl"
    with open(path, "ab") as handle:
        handle.write('{"key": "café'.encode("utf-8")[:-1])
    loaded = CheckpointJournal.load(path, FP)
    assert set(loaded) == {"A"}


def test_load_refuses_wrong_schema_and_empty_file(tmp_path):
    path = tmp_path / "demo.jsonl"
    path.write_text(json.dumps({"schema": "something/else"}) + "\n")
    with pytest.raises(StaleJournalError, match="not an obligation journal"):
        CheckpointJournal.load(path, FP)
    path.write_text("")
    with pytest.raises(StaleJournalError, match="empty journal"):
        CheckpointJournal.load(path, FP)


def test_torn_trailing_record_is_dropped(tmp_path):
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    journal.record(_completed("A"))
    journal.record(_completed("B"))
    journal.close()
    path = tmp_path / "demo.jsonl"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "C", "hol')  # the writer died mid-append
    loaded = CheckpointJournal.load(path, FP)
    assert set(loaded) == {"A", "B"}


def test_nothing_after_mid_file_corruption_is_trusted(tmp_path):
    journal, _ = CheckpointJournal.open(tmp_path, "demo", FP, 4)
    journal.record(_completed("A"))
    journal.close()
    path = tmp_path / "demo.jsonl"
    lines = path.read_text().splitlines()
    good_tail = json.dumps(
        {"key": "B", "name": "B", "holds": True, "checked": 1}
    )
    path.write_text("\n".join([lines[0], lines[1], "garbage", good_tail]) + "\n")
    loaded = CheckpointJournal.load(path, FP)
    assert set(loaded) == {"A"}


def test_label_slug_sanitizes_path_hostile_characters(tmp_path):
    journal, _ = CheckpointJournal.open(
        tmp_path, "paxos-IS-Paxos (r=2/n=2)", FP, 4
    )
    journal.close()
    assert journal.path.parent == tmp_path
    assert journal.path.name == "paxos-IS-Paxos-r-2-n-2.jsonl"


# --------------------------------------------------------------------- #
# Scheduler integration: journal + seeded verdicts
# --------------------------------------------------------------------- #


def test_serial_scheduler_journals_completed_outcomes(tmp_path, monkeypatch):
    monkeypatch.setattr(
        obligations_mod,
        "execute_obligation",
        lambda app, universe, ob, lm_universes=None: CheckResult(
            ob.key, ob.key != "A"
        ),
    )
    journal, _ = CheckpointJournal.open(tmp_path, "run", FP, len(CHAIN))
    SerialScheduler().run(None, None, CHAIN, journal=journal)
    journal.close()
    loaded = CheckpointJournal.load(tmp_path / "run.jsonl", FP)
    assert set(loaded) == {"A", "B", "C", "D"}
    assert loaded["A"].holds is False and loaded["B"].holds is True


def test_seeded_verdicts_drive_fail_fast_skips(monkeypatch):
    """Resume semantics at the scheduler level: a journaled FAIL for A
    must skip A's dependents exactly as a live FAIL would."""
    monkeypatch.setattr(
        obligations_mod,
        "execute_obligation",
        lambda app, universe, ob, lm_universes=None: CheckResult(ob.key, True),
    )
    todo = [ob for ob in CHAIN if ob.key != "A"]
    outcomes = SerialScheduler().run(
        None, None, todo, fail_fast=True, seed_verdicts={"A": False}
    )
    assert outcomes["B"].skipped and outcomes["C"].skipped
    assert outcomes["D"].result is not None and outcomes["D"].result.holds
