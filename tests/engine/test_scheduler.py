"""Scheduler-level behaviour: fail-fast skip propagation, job clamping,
and the shard-sizing helpers.

The fail-fast tests drive both backends over a stub obligation chain (the
executor is monkeypatched; the fork-based pool inherits the patch through
copy-on-write), pinning down the *transitive* skip semantics: an
obligation is skipped when a dependency failed **or was itself skipped**,
so a three-level chain A ← B ← C with A failing skips both B and C — in
both backends, identically.
"""

from __future__ import annotations

import os

import pytest

import repro.engine.obligations as obligations_mod
from repro.core.cache import reset_process_cache
from repro.core.refinement import CheckResult
from repro.engine.obligations import (
    Obligation,
    _slices,
    lm_slice_count,
    shard_count,
)
from repro.engine.scheduler import (
    ProcessPoolScheduler,
    SerialScheduler,
    _available_cpus,
    _fork_available,
    make_scheduler,
)

#: A ← B ← C three-level dependency chain plus an independent D.
CHAIN = [
    Obligation(key="A", kind="abs", condition="A"),
    Obligation(key="B", kind="I1", condition="B", deps=("A",)),
    Obligation(key="C", kind="I2", condition="C", deps=("B",)),
    Obligation(key="D", kind="CO", condition="D"),
]


def _stub_execute(app, universe, obligation, lm_universes=None):
    # Only A fails; everything else (that runs) passes.
    return CheckResult(obligation.key, obligation.key != "A")


def _backends():
    yield "serial", lambda: SerialScheduler()
    if _fork_available():
        # warm=False: the stub chain has no real application to warm from.
        yield "pool", lambda: ProcessPoolScheduler(2, warm=False, clamp=False)


@pytest.mark.parametrize("name,make", list(_backends()))
def test_fail_fast_skips_transitively_through_chain(name, make, monkeypatch):
    """The regression: C's only dependency B never *failed* (it was
    skipped), but C must be skipped all the same."""
    monkeypatch.setattr(obligations_mod, "execute_obligation", _stub_execute)
    outcomes = make().run(None, None, CHAIN, fail_fast=True)

    assert set(outcomes) == {"A", "B", "C", "D"}
    assert outcomes["A"].result is not None and not outcomes["A"].result.holds
    # B skipped because A failed; C skipped because B was skipped.
    assert outcomes["B"].result is None
    assert outcomes["C"].result is None
    assert outcomes["C"].elapsed == 0.0
    # Independent work still runs.
    assert outcomes["D"].result is not None and outcomes["D"].result.holds


@pytest.mark.parametrize("name,make", list(_backends()))
def test_without_fail_fast_everything_runs(name, make, monkeypatch):
    monkeypatch.setattr(obligations_mod, "execute_obligation", _stub_execute)
    outcomes = make().run(None, None, CHAIN, fail_fast=False)
    assert all(o.result is not None for o in outcomes.values())


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
def test_backends_skip_identical_sets(monkeypatch):
    monkeypatch.setattr(obligations_mod, "execute_obligation", _stub_execute)
    serial = SerialScheduler().run(None, None, CHAIN, fail_fast=True)
    pool = ProcessPoolScheduler(2, warm=False, clamp=False).run(
        None, None, CHAIN, fail_fast=True
    )
    skipped_serial = {k for k, o in serial.items() if o.result is None}
    skipped_pool = {k for k, o in pool.items() if o.result is None}
    assert skipped_serial == skipped_pool == {"B", "C"}


def test_jobs_beyond_cpu_count_warn_and_clamp():
    cpus = _available_cpus()
    with pytest.warns(RuntimeWarning, match="clamping"):
        scheduler = ProcessPoolScheduler(cpus + 7)
    assert scheduler.requested_jobs == cpus + 7
    assert scheduler.jobs == cpus


def test_clamp_false_keeps_requested_jobs():
    cpus = _available_cpus()
    scheduler = ProcessPoolScheduler(cpus + 7, clamp=False)
    assert scheduler.jobs == cpus + 7


def test_clamp_uses_affinity_mask_not_host_cores(monkeypatch):
    """The clamp must follow the CPUs this process may run on, not the
    host's core count: under a 2-CPU affinity mask on a 64-core host,
    jobs=8 schedules 2 workers, deterministically."""
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    assert _available_cpus() == 2
    with pytest.warns(RuntimeWarning, match="affinity"):
        scheduler = ProcessPoolScheduler(8)
    assert scheduler.jobs == 2


def test_available_cpus_falls_back_to_cpu_count(monkeypatch):
    def _raises(pid):
        raise OSError("no affinity on this platform")

    monkeypatch.setattr(os, "sched_getaffinity", _raises, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 6)
    assert _available_cpus() == 6


def test_jobs_within_cpu_count_do_not_warn():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        scheduler = ProcessPoolScheduler(1)
    assert scheduler.jobs == 1


def test_make_scheduler_is_serial_for_one_core():
    assert isinstance(make_scheduler(None), SerialScheduler)
    assert isinstance(make_scheduler(1), SerialScheduler)


def test_make_scheduler_clamp_warning_is_deterministic():
    """``make_scheduler(2)`` warns exactly when the host has fewer than two
    CPUs. Capturing it explicitly (instead of ``simplefilter("ignore")``)
    keeps the suite warning-clean under ``-W error`` on 1–2 core CI
    runners *and* proves the warning fires where it should."""
    import warnings

    cpus = os.cpu_count() or 1
    if cpus < 2:
        with pytest.warns(RuntimeWarning, match="clamping"):
            scheduler = make_scheduler(2)
        assert scheduler.jobs == cpus
    else:
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scheduler = make_scheduler(2)
        assert scheduler.jobs == 2
    assert isinstance(scheduler, ProcessPoolScheduler)


def test_single_worker_pool_degrades_to_serial(monkeypatch):
    """A pool clamped to one worker never forks: it runs the serial
    backend (identical outcomes, none of the fork/pickle overhead)."""
    monkeypatch.setattr(obligations_mod, "execute_obligation", _stub_execute)
    scheduler = ProcessPoolScheduler(1, clamp=False)
    outcomes = scheduler.run(None, None, CHAIN, fail_fast=True)
    assert all(o.pid == os.getpid() for o in outcomes.values())
    skipped = {k for k, o in outcomes.items() if o.result is None}
    assert skipped == {"B", "C"}


# --------------------------------------------------------------------- #
# Shard sizing
# --------------------------------------------------------------------- #


def test_slices_are_contiguous_and_balanced():
    for num_items in (0, 1, 5, 16, 100, 2832):
        for shards in (1, 2, 3, 8):
            bounds = _slices(num_items, shards)
            # Contiguous cover of range(num_items).
            assert bounds[0][0] == 0 and bounds[-1][1] == num_items
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo
            sizes = [hi - lo for lo, hi in bounds]
            assert max(sizes) - min(sizes) <= 1


def test_shard_count_scales_with_universe_and_parallelism():
    # Serial layout: never shard.
    assert shard_count(2832, 1) == 1
    # Tiny universes stay whole (min_chunk floor).
    assert shard_count(10, 8) == 1
    # Large universes: factor * parallelism shards.
    assert shard_count(2832, 4) == 8
    # Mid-size universes cap at num_items // min_chunk.
    assert shard_count(40, 8) == 2


def test_lm_slice_count_zero_when_serial():
    assert lm_slice_count(12, 100, 1) == 0
    assert lm_slice_count(0, 100, 8) == 0


def test_lm_slice_count_adds_slices_only_for_small_programs():
    # 12 pairs x 4 conditions = 48 units >= 2*4 target: one slice each.
    assert lm_slice_count(12, 100, 4) == 1
    # 1 pair x 4 conditions < 2*4: slice the globals to make up units.
    assert lm_slice_count(1, 100, 4) == 2
    # Never more slices than globals.
    assert lm_slice_count(1, 1, 16) == 1


def teardown_module(_module=None):
    # The pool runs above marked nothing inheritable, but reset anyway so
    # later test modules start from a cold, private cache.
    reset_process_cache()
