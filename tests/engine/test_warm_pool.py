"""Fork-time cache pre-warming and sharded obligation discharge.

The process-pool backend's two performance legs, checked for soundness:

* **Warm fork inheritance** — the parent populates the evaluation cache
  (``ISApplication.warm_evaluation_cache``) and marks it inheritable;
  forked children *adopt* the memo tables (warm lookups are hits) with
  fresh counters (per-worker hit rates count only the worker's own
  lookups). Adoption is opt-in: without the mark a fork still rebuilds
  an empty cache (covered in ``tests/core/test_cache.py``).
* **Sharded merge parity** — splitting I3 and the LM pair cells into
  sub-obligations never changes the merged condition map: verdicts,
  check totals, and counterexample lists (including their cap of five
  and their order) are byte-identical to the inline checker's, on
  passing and failing applications alike.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core import Action, ISApplication, initial_config
from repro.core.cache import (
    caching_disabled,
    process_cache,
    reset_process_cache,
)
from repro.core.context import GhostContext
from repro.core.store import Store
from repro.core.universe import StoreUniverse
from repro.engine.scheduler import ProcessPoolScheduler, _fork_available
from repro.protocols import pingpong
from repro.protocols.common import GHOST

ROUNDS = 2

pytestmark = pytest.mark.skipif(
    not _fork_available(), reason="requires fork start method"
)


@pytest.fixture(scope="module")
def good():
    return pingpong.make_sequentialization(ROUNDS)


@pytest.fixture(scope="module")
def universe(good):
    return StoreUniverse.from_reachable(
        good.program, [initial_config(pingpong.initial_global(ROUNDS))]
    ).with_context(GhostContext(GHOST))


@pytest.fixture(autouse=True)
def _cold_cache():
    reset_process_cache()
    yield
    # Never leak an inheritable singleton into later test modules.
    reset_process_cache()


def _condition_map(result):
    return {
        key: (r.name, r.holds, r.checked, tuple(r.counterexamples))
        for key, r in result.conditions.items()
    }


def _weaken_invariant(good):
    """I3 fails with counterexamples (same mutation as the mutation suite)."""
    names = set(good.eliminated)
    invariant = good.invariant

    def weakened(state):
        for t in invariant.transitions(state):
            if any(p.action in names for p in t.created.support()):
                yield t

    return ISApplication(
        program=good.program,
        m_name=good.m_name,
        eliminated=good.eliminated,
        invariant=Action(
            invariant.name, invariant.gate, weakened, invariant.params
        ),
        measure=good.measure,
        choice=good.choice,
        abstractions=dict(good.abstractions),
    )


# --------------------------------------------------------------------- #
# Fork-time adoption of warm memos
# --------------------------------------------------------------------- #

_PROBE_STORE = Store({"x": 0})


def _probe_gate(_state):
    return True


def _probe_transitions(_state):
    yield from ()


def _adoption_probe(queue):
    # Runs in a forked child whose parent warmed + marked the cache: the
    # singleton must rebind to this PID with the memo tables intact.
    cache = process_cache()
    view = cache.cached(Action("Probe", _probe_gate, _probe_transitions))
    view.gate(_PROBE_STORE)
    stats = cache.stats_by_kind()["gate"]
    queue.put((os.getpid(), cache.pid, stats.hits, stats.misses))


def test_forked_child_adopts_warm_memos_with_fresh_counters():
    parent_cache = process_cache()
    view = parent_cache.cached(Action("Probe", _probe_gate, _probe_transitions))
    view.gate(_PROBE_STORE)  # populate the memo in the parent
    assert parent_cache.stats_by_kind()["gate"].misses == 1
    parent_cache.mark_inheritable()

    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    child = context.Process(target=_adoption_probe, args=(queue,))
    child.start()
    child_os_pid, child_cache_pid, child_hits, child_misses = queue.get(
        timeout=60
    )
    child.join(timeout=60)

    assert child_cache_pid == child_os_pid != parent_cache.pid
    # Warm memo: the child's very first lookup is a hit ...
    assert (child_hits, child_misses) == (1, 0)
    # ... against counters that started fresh, and the parent's own
    # counters never see the child's lookups.
    assert process_cache() is parent_cache
    assert parent_cache.stats_by_kind()["gate"].hits == 0


def test_warm_evaluation_cache_populates_and_counts(good, universe):
    evaluated = good.warm_evaluation_cache(universe)
    assert evaluated > 0
    assert process_cache().stats().total > 0
    # With caching off there is nothing to warm.
    reset_process_cache()
    with caching_disabled():
        assert good.warm_evaluation_cache(universe) == 0


# --------------------------------------------------------------------- #
# Warm + sharded pool vs the inline oracle
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("warm", [True, False])
def test_pool_matches_inline_warm_and_cold(warm, good, universe):
    inline = good.check_inline(universe)
    scheduler = ProcessPoolScheduler(4, warm=warm, clamp=False)
    pooled = good.check(universe, scheduler=scheduler)
    assert _condition_map(pooled) == _condition_map(inline)
    assert pooled.total_checked == inline.total_checked


def test_warmup_accounting_recorded(good, universe):
    scheduler = ProcessPoolScheduler(2, clamp=False)
    result = good.check(universe, scheduler=scheduler)
    assert result.warmup_seconds > 0.0
    assert scheduler.last_warmed_evaluations > 0
    assert result.warmup_seconds == scheduler.last_warmup_seconds

    cold = ProcessPoolScheduler(2, warm=False, clamp=False)
    cold_result = good.check(universe, scheduler=cold)
    assert cold_result.warmup_seconds == 0.0
    assert cold.last_warmed_evaluations == 0


def test_worker_cache_stats_cover_all_obligations(good, universe):
    result = good.check(
        universe, scheduler=ProcessPoolScheduler(2, clamp=False)
    )
    assert result.worker_cache_stats
    total = 0
    for pid, entry in result.worker_cache_stats.items():
        assert pid != os.getpid()
        assert entry["obligations"] > 0
        assert set(entry["stats"]) == {"gate", "transitions"}
        total += entry["obligations"]
    assert total == result.num_obligations


def test_serial_run_has_no_warmup_or_workers(good, universe):
    result = good.check(universe, jobs=1)
    assert result.warmup_seconds == 0.0
    assert set(result.worker_cache_stats) == {os.getpid()}


# --------------------------------------------------------------------- #
# Sharded merge parity on a failing application
# --------------------------------------------------------------------- #


def test_sharded_merge_preserves_counterexamples_and_totals(good, universe):
    bad = _weaken_invariant(good)
    inline = bad.check_inline(universe)
    assert not inline.holds
    assert inline.conditions["I3"].counterexamples

    pooled = bad.check(
        universe, scheduler=ProcessPoolScheduler(4, clamp=False)
    )
    # Sharding actually happened: more obligations than the serial layout,
    # with per-condition LM cells among them (I3 only shards once the
    # universe outgrows the min_chunk floor — not at this instance size).
    serial = bad.check(universe, jobs=1)
    assert pooled.num_obligations > serial.num_obligations
    assert any("|" in key and "#" in key for key in pooled.obligation_checked)
    # ... and changed nothing observable: identical condition maps, same
    # counterexample lists (content, order, cap), same grand total.
    assert _condition_map(pooled) == _condition_map(inline)
    assert pooled.total_checked == inline.total_checked
