"""Tests for the constructive execution-rewriting engine (Lemmas 4.2/4.3).

The rewriting engine is both a product (certified sequentializations) and a
differential test of the IS condition checker: every random terminating
execution of a protocol with validated artifacts must rewrite into a single
M' step with the identical final configuration.
"""

import random

import pytest

from repro.core import (
    Execution,
    ISApplication,
    Step,
    initial_config,
    random_execution,
    terminating_executions,
)
from repro.engine import RewriteError, rewrite_execution
from repro.protocols import broadcast, pingpong, prodcons


def _random_runs(program, init, count, seed=0, max_attempts=200):
    rng = random.Random(seed)
    runs = []
    for _ in range(max_attempts):
        execution = random_execution(program, init, rng)
        if execution.terminating:
            runs.append(execution)
            if len(runs) == count:
                break
    assert len(runs) == count
    return runs


class TestBroadcast:
    def test_random_executions_rewrite_to_main_prime(self):
        n = 3
        app = broadcast.make_sequentialization(n)
        init = initial_config(broadcast.initial_global(n))
        for execution in _random_runs(app.program, init, count=10):
            result = rewrite_execution(app, execution)
            assert result.execution.final == execution.final
            assert len(result.execution.steps) == 1
            assert result.stats.absorbed == 2 * n

    def test_absorption_follows_choice_order(self):
        n = 2
        app = broadcast.make_sequentialization(n)
        init = initial_config(broadcast.initial_global(n))
        [execution] = _random_runs(app.program, init, count=1, seed=3)
        result = rewrite_execution(app, execution)
        actions = [p.action for p in result.stats.absorbed_actions]
        assert actions == ["Broadcast"] * n + ["Collect"] * n

    def test_all_interleavings_rewrite(self):
        n = 2
        app = broadcast.make_sequentialization(n)
        init = initial_config(broadcast.initial_global(n))
        count = 0
        for execution in terminating_executions(app.program, init, limit=50):
            result = rewrite_execution(app, execution)
            assert result.execution.final == execution.final
            count += 1
        assert count > 1

    def test_rewritten_execution_validates_against_p_prime(self):
        n = 2
        app = broadcast.make_sequentialization(n)
        init = initial_config(broadcast.initial_global(n))
        [execution] = _random_runs(app.program, init, count=1, seed=9)
        result = rewrite_execution(app, execution)
        result.execution.validate(app.apply())  # already done internally


class TestOtherProtocols:
    def test_pingpong_rewrites(self):
        app = pingpong.make_sequentialization(rounds=3)
        init = initial_config(pingpong.initial_global(3))
        for execution in _random_runs(app.program, init, count=5, seed=1):
            result = rewrite_execution(app, execution)
            assert result.execution.final == execution.final

    def test_prodcons_rewrites(self):
        app = prodcons.make_sequentialization(bound=3)
        init = initial_config(prodcons.initial_global(3))
        for execution in _random_runs(app.program, init, count=5, seed=2):
            result = rewrite_execution(app, execution)
            assert result.execution.final == execution.final


class TestErrors:
    def _setup(self, n=2):
        app = broadcast.make_sequentialization(n)
        init = initial_config(broadcast.initial_global(n))
        [execution] = _random_runs(app.program, init, count=1, seed=5)
        return app, init, execution

    def test_rejects_empty_execution(self):
        app, init, _ = self._setup()
        with pytest.raises(RewriteError, match="no steps"):
            rewrite_execution(app, Execution(init, []))

    def test_rejects_partial_execution(self):
        app, init, execution = self._setup()
        with pytest.raises(RewriteError, match="terminating"):
            rewrite_execution(app, Execution(init, execution.steps[:2]))

    def test_rejects_wrong_head(self):
        app, _init, execution = self._setup()
        shifted = Execution(execution.steps[0].target, execution.steps[1:])
        with pytest.raises(RewriteError, match="must start with"):
            rewrite_execution(app, shifted)

    def test_identity_abstraction_still_rewrites_terminating_runs(self):
        """Instructive subtlety: dropping CollectAbs breaks the *universal*
        LM/CO conditions (see test_sequentialize), yet every *terminating*
        execution still rewrites — blocking forces all Broadcasts before
        any Collect dynamically, so the commutation steps the rewrite
        actually performs all succeed. The abstraction is needed for the
        proof, not for any individual terminating run of this protocol."""
        n = 2
        good = broadcast.make_sequentialization(n)
        bad = ISApplication(
            good.program,
            good.m_name,
            good.eliminated,
            invariant=good.invariant,
            measure=good.measure,
            abstractions={},
        )
        init = initial_config(broadcast.initial_global(n))
        for execution in _random_runs(bad.program, init, count=5, seed=11):
            result = rewrite_execution(bad, execution)
            assert result.execution.final == execution.final

    def test_broken_invariant_reported_as_i3(self):
        """An invariant that only covers the Broadcast prefixes cannot
        absorb the Collects; the engine pinpoints condition I3."""
        n = 2
        good = broadcast.make_sequentialization(n)
        bad = ISApplication(
            good.program,
            good.m_name,
            good.eliminated,
            invariant=broadcast.make_broadcast_invariant(n),
            measure=good.measure,
            abstractions=dict(good.abstractions),
        )
        init = initial_config(broadcast.initial_global(n))
        [execution] = _random_runs(bad.program, init, count=1, seed=13)
        with pytest.raises(RewriteError, match="I3"):
            rewrite_execution(bad, execution)
