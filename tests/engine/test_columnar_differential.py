"""Differential suite: interned/columnar evaluation vs the dict oracle.

Every Table 1 protocol is checked three times — once under the dict-shaped
oracle (``columnar_disabled`` + ``interning_disabled``, the representation
the engine shipped with), once on the default interned/columnar fast path
serially, and once on the fast path through a real process pool.  The
three condition maps must be **typed-identical**: same condition keys,
same :class:`CheckResult` type, same (name, holds, checked,
counterexamples) field for field.  ``checked`` equality is the strongest
part of the contract — the columnar loops must enumerate exactly the
(global, locals, transition) triples the oracle does, in the same order,
or attribution and counterexample replay silently drift.

The final test pins the representation-independence of the persistent
result cache: fingerprints hash store *contents*, never intern ids, so a
cache written by the oracle representation must warm-hit the columnar
one with **zero** obligations executed.
"""

from __future__ import annotations

import pytest

from repro.core import initial_config
from repro.core.cache import reset_process_cache
from repro.core.columnar import columnar_active, columnar_disabled
from repro.core.context import GhostContext
from repro.core.refinement import CheckResult
from repro.core.store import interning_active, interning_disabled
from repro.core.universe import StoreUniverse
from repro.engine.scheduler import ProcessPoolScheduler
from repro.protocols import (
    broadcast,
    changroberts,
    nbuyer,
    paxos,
    pingpong,
    prodcons,
    twophase,
)
from repro.protocols.common import GHOST

from .rcache_cases import count_executions


def _first_app(pairs):
    return pairs[0][1]


#: One (application, initial global) per Table 1 protocol.  Broadcast at
#: n=3 and Paxos at R=2/N=2 dominate wall time (their universes are the
#: benchmark instances) and run in the slow lane; the other five cover
#: the representation semantics fast.
PROTOCOL_CASES = {
    "broadcast": lambda: (
        broadcast.make_sequentialization(3),
        broadcast.initial_global(3),
    ),
    "pingpong": lambda: (
        pingpong.make_sequentialization(3),
        pingpong.initial_global(3),
    ),
    "prodcons": lambda: (
        prodcons.make_sequentialization(4),
        prodcons.initial_global(4),
    ),
    "nbuyer": lambda: (
        _first_app(nbuyer.make_sequentializations(3)),
        nbuyer.initial_global(3),
    ),
    "changroberts": lambda: (
        _first_app(changroberts.make_sequentializations(4)),
        changroberts.initial_global(4),
    ),
    "twophase": lambda: (
        _first_app(twophase.make_sequentializations(3)),
        twophase.initial_global(3),
    ),
    "paxos": lambda: (
        paxos.make_sequentialization(2, 2),
        paxos.initial_global(2, 2),
    ),
}

SLOW = {"broadcast", "paxos"}


def _universe(app, init_global):
    return StoreUniverse.from_reachable(
        app.program, [initial_config(init_global)]
    ).with_context(GhostContext(GHOST))


def _typed_condition_map(result):
    """Every field the condition map determines, plus the result type —
    the columnar path must hand back plain :class:`CheckResult`s, not a
    lookalike."""
    out = {}
    for key, r in result.conditions.items():
        assert type(r) is CheckResult, (key, type(r))
        out[key] = (r.name, r.holds, r.checked, tuple(r.counterexamples))
    return out


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_process_cache()
    yield
    reset_process_cache()


@pytest.mark.parametrize(
    "name",
    [
        pytest.param(n, marks=pytest.mark.slow) if n in SLOW else n
        for n in sorted(PROTOCOL_CASES)
    ],
)
def test_columnar_matches_dict_oracle(name):
    app, init_global = PROTOCOL_CASES[name]()

    # Oracle: the dict-shaped representation end to end — Store-keyed
    # memos, per-pair combine, no columns.  Its universe is built inside
    # the switch so even reachability exploration keys the old way.
    with interning_disabled(), columnar_disabled():
        assert not interning_active() and not columnar_active()
        oracle = app.check(_universe(app, init_global), jobs=1)

    reset_process_cache()

    # Fast path, serial: interned stores + columnar batch evaluation.
    universe = _universe(app, init_global)
    assert columnar_active()
    serial = app.check(universe, jobs=1)

    assert _typed_condition_map(serial) == _typed_condition_map(oracle)
    assert serial.holds == oracle.holds
    assert serial.total_checked == oracle.total_checked

    # Fast path through a real pool: shards ship intern ids, workers
    # rebuild columns, the merged map must still be identical.  clamp=False
    # keeps both workers real even on a single-CPU host.
    reset_process_cache()
    pooled = app.check(
        _universe(app, init_global),
        scheduler=ProcessPoolScheduler(2, clamp=False),
    )
    assert _typed_condition_map(pooled) == _typed_condition_map(oracle)
    assert pooled.total_checked == oracle.total_checked


def test_oracle_cold_cache_warm_hits_columnar(tmp_path):
    """Result-cache fingerprints are content-addressed: a cache populated
    under the dict oracle must serve the columnar run with zero
    obligations executed (and byte-identical verdicts)."""
    app, init_global = PROTOCOL_CASES["pingpong"]()

    with interning_disabled(), columnar_disabled():
        cold = app.check(_universe(app, init_global), jobs=1, cache=tmp_path)
    assert cold.holds

    reset_process_cache()
    with count_executions() as executed:
        warm = app.check(
            _universe(app, init_global), jobs=1, cache=tmp_path
        )
    assert not executed, f"warm re-verify executed {sorted(executed)}"
    assert _typed_condition_map(warm) == _typed_condition_map(cold)


def test_columnar_cold_cache_warm_hits_oracle(tmp_path):
    """The reverse direction: intern ids never leak into fingerprints, so
    an oracle re-verify warm-hits a columnar-written cache too."""
    app, init_global = PROTOCOL_CASES["pingpong"]()

    cold = app.check(_universe(app, init_global), jobs=1, cache=tmp_path)
    assert cold.holds

    reset_process_cache()
    with count_executions() as executed:
        with interning_disabled(), columnar_disabled():
            warm = app.check(
                _universe(app, init_global), jobs=1, cache=tmp_path
            )
    assert not executed, f"warm re-verify executed {sorted(executed)}"
    assert _typed_condition_map(warm) == _typed_condition_map(cold)
