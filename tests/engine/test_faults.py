"""The deterministic fault-injection harness itself.

These tests pin down the injector's contract before any scheduler is
involved: spec validation, ``REPRO_FAULTS`` parsing, the attempt-gating
rule (a spec fires only while ``attempt < times``), the parent-process
demotion of ``exit`` faults, and the installed-beats-environment
precedence of :func:`repro.engine.faults.active_injector`.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import faults
from repro.engine.faults import (
    FAULTS_ENV,
    FaultError,
    FaultInjector,
    FaultSpec,
    active_injector,
    clear,
    install,
)


@pytest.fixture(autouse=True)
def _no_injector(monkeypatch):
    """Every test starts (and ends) with no installed injector and no
    environment specs."""
    clear()
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    yield
    clear()


# --------------------------------------------------------------------- #
# Spec validation and parsing
# --------------------------------------------------------------------- #


def test_unknown_mode_is_rejected():
    with pytest.raises(ValueError, match="unknown fault mode"):
        FaultSpec("I1", "explode")


def test_times_must_be_positive():
    with pytest.raises(ValueError, match="times"):
        FaultSpec("I1", "raise", times=0)


def test_from_env_parses_modes_and_times():
    injector = FaultInjector.from_env("I1=raise:2; LM[A|B]=hang ;I3#0=exit")
    assert set(injector.by_key) == {"I1", "LM[A|B]", "I3#0"}
    assert injector.by_key["I1"].times == 2
    assert injector.by_key["LM[A|B]"].mode == "hang"
    assert injector.by_key["LM[A|B]"].times == 1
    assert injector.by_key["I3#0"].mode == "exit"


def test_from_env_rejects_malformed_entries():
    with pytest.raises(ValueError, match="malformed"):
        FaultInjector.from_env("I1")
    with pytest.raises(ValueError, match="unknown fault mode"):
        FaultInjector.from_env("I1=banana")


def test_from_env_skips_empty_segments():
    injector = FaultInjector.from_env(";;I1=raise;")
    assert set(injector.by_key) == {"I1"}


# --------------------------------------------------------------------- #
# Firing semantics
# --------------------------------------------------------------------- #


def test_fires_only_while_attempt_below_times():
    injector = FaultInjector([FaultSpec("I1", "raise", times=2)])
    with pytest.raises(FaultError):
        injector.fire("I1", attempt=0)
    with pytest.raises(FaultError):
        injector.fire("I1", attempt=1)
    # Attempt 2 onwards runs clean — the retry survives.
    injector.fire("I1", attempt=2)
    # Other keys are never afflicted.
    injector.fire("abs[X]", attempt=0)


def test_hang_mode_sleeps_for_configured_seconds():
    injector = FaultInjector([FaultSpec("I1", "hang", seconds=0.05)])
    started = time.perf_counter()
    injector.fire("I1", attempt=0)
    assert time.perf_counter() - started >= 0.04


def test_interrupt_mode_raises_keyboard_interrupt():
    injector = FaultInjector([FaultSpec("I1", "interrupt")])
    with pytest.raises(KeyboardInterrupt):
        injector.fire("I1", attempt=0)


def test_exit_mode_is_demoted_to_raise_in_parent():
    """``os._exit`` in the parent would kill the test harness; outside a
    worker the exit fault must surface as a catchable FaultError."""
    injector = FaultInjector([FaultSpec("I1", "exit")])
    with pytest.raises(FaultError):
        injector.fire("I1", attempt=0, in_worker=False)


# --------------------------------------------------------------------- #
# Installation and environment precedence
# --------------------------------------------------------------------- #


def test_active_injector_is_none_by_default():
    assert active_injector() is None


def test_installed_injector_wins_over_environment(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "I1=hang")
    programmatic = FaultInjector([FaultSpec("I2", "raise")])
    install(programmatic)
    assert active_injector() is programmatic
    clear()
    # With the installed one removed, the environment specs apply.
    from_env = active_injector()
    assert from_env is not None and set(from_env.by_key) == {"I1"}


def test_environment_cache_tracks_value_changes(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "I1=raise")
    first = active_injector()
    assert first is active_injector()  # memoized while unchanged
    monkeypatch.setenv(FAULTS_ENV, "I2=raise:3")
    second = active_injector()
    assert set(second.by_key) == {"I2"} and second.by_key["I2"].times == 3


def test_clear_removes_installed_injector():
    install(FaultInjector([FaultSpec("I1", "raise")]))
    clear()
    assert active_injector() is None


def test_module_state_helpers_are_reexported():
    # The scheduler imports active_injector from the module; keep the
    # public surface stable.
    for name in ("FaultError", "FaultSpec", "FaultInjector", "install"):
        assert hasattr(faults, name)
