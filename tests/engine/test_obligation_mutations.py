"""Obligation-level mutation tests: break one IS ingredient at a time.

Each mutation of the (passing) Ping-Pong sequentialization invalidates one
proof artifact; the checker must report *exactly* the expected failing
conditions, each with a concrete counterexample, and the serial and
process-pool engine backends must agree with the inline checker on the
full failing condition map. A final test exercises fail-fast scheduling:
an obligation whose dependency (its abstraction's refinement check)
failed is skipped deterministically.
"""

from __future__ import annotations

import pytest

from repro.core import Action, ISApplication
from repro.core.context import GhostContext
from repro.core.semantics import initial_config
from repro.core.universe import StoreUniverse
from repro.engine.scheduler import ProcessPoolScheduler
from repro.core.wellfounded import LexicographicMeasure, pa_potential
from repro.protocols import pingpong
from repro.protocols.common import GHOST

ROUNDS = 2


@pytest.fixture(scope="module")
def good():
    return pingpong.make_sequentialization(ROUNDS)


@pytest.fixture(scope="module")
def universe(good):
    return StoreUniverse.from_reachable(
        good.program, [initial_config(pingpong.initial_global(ROUNDS))]
    ).with_context(GhostContext(GHOST))


def _mutant(good, **overrides):
    base = dict(
        program=good.program,
        m_name=good.m_name,
        eliminated=good.eliminated,
        invariant=good.invariant,
        measure=good.measure,
        choice=good.choice,
        abstractions=dict(good.abstractions),
    )
    base.update(overrides)
    return ISApplication(**base)


def _drop_left_mover(good):
    """Forget Pong's non-blocking abstraction: the concrete (blocking)
    receive is checked instead."""
    abstractions = dict(good.abstractions)
    del abstractions["Pong"]
    return _mutant(good, abstractions=abstractions)


def _weaken_invariant(good):
    """The invariant loses its E-free (completed) transitions, so the
    induction step can never close."""
    names = set(good.eliminated)
    invariant = good.invariant

    def weakened(state):
        for t in invariant.transitions(state):
            if any(p.action in names for p in t.created.support()):
                yield t

    return _mutant(
        good,
        invariant=Action(invariant.name, invariant.gate, weakened, invariant.params),
    )


def _wrong_abstraction(good):
    """PongAbs swallows the acknowledgment (ping_ch left unchanged): it no
    longer simulates the concrete Pong."""
    pong_abs = good.abstractions["Pong"]

    def broken(state):
        for t in pong_abs.transitions(state):
            yield type(t)(t.new_global.set("ping_ch", state["ping_ch"]), t.created)

    abstractions = dict(good.abstractions)
    abstractions["Pong"] = Action("PongAbs", pong_abs.gate, broken, ("x",))
    return _mutant(good, abstractions=abstractions)


def _constant_measure(good):
    """A measure that never decreases: cooperation is unprovable."""
    return _mutant(
        good,
        measure=LexicographicMeasure((pa_potential(lambda _p: 0),), name="constant"),
    )


def _invariant_missing_base_case(good):
    """The invariant has no transition wherever Main is still pending, so
    it cannot simulate the M step: exactly the base case I1 breaks (I3 is
    vacuous on those stores, everything else is untouched)."""
    from repro.protocols.common import ghost_of

    invariant = good.invariant

    def no_first_step(state):
        if any(p.action == "Main" for p in ghost_of(state).support()):
            return
        yield from invariant.transitions(state)

    return _mutant(
        good,
        invariant=Action(
            invariant.name, invariant.gate, no_first_step, invariant.params
        ),
    )


MUTATIONS = {
    # mutation -> exactly the condition keys expected to fail
    "drop_left_mover": (_drop_left_mover, {"LM[Pong]", "CO"}),
    "weaken_invariant": (_weaken_invariant, {"I3"}),
    "wrong_abstraction": (_wrong_abstraction, {"abs[Pong]", "I3"}),
    "constant_measure": (_constant_measure, {"CO"}),
    "invariant_missing_base_case": (_invariant_missing_base_case, {"I1"}),
}


def _failed(result):
    return {key for key, r in result.conditions.items() if not r.holds}


def _condition_map(result):
    return {
        key: (r.name, r.holds, r.checked, tuple(r.counterexamples))
        for key, r in result.conditions.items()
    }


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_fails_exactly_the_expected_obligations(name, good, universe):
    build, expected = MUTATIONS[name]
    mutant = build(good)

    inline = mutant.check_inline(universe)
    serial = mutant.check(universe, jobs=1)
    parallel = mutant.check(
        universe, scheduler=ProcessPoolScheduler(3, clamp=False)
    )

    assert _failed(inline) == expected
    # Every failing condition carries a concrete counterexample.
    for key in expected:
        assert inline.conditions[key].counterexamples, key
    # Both backends reproduce the inline condition map verbatim.
    assert _condition_map(serial) == _condition_map(inline)
    assert _condition_map(parallel) == _condition_map(inline)


def test_good_application_passes_everywhere(good, universe):
    inline = good.check_inline(universe)
    assert inline.holds
    assert _condition_map(good.check(universe, jobs=1)) == _condition_map(inline)
    assert _condition_map(
        good.check(universe, scheduler=ProcessPoolScheduler(3, clamp=False))
    ) == _condition_map(inline)


@pytest.mark.parametrize("backend", ["serial", "pool"])
def test_fail_fast_skips_dependents_of_broken_abstraction(
    backend, good, universe
):
    """With fail_fast, conditions depending on a failed abstraction (the
    LM/CO/I3 obligations of the broken action) are skipped — reported as
    failing with an explicit 'skipped' counterexample, deterministically
    under both backends."""
    mutant = _wrong_abstraction(good)
    scheduler = (
        None if backend == "serial" else ProcessPoolScheduler(3, clamp=False)
    )
    result = mutant.check(
        universe, jobs=1 if backend == "serial" else None,
        scheduler=scheduler, fail_fast=True,
    )

    assert not result.holds
    assert not result.conditions["abs[Pong]"].holds
    assert result.conditions["abs[Pong]"].counterexamples
    # I3 and the Pong-derived LM/CO obligations depend on abs[Pong]: their
    # conditions are skipped, not checked.
    for key in ("I3", "LM[Pong]", "CO"):
        skipped = result.conditions[key]
        assert not skipped.holds
        assert any("skipped" in d for d, _w in skipped.counterexamples), key
    # Independent obligations still ran normally.
    assert result.conditions["I1"].holds
    assert result.conditions["abs[PingAwait]"].holds
