"""Fault-tolerant discharge: deadlines, crash recovery, and salvage.

Every failure mode the resilience layer claims to survive is manufactured
here with the deterministic injector (``repro.engine.faults``) and checked
end to end: a seeded hang is killed by the per-obligation deadline, a
worker ``os._exit`` is recovered by a pool rebuild + retry, a persistent
crasher degrades to in-parent execution, a broken-pool budget degrades the
whole run to serial, and Ctrl-C salvages completed outcomes (and flushes
the journal) instead of dropping them.

The headline property — ISSUE acceptance — is *verdict identity*: under
injection, a pool run terminates and agrees with a clean serial run on
every non-faulted obligation, and on the faulted one too once the retry
budget covers the fault.
"""

from __future__ import annotations

import os
import time

import pytest

import repro.engine.obligations as obligations_mod
from repro.core import initial_config
from repro.core.cache import reset_process_cache
from repro.core.context import GhostContext
from repro.core.refinement import CheckResult
from repro.core.universe import StoreUniverse
from repro.engine.faults import FaultInjector, FaultSpec, clear, install
from repro.engine.journal import CheckpointJournal
from repro.engine.obligations import Obligation
from repro.engine.resilience import (
    DischargeInterrupted,
    ObligationTimeout,
    ResilienceConfig,
    deadline_guard,
    events_summary,
)
from repro.engine.scheduler import (
    ProcessPoolScheduler,
    SerialScheduler,
    _fork_available,
    make_scheduler,
)
from repro.protocols import pingpong, prodcons
from repro.protocols.common import GHOST

CHAIN = [
    Obligation(key="A", kind="abs", condition="A"),
    Obligation(key="B", kind="I1", condition="B", deps=("A",)),
    Obligation(key="C", kind="I2", condition="C", deps=("B",)),
    Obligation(key="D", kind="CO", condition="D"),
]

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="requires fork start method"
)


def _stub_ok(app, universe, obligation, lm_universes=None):
    # Everything passes; failures come from the injector alone.
    return CheckResult(obligation.key, True, checked=3)


@pytest.fixture(autouse=True)
def _clean_harness(monkeypatch):
    clear()
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_process_cache()
    yield
    clear()
    reset_process_cache()


@pytest.fixture(autouse=True)
def _stub(monkeypatch, request):
    if "real_protocol" in request.keywords:
        yield
        return
    monkeypatch.setattr(obligations_mod, "execute_obligation", _stub_ok)
    yield


def _fast_cfg(**overrides):
    base = dict(backoff=0.01, backoff_factor=1.0)
    base.update(overrides)
    return ResilienceConfig(**base)


def _verdicts(outcomes):
    return {
        k: o.result.holds for k, o in outcomes.items() if o.result is not None
    }


# --------------------------------------------------------------------- #
# Policy math and the deadline guard
# --------------------------------------------------------------------- #


def test_backoff_is_exponential_and_zero_disables_it():
    cfg = ResilienceConfig(backoff=0.05, backoff_factor=2.0)
    assert cfg.backoff_for(1) == pytest.approx(0.05)
    assert cfg.backoff_for(2) == pytest.approx(0.10)
    assert cfg.backoff_for(3) == pytest.approx(0.20)
    assert ResilienceConfig(backoff=0.0).backoff_for(5) == 0.0


def test_parent_backstop_tracks_the_deadline():
    assert ResilienceConfig().parent_backstop() is None
    cfg = ResilienceConfig(
        timeout_per_obligation=2.0,
        parent_backstop_factor=2.0,
        parent_backstop_slack=5.0,
    )
    assert cfg.parent_backstop() == pytest.approx(9.0)


def test_deadline_guard_interrupts_a_hung_frame():
    started = time.perf_counter()
    with pytest.raises(ObligationTimeout):
        with deadline_guard(0.1) as armed:
            assert armed
            time.sleep(10)
    assert time.perf_counter() - started < 5


def test_deadline_guard_without_deadline_is_a_noop():
    with deadline_guard(None) as armed:
        assert not armed


def test_events_summary_counts_by_kind():
    from repro.engine.resilience import ResilienceEvent

    events = [
        ResilienceEvent("crash", key="B"),
        ResilienceEvent("crash", key="B"),
        ResilienceEvent("retry", key="B"),
    ]
    assert events_summary(events) == {"crash": 2, "retry": 1}


# --------------------------------------------------------------------- #
# Serial backend under injection
# --------------------------------------------------------------------- #


def test_serial_deadline_kills_seeded_hang():
    install(FaultInjector([FaultSpec("B", "hang", times=5, seconds=5.0)]))
    scheduler = SerialScheduler(
        resilience=_fast_cfg(timeout_per_obligation=0.2)
    )
    outcomes = scheduler.run(None, None, CHAIN)
    assert outcomes["B"].timed_out and outcomes["B"].result is None
    assert not outcomes["B"].skipped  # a timeout is typed, not a skip
    assert _verdicts(outcomes) == {"A": True, "C": True, "D": True}
    assert events_summary(scheduler.last_events)["timeout"] == 1


def test_serial_transient_crash_is_retried_to_success():
    install(FaultInjector([FaultSpec("B", "raise", times=1)]))
    scheduler = SerialScheduler(resilience=_fast_cfg(max_retries=2))
    outcomes = scheduler.run(None, None, CHAIN)
    assert _verdicts(outcomes) == {"A": True, "B": True, "C": True, "D": True}
    assert outcomes["B"].attempts == 2
    counts = events_summary(scheduler.last_events)
    assert counts == {"crash": 1, "retry": 1}


def test_serial_persistent_crash_exhausts_budget_and_records_error():
    install(FaultInjector([FaultSpec("B", "raise", times=10)]))
    scheduler = SerialScheduler(resilience=_fast_cfg(max_retries=1))
    outcomes = scheduler.run(None, None, CHAIN)
    assert outcomes["B"].result is None and outcomes["B"].error is not None
    assert "FaultError" in outcomes["B"].error
    assert outcomes["B"].attempts == 2  # initial + one retry
    # The rest of the DAG still ran.
    assert _verdicts(outcomes) == {"A": True, "C": True, "D": True}


def test_serial_crashed_dependency_skips_dependents_under_fail_fast():
    install(FaultInjector([FaultSpec("B", "raise", times=10)]))
    scheduler = SerialScheduler(resilience=_fast_cfg(max_retries=0))
    outcomes = scheduler.run(None, None, CHAIN, fail_fast=True)
    assert outcomes["B"].error is not None
    assert outcomes["C"].skipped  # downstream of the crash
    assert outcomes["D"].result.holds  # independent work unaffected


def test_serial_interrupt_salvages_completed_outcomes():
    install(FaultInjector([FaultSpec("C", "interrupt")]))
    with pytest.raises(DischargeInterrupted) as exc_info:
        SerialScheduler(resilience=_fast_cfg()).run(None, None, CHAIN)
    salvaged = exc_info.value.outcomes
    assert set(salvaged) == {"A", "B"}
    assert all(o.result.holds for o in salvaged.values())


def test_serial_interrupt_flushes_journal_before_raising(tmp_path):
    install(FaultInjector([FaultSpec("C", "interrupt")]))
    journal, _ = CheckpointJournal.open(tmp_path, "run", "f" * 64, len(CHAIN))
    with pytest.raises(DischargeInterrupted):
        SerialScheduler(resilience=_fast_cfg()).run(
            None, None, CHAIN, journal=journal
        )
    journal.close()
    loaded = CheckpointJournal.load(tmp_path / "run.jsonl", "f" * 64)
    assert set(loaded) == {"A", "B"}


# --------------------------------------------------------------------- #
# Pool backend: crash recovery ladder
# --------------------------------------------------------------------- #


@needs_fork
def test_pool_recovers_worker_exit_by_rebuilding():
    """The OOM-kill stand-in: ``os._exit`` in a worker breaks the pool;
    the scheduler re-forks it and the retry succeeds."""
    install(FaultInjector([FaultSpec("B", "exit", times=1)]))
    scheduler = ProcessPoolScheduler(
        2, warm=False, clamp=False, resilience=_fast_cfg()
    )
    outcomes = scheduler.run(None, None, CHAIN)
    assert _verdicts(outcomes) == {"A": True, "B": True, "C": True, "D": True}
    assert outcomes["B"].attempts >= 2
    counts = events_summary(scheduler.last_events)
    assert counts.get("pool-rebuild") == 1 and counts.get("crash", 0) >= 1


@needs_fork
def test_pool_retries_transient_raise_in_worker():
    install(FaultInjector([FaultSpec("B", "raise", times=1)]))
    scheduler = ProcessPoolScheduler(
        2, warm=False, clamp=False, resilience=_fast_cfg()
    )
    outcomes = scheduler.run(None, None, CHAIN)
    assert _verdicts(outcomes) == {"A": True, "B": True, "C": True, "D": True}
    assert outcomes["B"].attempts == 2
    counts = events_summary(scheduler.last_events)
    assert counts == {"crash": 1, "retry": 1}


@needs_fork
def test_pool_deadline_kills_hang_inside_worker():
    install(FaultInjector([FaultSpec("B", "hang", times=5, seconds=5.0)]))
    scheduler = ProcessPoolScheduler(
        2,
        warm=False,
        clamp=False,
        resilience=_fast_cfg(timeout_per_obligation=0.3),
    )
    outcomes = scheduler.run(None, None, CHAIN)
    assert outcomes["B"].timed_out and outcomes["B"].result is None
    assert _verdicts(outcomes) == {"A": True, "C": True, "D": True}
    assert events_summary(scheduler.last_events)["timeout"] == 1


@needs_fork
def test_pool_degrades_persistent_crasher_to_parent():
    """Past the retry budget an obligation must stop killing workers and
    run (once) in the parent, where its final crash is recorded."""
    install(FaultInjector([FaultSpec("B", "raise", times=10)]))
    scheduler = ProcessPoolScheduler(
        2, warm=False, clamp=False, resilience=_fast_cfg(max_retries=1)
    )
    outcomes = scheduler.run(None, None, CHAIN)
    assert outcomes["B"].result is None and outcomes["B"].error is not None
    assert outcomes["B"].pid == os.getpid()  # final attempt ran in-parent
    counts = events_summary(scheduler.last_events)
    assert counts.get("degrade-obligation") == 1
    assert _verdicts(outcomes) == {"A": True, "C": True, "D": True}


@needs_fork
def test_pool_degrades_whole_run_past_rebuild_budget():
    install(FaultInjector([FaultSpec("B", "exit", times=10)]))
    scheduler = ProcessPoolScheduler(
        2,
        warm=False,
        clamp=False,
        resilience=_fast_cfg(max_pool_rebuilds=0, max_retries=5),
    )
    with pytest.warns(RuntimeWarning, match="degrading"):
        outcomes = scheduler.run(None, None, CHAIN)
    counts = events_summary(scheduler.last_events)
    assert counts.get("degrade-run") == 1
    # In the parent the exit fault demotes to a raise and is recorded as
    # a crash outcome; the rest of the DAG completes serially.
    assert outcomes["B"].error is not None
    assert _verdicts(outcomes) == {"A": True, "C": True, "D": True}


@needs_fork
def test_pool_interrupt_in_worker_salvages_and_raises():
    install(FaultInjector([FaultSpec("B", "interrupt")]))
    scheduler = ProcessPoolScheduler(
        2, warm=False, clamp=False, resilience=_fast_cfg()
    )
    with pytest.raises(DischargeInterrupted) as exc_info:
        scheduler.run(None, None, CHAIN)
    assert "B" not in exc_info.value.outcomes
    # The first wave (A, D) completed before B's wave was interrupted.
    assert {"A", "D"} <= set(exc_info.value.outcomes)


@needs_fork
def test_pool_and_serial_agree_under_injection():
    """Satellite (c)'s core identity: the recovered pool run's verdict
    map equals a clean serial run's."""
    clean = SerialScheduler().run(None, None, CHAIN)
    install(FaultInjector([FaultSpec("B", "raise", times=1)]))
    faulted = ProcessPoolScheduler(
        2, warm=False, clamp=False, resilience=_fast_cfg()
    ).run(None, None, CHAIN)
    assert _verdicts(faulted) == _verdicts(clean)


# --------------------------------------------------------------------- #
# make_scheduler forwards the resilience knobs (satellite a)
# --------------------------------------------------------------------- #


def test_every_protocol_verify_accepts_resilience():
    """``build_table1`` passes ``resilience=`` to every registry entry; a
    protocol whose ``verify`` lacks the parameter only blows up in the
    slow sweep, so pin the signatures here in the fast lane."""
    import inspect

    from repro.protocols import (
        broadcast,
        changroberts,
        nbuyer,
        paxos,
        twophase,
    )

    for module in (
        broadcast,
        changroberts,
        nbuyer,
        paxos,
        pingpong,
        prodcons,
        twophase,
    ):
        assert "resilience" in inspect.signature(module.verify).parameters, (
            module.__name__
        )


def test_make_scheduler_forwards_resilience_to_serial():
    cfg = ResilienceConfig(timeout_per_obligation=1.5)
    scheduler = make_scheduler(None, resilience=cfg)
    assert isinstance(scheduler, SerialScheduler)
    assert scheduler.resilience is cfg


def test_make_scheduler_forwards_all_pool_knobs():
    cfg = ResilienceConfig(max_retries=7)
    scheduler = make_scheduler(4, warm=False, clamp=False, resilience=cfg)
    assert isinstance(scheduler, ProcessPoolScheduler)
    assert scheduler.jobs == 4
    assert scheduler.warm is False
    assert scheduler.resilience is cfg


# --------------------------------------------------------------------- #
# Real protocols: verdict identity serial vs pool under injection
# --------------------------------------------------------------------- #


def _protocol_instance(name):
    from repro.protocols import (
        broadcast,
        changroberts,
        nbuyer,
        paxos,
        twophase,
    )

    if name == "pingpong":
        return pingpong.make_sequentialization(2), pingpong.initial_global(2)
    if name == "prodcons":
        return prodcons.make_sequentialization(3), prodcons.initial_global(3)
    if name == "broadcast":
        return broadcast.make_sequentialization(3), broadcast.initial_global(3)
    if name == "paxos":
        return paxos.make_sequentialization(2, 2), paxos.initial_global(2, 2)
    if name == "nbuyer":
        return (
            nbuyer.make_sequentializations(3)[0][1],
            nbuyer.initial_global(3),
        )
    if name == "twophase":
        return (
            twophase.make_sequentializations(3)[0][1],
            twophase.initial_global(3),
        )
    if name == "changroberts":
        return (
            changroberts.make_sequentializations(3)[0][1],
            changroberts.initial_global(3),
        )
    raise ValueError(name)


def _universe_for(app, init_global):
    return StoreUniverse.from_reachable(
        app.program, [initial_config(init_global)]
    ).with_context(GhostContext(GHOST))


def _condition_map(result):
    return {key: (r.holds, r.checked) for key, r in result.conditions.items()}


@needs_fork
@pytest.mark.real_protocol
@pytest.mark.parametrize(
    "protocol",
    [
        "pingpong",
        "prodcons",
        pytest.param("broadcast", marks=pytest.mark.slow),
        pytest.param("paxos", marks=pytest.mark.slow),
        pytest.param("nbuyer", marks=pytest.mark.slow),
        pytest.param("twophase", marks=pytest.mark.slow),
        pytest.param("changroberts", marks=pytest.mark.slow),
    ],
)
def test_protocol_verdicts_identical_serial_vs_faulted_pool(protocol):
    """ISSUE acceptance: under fault injection, the pool run terminates
    with the same PASS/FAIL verdicts (and check counts) as a clean serial
    run — the transient fault on I1 is absorbed by one retry."""
    app, init_global = _protocol_instance(protocol)
    universe = _universe_for(app, init_global)

    clean = app.check(universe)
    install(FaultInjector([FaultSpec("I1", "raise", times=1)]))
    scheduler = ProcessPoolScheduler(
        2, warm=False, clamp=False, resilience=_fast_cfg()
    )
    faulted = app.check(universe, scheduler=scheduler)

    assert faulted.holds == clean.holds
    assert _condition_map(faulted) == _condition_map(clean)
    assert faulted.retries >= 1  # the fault really fired


@pytest.mark.real_protocol
def test_resume_reexecutes_only_unjournaled_obligations(tmp_path, monkeypatch):
    """ISSUE acceptance: a killed-then-resumed run completes without
    re-executing journaled obligations — asserted by counting executor
    invocations across the interrupted run and the resumed run."""
    app, init_global = _protocol_instance("pingpong")
    universe = _universe_for(app, init_global)
    calls = []
    real_execute = obligations_mod.execute_obligation

    def counting(app_, universe_, ob, lm_universes=None):
        calls.append(ob.key)
        return real_execute(app_, universe_, ob, lm_universes=lm_universes)

    monkeypatch.setattr(obligations_mod, "execute_obligation", counting)

    # The injector fires before the executor is entered, so the first
    # run's call list is exactly the set of completed (journaled) keys.
    install(FaultInjector([FaultSpec("I2", "interrupt")]))
    partial = obligations_mod.discharge(
        app, universe, resilience=_fast_cfg(checkpoint_dir=str(tmp_path))
    )
    assert partial.interrupted
    journaled = set(calls)
    assert journaled and "I2" not in journaled

    clear()
    calls.clear()
    resumed = obligations_mod.discharge(
        app,
        universe,
        resilience=_fast_cfg(checkpoint_dir=str(tmp_path), resume=True),
    )
    assert resumed.holds and not resumed.interrupted
    assert set(resumed.resumed_keys) == journaled
    assert journaled.isdisjoint(calls), "journaled obligations re-executed"
    assert "I2" in calls  # the interrupted obligation itself did rerun


def teardown_module(_module=None):
    reset_process_cache()
