"""Differential tests: engine vs inline checker vs execution rewriting.

Three oracles for the same judgement are cross-checked on every Table 1
protocol:

1. the **inline checker** (``ISApplication.check_inline``), the original
   monolithic loop over Figure 3's conditions;
2. the **obligation engine** (``ISApplication.check``), serial and
   process-pool backends — their merged condition maps must be *identical*
   to the inline one (same keys, names, verdicts, check counts, and
   counterexamples);
3. the **rewriting engine** (Lemmas 4.2/4.3): for applications whose
   conditions hold, every sampled terminating execution must rewrite into
   a sequentialized execution with the same final configuration — and for
   an application whose conditions fail, some execution must *fail* to
   rewrite (the constructive reading of "check passes iff rewriting
   succeeds").

Per protocol we sample at least 50 executions: the systematic enumeration
of ``terminating_executions`` topped up with ``random_execution`` walks.
"""

from __future__ import annotations

import random

import pytest

from repro.core import initial_config, random_execution, terminating_executions
from repro.core.context import GhostContext
from repro.core.universe import StoreUniverse
from repro.engine import RewriteError, rewrite_execution
from repro.engine.scheduler import ProcessPoolScheduler
from repro.protocols import (
    broadcast,
    changroberts,
    nbuyer,
    paxos,
    pingpong,
    prodcons,
    twophase,
)
from repro.protocols.common import GHOST

MIN_SAMPLES = 50


def _first_app(pairs):
    return pairs[0][1]


#: One (application, initial global) per Table 1 protocol, at instance
#: sizes small enough to sample aggressively. Chained protocols contribute
#: their first IS application (its program is the original protocol).
PROTOCOL_CASES = {
    "broadcast": lambda: (
        broadcast.make_sequentialization(3),
        broadcast.initial_global(3),
    ),
    "pingpong": lambda: (
        pingpong.make_sequentialization(3),
        pingpong.initial_global(3),
    ),
    "prodcons": lambda: (
        prodcons.make_sequentialization(4),
        prodcons.initial_global(4),
    ),
    "nbuyer": lambda: (
        _first_app(nbuyer.make_sequentializations(3)),
        nbuyer.initial_global(3),
    ),
    "changroberts": lambda: (
        _first_app(changroberts.make_sequentializations(4)),
        changroberts.initial_global(4),
    ),
    "twophase": lambda: (
        _first_app(twophase.make_sequentializations(3)),
        twophase.initial_global(3),
    ),
    "paxos": lambda: (
        paxos.make_sequentialization(1, 2, (1, 2)),
        paxos.initial_global(1, 2),
    ),
}


def _universe(app, init_global):
    return StoreUniverse.from_reachable(
        app.program, [initial_config(init_global)]
    ).with_context(GhostContext(GHOST))


def _sample_executions(program, init_global, minimum=MIN_SAMPLES, seed=0):
    """At least ``minimum`` terminating executions: the systematic
    enumeration first, then random-scheduler walks."""
    init = initial_config(init_global)
    samples = list(terminating_executions(program, init, limit=minimum))
    rng = random.Random(seed)
    attempts = 0
    while len(samples) < minimum and attempts < 40 * minimum:
        attempts += 1
        execution = random_execution(program, init, rng)
        if execution.terminating:
            samples.append(execution)
    assert len(samples) >= minimum, "could not sample enough executions"
    return samples


def _condition_map(result):
    """Everything the condition map determines, in comparable form."""
    return {
        key: (r.name, r.holds, r.checked, tuple(r.counterexamples))
        for key, r in result.conditions.items()
    }


@pytest.mark.parametrize(
    "name",
    [
        # The broadcast instance dominates this suite's wall time (its
        # reachable universe is an order of magnitude larger); it runs in
        # the slow lane, the other six cover the merge semantics fast.
        pytest.param(n, marks=pytest.mark.slow) if n == "broadcast" else n
        for n in sorted(PROTOCOL_CASES)
    ],
)
def test_backends_agree_and_executions_rewrite(name):
    app, init_global = PROTOCOL_CASES[name]()
    universe = _universe(app, init_global)

    inline = app.check_inline(universe)
    serial = app.check(universe, jobs=1)
    # clamp=False keeps four real workers (and hence the sharded obligation
    # layout) even on a single-CPU CI host.
    parallel = app.check(
        universe, scheduler=ProcessPoolScheduler(4, clamp=False)
    )

    assert _condition_map(inline) == _condition_map(serial)
    assert _condition_map(inline) == _condition_map(parallel)
    assert inline.holds, inline.report()

    # Engine bookkeeping: every obligation accounted for, totals match.
    assert serial.num_obligations > 0
    assert serial.total_checked == inline.total_checked
    assert set(serial.obligation_checked) == set(serial.timings)
    # The pool shards the dominant obligations but merges back to the very
    # same condition map and grand total.
    assert parallel.num_obligations >= serial.num_obligations
    assert parallel.total_checked == inline.total_checked

    # The conditions hold, so every sampled execution must rewrite to the
    # same final configuration (Lemma 4.3, constructively).
    for execution in _sample_executions(app.program, init_global):
        result = rewrite_execution(app, execution)
        assert result.execution.final == execution.final


def test_failing_conditions_mean_some_execution_fails_to_rewrite():
    """The negative direction of the differential oracle: weaken Ping-Pong's
    invariant by dropping its E-free (completed) transitions. The induction
    step can then never close (I3 fails), and accordingly every sampled
    execution fails to rewrite — the absorption loop produces a composed
    transition the weakened invariant no longer contains. Both engine
    backends must report the identical failing condition map."""
    from repro.core import Action, ISApplication

    rounds = 3
    good = pingpong.make_sequentialization(rounds)
    orig_inv = good.invariant
    names = set(good.eliminated)

    def weakened_transitions(state):
        for t in orig_inv.transitions(state):
            # BUG: the invariant loses its completed summaries.
            if any(p.action in names for p in t.created.support()):
                yield t

    bad = ISApplication(
        program=good.program,
        m_name=good.m_name,
        eliminated=good.eliminated,
        invariant=Action(
            orig_inv.name, orig_inv.gate, weakened_transitions, orig_inv.params
        ),
        measure=good.measure,
        choice=good.choice,
        abstractions=dict(good.abstractions),
    )
    init_global = pingpong.initial_global(rounds)
    universe = _universe(bad, init_global)

    inline = bad.check_inline(universe)
    serial = bad.check(universe, jobs=1)
    parallel = bad.check(
        universe, scheduler=ProcessPoolScheduler(4, clamp=False)
    )
    assert _condition_map(inline) == _condition_map(serial)
    assert _condition_map(inline) == _condition_map(parallel)
    assert not inline.holds

    failures = 0
    samples = _sample_executions(bad.program, init_global)
    for execution in samples:
        try:
            rewrite_execution(bad, execution)
        except RewriteError:
            failures += 1
    assert failures == len(samples)
