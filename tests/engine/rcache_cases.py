"""Shared fixtures for the result-cache suites: one small instance per
Table 1 protocol, plus the mutation helpers the invalidation matrix uses.

The cases mirror ``test_differential.PROTOCOL_CASES`` but shrink broadcast
to ``n=2`` (its one-shot universe at n=3 is an order of magnitude larger
and belongs to the slow lane; the cache semantics do not care about the
instance size). Mutants are rebuilt with an explicit
:class:`ISApplication` call — **never** ``dataclasses.replace`` — because
``replace`` would pass the already-derived ``m_prime`` back in, flipping
``_m_prime_canonical`` and spuriously changing the I2 fingerprint.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import replace as dc_replace

from repro.core import initial_config
from repro.core.action import Action
from repro.core.context import GhostContext
from repro.core.sequentialize import ISApplication
from repro.core.universe import StoreUniverse
from repro.engine import obligations as obligations_mod
from repro.engine.obligations import build_obligations
from repro.protocols import (
    broadcast,
    changroberts,
    nbuyer,
    paxos,
    pingpong,
    prodcons,
    twophase,
)
from repro.protocols.common import GHOST


def _first_app(pairs):
    return pairs[0][1]


#: One (application, initial global) per protocol, small enough that a
#: full cold discharge takes well under a second.
CASES = {
    "broadcast": lambda: (
        broadcast.make_sequentialization(2),
        broadcast.initial_global(2),
    ),
    "pingpong": lambda: (
        pingpong.make_sequentialization(3),
        pingpong.initial_global(3),
    ),
    "prodcons": lambda: (
        prodcons.make_sequentialization(4),
        prodcons.initial_global(4),
    ),
    "nbuyer": lambda: (
        _first_app(nbuyer.make_sequentializations(3)),
        nbuyer.initial_global(3),
    ),
    "changroberts": lambda: (
        _first_app(changroberts.make_sequentializations(4)),
        changroberts.initial_global(4),
    ),
    "twophase": lambda: (
        _first_app(twophase.make_sequentializations(3)),
        twophase.initial_global(3),
    ),
    "paxos": lambda: (
        paxos.make_sequentialization(1, 2, (1, 2)),
        paxos.initial_global(1, 2),
    ),
}

PROTOCOL_NAMES = sorted(CASES)


def build(name):
    """Build one protocol case: ``(application, universe)``."""
    app, init_global = CASES[name]()
    universe = StoreUniverse.from_reachable(
        app.program, [initial_config(init_global)]
    ).with_context(GhostContext(GHOST))
    return app, universe


def all_keys(app, universe):
    """Every obligation key of the serial (unsharded) layout."""
    return {ob.key for ob in build_obligations(app, universe)}


def rebuild(app, **overrides):
    """A fresh application with some fields replaced.

    Keeps ``m_prime`` canonical (derived in ``__post_init__``) — the
    protocols never pass it explicitly, and neither may a mutant, or the
    I2 fingerprint changes for the wrong reason.
    """
    assert app._m_prime_canonical, "case app must have a derived m_prime"
    fields = dict(
        program=app.program,
        m_name=app.m_name,
        eliminated=app.eliminated,
        invariant=app.invariant,
        measure=app.measure,
        choice=app.choice,
        abstractions=dict(app.abstractions),
    )
    fields.update(overrides)
    return ISApplication(**fields)


def wrap_action(action):
    """A behaviorally identical action whose gate is a *different*
    function object (and bytecode): the classic no-op edit that must
    invalidate exactly the obligations reading this action."""
    gate = action.gate
    return Action(
        action.name, lambda state: gate(state), action.transitions, action.params
    )


def wrap_predicate(fn):
    """Same trick for bare predicates (choice functions etc.)."""
    return lambda *args: fn(*args)


def wrap_measure(measure):
    """A measure with every component re-wrapped (same values, new
    function identities)."""
    components = tuple(
        (lambda *args, _f=f: _f(*args)) for f in measure.components
    )
    return dc_replace(measure, components=components)


@contextmanager
def count_executions():
    """Count (by key) which obligations actually execute.

    The schedulers import ``execute_obligation`` from the module at call
    time, so swapping the module attribute intercepts the serial backend
    (the pool's forked workers re-import and are *not* intercepted — use
    ``result.cached_keys`` there instead).
    """
    executed = []
    original = obligations_mod.execute_obligation

    def wrapper(app, universe, ob, lm_universes=None):
        executed.append(ob.key)
        return original(app, universe, ob, lm_universes=lm_universes)

    obligations_mod.execute_obligation = wrapper
    try:
        yield executed
    finally:
        obligations_mod.execute_obligation = original


def condition_map(result):
    """Everything the condition map determines, in comparable form."""
    return {
        key: (r.name, r.holds, r.checked, tuple(r.counterexamples))
        for key, r in result.conditions.items()
    }


def condition_digest(result):
    """A process-portable digest of the condition map (counterexamples
    compared via ``repr``), for cross-process verdict-identity checks."""
    payload = repr(
        sorted(
            (key, r.name, r.holds, r.checked, repr(r.counterexamples))
            for key, r in result.conditions.items()
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
