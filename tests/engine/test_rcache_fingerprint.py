"""Property tests for the dependency fingerprints.

Three properties carry the cache's soundness argument (DESIGN.md):

* **stability** — the digest of a value is a pure function of its
  *content*: insertion order, set iteration order, ``PYTHONHASHSEED``,
  and process identity must not leak in (otherwise a warm cache goes
  cold at random, or worse, two different values collide per-process);
* **sensitivity** — changing any single field changes the digest (a
  stale hit after an edit would be unsound);
* **injectivity in practice** — across every obligation of all seven
  seed protocols, distinct obligations get distinct fingerprints.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.multiset import Multiset
from repro.core.store import Store
from repro.engine.obligations import build_obligations
from repro.engine.rcache import DependencyFingerprinter, stable_digest

from .rcache_cases import PROTOCOL_NAMES, build

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=8),
    st.tuples(st.integers(min_value=0, max_value=9), st.text(max_size=3)),
)

VALUES = st.recursive(
    SCALARS,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=4), inner, max_size=4),
        st.frozensets(SCALARS, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.text(max_size=6), VALUES, max_size=6), st.randoms())
def test_digest_ignores_dict_insertion_order(data, rng):
    items = list(data.items())
    rng.shuffle(items)
    assert stable_digest(dict(items)) == stable_digest(data)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.text(max_size=6), SCALARS, max_size=6))
def test_digest_ignores_store_insertion_order(data):
    # Stores hold hashable values only (their contract); reversed
    # insertion must not show in the digest.
    forward = Store({str(k): v for k, v in data.items()})
    backward = Store({str(k): v for k, v in reversed(list(data.items()))})
    assert stable_digest(forward) == stable_digest(backward)


@settings(max_examples=50, deadline=None)
@given(st.lists(SCALARS, min_size=1, max_size=8), st.randoms())
def test_digest_ignores_multiset_and_set_order(elements, rng):
    shuffled = list(elements)
    rng.shuffle(shuffled)
    assert stable_digest(Multiset(elements)) == stable_digest(
        Multiset(shuffled)
    )
    assert stable_digest(set(elements)) == stable_digest(set(shuffled))


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(st.text(max_size=6), SCALARS, min_size=1, max_size=6),
    st.data(),
)
def test_any_single_field_change_changes_the_digest(data, draw):
    key = draw.draw(st.sampled_from(sorted(data, key=repr)))
    replacement = draw.draw(SCALARS)
    if replacement == data[key] and type(replacement) is type(data[key]):
        replacement = (replacement, "changed")
    mutated = dict(data)
    mutated[key] = replacement
    assert stable_digest(Store(data)) != stable_digest(Store(mutated))
    assert stable_digest(data) != stable_digest(mutated)


@settings(max_examples=25, deadline=None)
@given(
    st.dictionaries(st.text(max_size=6), SCALARS, min_size=1, max_size=6),
    st.text(min_size=1, max_size=6),
)
def test_adding_or_dropping_a_field_changes_the_digest(data, extra_key):
    grown = dict(data)
    grown[extra_key] = ("extra", 1)
    if grown == data:
        grown.pop(extra_key)
        data = dict(data)
        data[extra_key] = ("extra", 1)
    assert stable_digest(data) != stable_digest(grown)
    popped = dict(data)
    popped.pop(sorted(popped, key=repr)[0])
    assert stable_digest(data) != stable_digest(popped)


_RESTART_SCRIPT = """
import json, sys
sys.path.insert(0, {root!r})
sys.path.insert(0, {src!r})
from tests.engine import rcache_cases as rc
from repro.engine.obligations import build_obligations
from repro.engine.rcache import DependencyFingerprinter, stable_digest

digests = {{
    "structure": stable_digest(
        {{"a": [1, 2, {{"nested": (True, "x")}}], "b": frozenset([3, 4])}}
    )
}}
app, universe = rc.build("pingpong")
fp = DependencyFingerprinter(app, universe)
for ob in build_obligations(app, universe):
    digests[ob.key] = fp.fingerprint(ob)
print(json.dumps(digests))
"""


def _digests_under_seed(seed):
    script = _RESTART_SCRIPT.format(
        root=str(REPO_ROOT), src=str(REPO_ROOT / "src")
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
        check=True,
    )
    return json.loads(proc.stdout)


def test_fingerprints_are_stable_across_process_restarts():
    """Two fresh interpreters with adversarially different hash seeds
    agree on every digest — the property that makes the on-disk cache
    meaningful at all."""
    assert _digests_under_seed("0") == _digests_under_seed("424242")


def test_no_fingerprint_collisions_across_all_seed_protocols():
    seen = {}
    for name in PROTOCOL_NAMES:
        app, universe = build(name)
        fp = DependencyFingerprinter(app, universe)
        for ob in build_obligations(app, universe):
            digest = fp.fingerprint(ob)
            assert digest is not None, (name, ob.key)
            owner = (name, ob.key)
            assert seen.setdefault(digest, owner) == owner, (
                f"collision: {seen[digest]} vs {owner}"
            )
    assert len(seen) > 100
