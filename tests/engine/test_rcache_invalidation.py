"""Mutation-driven invalidation: the cache must re-execute *exactly* the
obligations whose read-set covers an edit, and hit everything else.

The matrix wraps one proof artifact at a time in a behaviorally identical
but bytecode-distinct closure (``lambda state: gate(state)``) — the
sharpest possible edit: verdicts cannot change, so any difference in what
re-executes is purely the dependency fingerprints talking. Per protocol
the invariant edit must invalidate exactly the invariant readers
{I1, I2, I3}; on Ping-Pong a fine-grained matrix pins every artifact kind
(invariant, choice, measure, abstraction, eliminated action, main action)
to its exact read-set. The seeded proof bugs of ``repro.diagnose.fixtures``
must keep failing against a cache warmed with the *correct* proof — a
warm cache may never mask a bug. Verdicts must be identical cold vs warm
vs cross-process-warm (different ``PYTHONHASHSEED``) on all seven
protocols.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.diagnose.fixtures import FIXTURES
from repro.protocols import broadcast

from .rcache_cases import (
    PROTOCOL_NAMES,
    all_keys,
    build,
    condition_digest,
    condition_map,
    count_executions,
    rebuild,
    wrap_action,
    wrap_measure,
    wrap_predicate,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _lm_parts(key):
    """``LM[name|other]`` / ``LM[name|other|cond#i]`` → (name, other)."""
    inner = key[len("LM[") : -1]
    parts = inner.split("|")
    return parts[0], parts[1]


def _action_readers(keys, target):
    """Obligation keys whose read-set includes the *program* action or
    fallback abstraction of ``target``: I3 (composes every α(e)), CO of
    the action itself, and every left-mover pair mentioning it."""
    affected = set()
    for key in keys:
        if key.startswith("LM["):
            name, other = _lm_parts(key)
            if target in (name, other):
                affected.add(key)
        elif key.startswith("I3"):
            affected.add(key)
    affected.add(f"CO[{target}]")
    return affected


def _run_warm_then_mutant(app, universe, mutant, cache_dir):
    """Cold-run ``app`` into ``cache_dir``, then run ``mutant`` against
    the warm cache, returning (mutant result, executed keys)."""
    cold = app.check(universe, jobs=1, cache=cache_dir)
    assert cold.holds
    with count_executions() as executed:
        warm = mutant.check(universe, jobs=1, cache=cache_dir)
    return warm, set(executed)


# --------------------------------------------------------------------- #
# Per-protocol: the invariant edit invalidates exactly {I1, I2, I3}
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_invariant_edit_reexecutes_exactly_the_invariant_readers(
    name, tmp_path
):
    app, universe = build(name)
    keys = all_keys(app, universe)
    expected = {k for k in keys if k in ("I1", "I2") or k.startswith("I3")}

    mutant = rebuild(app, invariant=wrap_action(app.invariant))
    result, executed = _run_warm_then_mutant(app, universe, mutant, tmp_path)

    assert executed == expected
    # Everything else is a hit — and the verdicts are byte-identical to a
    # cold run of the very same mutant.
    assert set(result.cached_keys) == keys - expected
    assert result.rcache_stats["invalidations"] == len(expected)
    assert result.rcache_stats["hits"] == len(keys) - len(expected)
    assert condition_map(result) == condition_map(
        mutant.check(universe, jobs=1)
    )


# --------------------------------------------------------------------- #
# Ping-Pong fine-grained matrix: one artifact kind per row
# --------------------------------------------------------------------- #


def _pp_expected(app, keys, artifact):
    if artifact == "invariant":
        return {"I1", "I2", "I3"}
    if artifact == "choice":
        return {"I3"}
    if artifact == "measure":
        return {k for k in keys if k.startswith("CO[")}
    if artifact == "abstraction":
        name = sorted(app.abstractions)[0]
        affected = {f"abs[{name}]", "I3", f"CO[{name}]"}
        affected |= {
            k for k in keys if k.startswith("LM[") and _lm_parts(k)[0] == name
        }
        return affected
    if artifact == "eliminated-action":
        return _action_readers(keys, "Ping") & (keys | {"CO[Ping]"})
    if artifact == "main-action":
        return {"I1"} | {
            k
            for k in keys
            if k.startswith("LM[") and _lm_parts(k)[1] == app.m_name
        }
    raise AssertionError(artifact)


def _pp_mutant(app, artifact):
    if artifact == "invariant":
        return rebuild(app, invariant=wrap_action(app.invariant))
    if artifact == "choice":
        return rebuild(app, choice=wrap_predicate(app.choice))
    if artifact == "measure":
        return rebuild(app, measure=wrap_measure(app.measure))
    if artifact == "abstraction":
        name = sorted(app.abstractions)[0]
        abstractions = dict(app.abstractions)
        abstractions[name] = wrap_action(abstractions[name])
        return rebuild(app, abstractions=abstractions)
    if artifact == "eliminated-action":
        wrapped = wrap_action(app.program["Ping"])
        return rebuild(app, program=app.program.with_action("Ping", wrapped))
    if artifact == "main-action":
        wrapped = wrap_action(app.program[app.m_name])
        return rebuild(
            app, program=app.program.with_action(app.m_name, wrapped)
        )
    raise AssertionError(artifact)


@pytest.mark.parametrize(
    "artifact",
    [
        "invariant",
        "choice",
        "measure",
        "abstraction",
        "eliminated-action",
        "main-action",
    ],
)
def test_pingpong_artifact_edits_invalidate_exactly_their_readers(
    artifact, tmp_path
):
    app, universe = build("pingpong")
    keys = all_keys(app, universe)
    assert "Ping" in app.eliminated and "Ping" not in app.abstractions

    mutant = _pp_mutant(app, artifact)
    expected = _pp_expected(app, keys, artifact)
    assert expected and expected <= keys

    result, executed = _run_warm_then_mutant(app, universe, mutant, tmp_path)
    assert executed == expected
    assert set(result.cached_keys) == keys - expected
    assert result.holds


# --------------------------------------------------------------------- #
# A warm cache must never mask a seeded proof bug
# --------------------------------------------------------------------- #


def _correct_broadcast_fixture_twin(n=2):
    """The correct one-shot broadcast proof on the *fixtures'* frame:
    same program, same universe builder, correct abstraction — so its
    cache entries genuinely collide with a mutant's unaffected ones."""
    from repro.core.program import MAIN
    from repro.core.sequentialize import ISApplication

    program = broadcast.make_atomic(n)
    app = ISApplication(
        program=program,
        m_name=MAIN,
        eliminated=("Broadcast", "Collect"),
        invariant=broadcast.make_invariant(n),
        measure=broadcast.make_measure(),
        abstractions={"Collect": broadcast.make_collect_abs(n)},
    )
    return app, broadcast.make_universe(program, n)


def _obligations_of_condition(condition, keys):
    """The obligation keys that merge into one condition-map key."""
    if condition == "CO":
        return {k for k in keys if k.startswith("CO[")}
    if condition.startswith("LM[") and "|" not in condition:
        name = condition[len("LM[") : -1]
        return {
            k for k in keys if k.startswith("LM[") and _lm_parts(k)[0] == name
        }
    if condition == "I3":
        return {k for k in keys if k.startswith("I3")}
    return {condition}


@pytest.mark.parametrize("fixture_name", sorted(FIXTURES))
def test_seeded_bug_is_never_masked_by_a_warm_correct_cache(
    fixture_name, tmp_path
):
    fixture = FIXTURES[fixture_name]

    # Warm the cache with the correct proof: everything passes and is
    # stored.
    good_app, good_universe = _correct_broadcast_fixture_twin()
    good = good_app.check(good_universe, jobs=1, cache=tmp_path)
    assert good.holds

    # The mutant against the warm cache: its seeded failures must
    # re-execute (the mutated abstraction changed their fingerprints) and
    # fail exactly as they do on a cold run.
    bad_app, bad_universe = fixture.build()
    cold = bad_app.check(bad_universe, jobs=1)
    with count_executions() as executed:
        seeded = bad_app.check(bad_universe, jobs=1, cache=tmp_path)
    assert not seeded.holds
    assert condition_map(seeded) == condition_map(cold)
    failing = {k for k, r in seeded.conditions.items() if not r.holds}
    assert set(fixture.expect_failing) <= failing
    # Every seeded failure was re-proven live, not read from the cache.
    keys = all_keys(bad_app, bad_universe)
    for condition in fixture.expect_failing:
        assert _obligations_of_condition(condition, keys) & set(executed), (
            condition
        )

    # And a warm re-run of the mutant itself still reports the bug with
    # zero executions — caching a failure does not erase it.
    with count_executions() as executed:
        warm = bad_app.check(bad_universe, jobs=1, cache=tmp_path)
    assert not executed
    assert condition_map(warm) == condition_map(cold)


# --------------------------------------------------------------------- #
# Verdict identity: cold vs warm vs cross-process warm, all protocols
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_warm_rerun_executes_nothing_and_preserves_verdicts(name, tmp_path):
    app, universe = build(name)
    keys = all_keys(app, universe)

    plain = app.check(universe, jobs=1)
    cold = app.check(universe, jobs=1, cache=tmp_path)
    with count_executions() as executed:
        warm = app.check(universe, jobs=1, cache=tmp_path)

    assert not executed
    assert set(warm.cached_keys) == keys
    assert warm.rcache_stats["hits"] == len(keys)
    assert (
        condition_map(plain) == condition_map(cold) == condition_map(warm)
    )


_SUBPROCESS_SCRIPT = """
import json, sys
sys.path.insert(0, {root!r})
sys.path.insert(0, {src!r})
from tests.engine import rcache_cases as rc

cache_root = sys.argv[1]
out = {{}}
for name in rc.PROTOCOL_NAMES:
    app, universe = rc.build(name)
    with rc.count_executions() as executed:
        result = app.check(universe, jobs=1, cache=f"{{cache_root}}/{{name}}")
    out[name] = {{
        "executed": len(executed),
        "digest": rc.condition_digest(result),
    }}
print(json.dumps(out))
"""


def test_cross_process_warm_cache_preserves_verdicts(tmp_path):
    """A cache written by one process serves another — under a different
    hash seed, so any hidden ordering dependence in the fingerprints
    would surface as a miss or a verdict drift."""
    digests = {}
    for name in PROTOCOL_NAMES:
        app, universe = build(name)
        result = app.check(universe, jobs=1, cache=tmp_path / name)
        digests[name] = condition_digest(result)

    script = _SUBPROCESS_SCRIPT.format(
        root=str(REPO_ROOT), src=str(REPO_ROOT / "src")
    )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "12345"
    proc = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    remote = json.loads(proc.stdout)
    for name in PROTOCOL_NAMES:
        assert remote[name]["executed"] == 0, name
        assert remote[name]["digest"] == digests[name], name
