"""Soundness suite: quotiented universes vs the unquotiented oracle.

Declaring a :class:`~repro.core.symmetry.SymmetrySpec` is a soundness
obligation — the protocol's gates, transitions, abstractions, and measure
must commute with the renaming. This suite holds every declared spec to
the checkable consequence: discharging the IS obligations over the
**orbit-quotiented** universe must produce *typed-identical verdicts* to
the full universe — same condition keys, same :class:`CheckResult` type,
same ``holds``, same (empty) counterexample sets — serially and through a
real process pool. Only ``checked`` may differ: the quotient enumerates
one representative per orbit, which is the entire point.

Protocols without a nontrivial group (ping-pong, producer-consumer,
chang-roberts) are exercised end-to-end instead: their ``verify`` accepts
``symmetry=True`` for pipeline uniformity and must behave identically.
"""

from __future__ import annotations

import pytest

from repro.core import initial_config
from repro.core.cache import reset_process_cache
from repro.core.context import GhostContext
from repro.core.refinement import CheckResult
from repro.core.universe import StoreUniverse
from repro.engine.scheduler import ProcessPoolScheduler
from repro.protocols import (
    broadcast,
    changroberts,
    nbuyer,
    paxos,
    pingpong,
    prodcons,
    twophase,
)
from repro.protocols.common import GHOST


def _first_app(pairs):
    return pairs[0][1]


#: (application, initial global, symmetry spec) per symmetric protocol.
#: Broadcast rides along with its honest ~1x quotient (distinct inputs
#: leave few nontrivial orbits) — the verdict contract must hold anyway.
SYMMETRIC_CASES = {
    "broadcast": lambda: (
        broadcast.make_sequentialization(3),
        broadcast.initial_global(3),
        broadcast.make_symmetry(3),
    ),
    "nbuyer": lambda: (
        _first_app(nbuyer.make_sequentializations(3)),
        nbuyer.initial_global(3),
        nbuyer.make_symmetry(3),
    ),
    "twophase": lambda: (
        _first_app(twophase.make_sequentializations(3)),
        twophase.initial_global(3),
        twophase.make_symmetry(3),
    ),
    "paxos": lambda: (
        paxos.make_sequentialization(2, 2),
        paxos.initial_global(2, 2),
        paxos.make_symmetry(2, 2),
    ),
}

SLOW = {"broadcast", "paxos"}


def _universe(app, init_global, symmetry=None):
    return StoreUniverse.from_reachable(
        app.program, [initial_config(init_global)], symmetry=symmetry
    ).with_context(GhostContext(GHOST))


def _verdict_map(result):
    """Everything the quotient must preserve: keys, result type, holds,
    counterexamples. ``checked`` is deliberately excluded — the quotient
    enumerates fewer (global, locals) combinations by design."""
    out = {}
    for key, r in result.conditions.items():
        assert type(r) is CheckResult, (key, type(r))
        out[key] = (r.name, r.holds, tuple(r.counterexamples))
    return out


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_process_cache()
    yield
    reset_process_cache()


@pytest.mark.parametrize(
    "name",
    [
        pytest.param(n, marks=pytest.mark.slow) if n in SLOW else n
        for n in sorted(SYMMETRIC_CASES)
    ],
)
def test_quotient_matches_unquotiented_oracle(name):
    app, init_global, spec = SYMMETRIC_CASES[name]()

    oracle = app.check(_universe(app, init_global), jobs=1)
    assert oracle.holds

    reset_process_cache()
    quotient = app.check(_universe(app, init_global, symmetry=spec), jobs=1)

    assert _verdict_map(quotient) == _verdict_map(oracle)
    assert quotient.holds == oracle.holds
    # The quotient must never enumerate more than the full universe.
    assert quotient.total_checked <= oracle.total_checked

    # Same contract through a real pool: shard boundaries move, the
    # merged verdict map must not.
    reset_process_cache()
    pooled = app.check(
        _universe(app, init_global, symmetry=spec),
        scheduler=ProcessPoolScheduler(2, clamp=False),
    )
    assert _verdict_map(pooled) == _verdict_map(oracle)
    assert pooled.total_checked == quotient.total_checked


@pytest.mark.parametrize(
    "name", [n for n in sorted(SYMMETRIC_CASES) if n not in SLOW]
)
def test_quotient_shrinks_the_enumeration(name):
    """For genuinely replicated protocols the quotient must actually
    collapse orbits — at least 2x fewer (global, locals) combinations
    (broadcast's distinct per-node inputs exempt it, honestly)."""
    app, init_global, spec = SYMMETRIC_CASES[name]()
    full = _universe(app, init_global)
    reset_process_cache()
    quotient = _universe(app, init_global, symmetry=spec)
    assert len(quotient.globals_) * 2 <= len(full.globals_)


ASYMMETRIC_VERIFY = {
    "pingpong": lambda **kw: pingpong.verify(rounds=2, **kw),
    "prodcons": lambda **kw: prodcons.verify(bound=3, **kw),
    "changroberts": lambda **kw: changroberts.verify(n=3, **kw),
}


@pytest.mark.parametrize("name", sorted(ASYMMETRIC_VERIFY))
def test_symmetry_flag_is_inert_without_a_group(name):
    run = ASYMMETRIC_VERIFY[name]
    plain = run(ground_truth=False)
    reset_process_cache()
    flagged = run(ground_truth=False, symmetry=True)
    assert plain.status == flagged.status == "OK"
    for (l1, a), (l2, b) in zip(plain.is_results, flagged.is_results):
        assert l1 == l2
        assert _verdict_map(a) == _verdict_map(b)
        assert a.total_checked == b.total_checked


def test_symmetric_verify_pipelines_report_the_quotient(tmp_path):
    """End-to-end ``verify(symmetry=True)`` on a symmetric protocol:
    verdicts stay OK, the parameters record the group, and the rcache
    keys quotiented and unquotiented runs apart (different universes
    must never alias)."""
    plain = twophase.verify(2, ground_truth=False, cache=tmp_path)
    reset_process_cache()
    quotient = twophase.verify(
        2, ground_truth=False, cache=tmp_path, symmetry=True
    )
    assert plain.status == quotient.status == "OK"
    assert "symmetry" not in plain.parameters
    assert quotient.parameters["symmetry"] == "twophase-n2"
    for (_, a), (_, b) in zip(plain.is_results, quotient.is_results):
        assert _verdict_map(a) == _verdict_map(b)
        # Distinct fingerprints: the quotiented run may not be served
        # from the unquotiented run's cache entries.
        assert not b.cached_keys & a.conditions.keys() or (
            b.total_checked < a.total_checked
        )
