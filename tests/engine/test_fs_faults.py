"""Disk-fault degradation: every write path tolerates ``OSError``.

The contract under test (see ``repro.engine.faults`` "Filesystem
faults"): an injected ``enospc``/``eio``/``eperm``/``torn`` fault on a
write site never aborts a run — the result cache degrades to a counted
miss, the checkpoint journal latches itself degraded and surfaces a
``journal-write-error`` resilience event, and the serve job store drops
the one damaged record and recovers on the next append. Verdicts are
byte-identical to a fault-free run throughout.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.refinement import CheckResult
from repro.engine.faults import FAULTS_ENV, FaultInjector, clear, install
from repro.engine.journal import CheckpointJournal, run_fingerprint
from repro.engine.obligations import Obligation, discharge
from repro.engine.rcache import ObligationCache
from repro.engine.resilience import ResilienceConfig
from repro.engine.scheduler import ObligationOutcome
from repro.serve.jobs import Job, JobRequest, JobStore

from .rcache_cases import build


@pytest.fixture(autouse=True)
def _no_injector(monkeypatch):
    clear()
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    yield
    clear()


def _outcome(key="I1", holds=True):
    return ObligationOutcome(
        key,
        CheckResult(key, holds, [], checked=3),
        elapsed=0.01,
        pid=os.getpid(),
        attempts=1,
    )


FP = "a" * 64


# --------------------------------------------------------------------- #
# ObligationCache.store() — the satellite bugfix regression
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("mode", ["enospc", "eio", "eperm"])
def test_store_oserror_degrades_to_counted_miss(tmp_path, mode):
    """A failed entry write must not propagate: ``store()`` returns
    False, ``write_errors`` counts it, and a ``write_error`` event is
    recorded for tracing."""
    install(FaultInjector.from_env(f"rcache.store={mode}"))
    cache = ObligationCache(tmp_path / "rc")
    assert cache.store(FP, "id1", "I1", _outcome()) is False
    assert cache.stats.write_errors == 1
    assert cache.stats.stores == 0
    assert [e.kind for e in cache.events if e.kind == "write_error"]
    # The entry never landed: a later lookup is an ordinary miss.
    assert cache.lookup(FP, "id1", "I1") is None
    assert cache.stats.misses == 1


def test_store_recovers_once_disk_pressure_clears(tmp_path):
    """``times``-bounded fault: the first store fails, the second (same
    cache object, same entry) succeeds — no poisoned state."""
    install(FaultInjector.from_env("rcache.store=enospc:1"))
    cache = ObligationCache(tmp_path / "rc")
    assert cache.store(FP, "id1", "I1", _outcome()) is False
    assert cache.store(FP, "id1", "I1", _outcome()) is True
    assert cache.stats.write_errors == 1
    assert cache.stats.stores == 1
    assert cache.lookup(FP, "id1", "I1") is not None


def test_torn_store_entry_is_a_lookup_miss(tmp_path):
    """A torn write lands a truncated entry on the final path; the
    reader must treat it as a miss, never a parse error."""
    install(FaultInjector.from_env("rcache.store=torn"))
    cache = ObligationCache(tmp_path / "rc")
    assert cache.store(FP, "id1", "I1", _outcome()) is False
    assert cache.stats.write_errors == 1
    torn = cache.objects_dir / f"{FP}.json"
    assert torn.exists() and torn.read_text()  # partial bytes landed
    assert cache.lookup(FP, "id1", "I1") is None


def test_discharge_completes_under_store_faults(tmp_path):
    """End-to-end regression for the original bug: ``discharge()`` with
    a cache on a full disk used to die in ``store()``. It must now
    finish with the fault-free verdict and surface the failures in the
    stats that ``--cache-stats`` prints."""
    app, universe = build("pingpong")
    reference = discharge(app, universe)
    install(FaultInjector.from_env("rcache.store=enospc:1000"))
    cache = ObligationCache(tmp_path / "rc")
    result = discharge(app, universe, cache=cache)
    assert result.holds is reference.holds
    assert result.num_obligations == reference.num_obligations
    assert cache.stats.stores == 0
    assert cache.stats.write_errors >= result.num_obligations
    # Nothing was persisted, so a fresh faultless run is all misses —
    # and then populates the cache normally.
    clear()
    warm = discharge(app, universe, cache=cache)
    assert warm.holds is reference.holds
    assert cache.stats.stores > 0


def test_index_flush_fault_keeps_index_dirty(tmp_path):
    install(FaultInjector.from_env("rcache.index=eio:1"))
    cache = ObligationCache(tmp_path / "rc")
    assert cache.store(FP, "id1", "I1", _outcome()) is True
    cache.flush()
    assert cache.stats.write_errors == 1
    assert not cache.index_path.exists()
    cache.flush()  # fault exhausted: the retry lands the index
    assert json.loads(cache.index_path.read_text())


def test_unwritable_cache_directory_disables_cache(tmp_path):
    """If even mkdir fails the cache opens disabled: every lookup is a
    miss, every store a counted write_error, nothing raises."""
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    cache = ObligationCache(blocker / "rc")
    assert cache.disabled
    assert cache.lookup(FP, "id1", "I1") is None
    assert cache.store(FP, "id1", "I1", _outcome()) is False
    assert cache.stats.write_errors == 1  # the failed mkdir
    assert len(cache) == 0


# --------------------------------------------------------------------- #
# Checkpoint journal — degrade, never abort
# --------------------------------------------------------------------- #

CHAIN = [
    Obligation(key="A", kind="abs", condition="A"),
    Obligation(key="B", kind="I1", condition="B", deps=("A",)),
]


def test_journal_append_fault_latches_degraded(tmp_path):
    install(FaultInjector.from_env("journal.append=eio"))
    journal, completed = CheckpointJournal.open(
        tmp_path, "case", run_fingerprint(None, None, CHAIN), len(CHAIN)
    )
    assert completed == {}
    assert journal.record(_outcome("A")) is False
    assert journal.degraded
    assert journal.write_errors == 1
    # Once degraded the journal is inert — no further writes, no raise.
    assert journal.record(_outcome("B")) is False
    assert journal.write_errors == 1
    journal.close()


def test_torn_journal_append_leaves_loadable_prefix(tmp_path):
    """A torn append writes half a record; the established torn-tail
    recovery must drop exactly that line on reload."""
    fingerprint = run_fingerprint(None, None, CHAIN)
    journal, _ = CheckpointJournal.open(tmp_path, "case", fingerprint, len(CHAIN))
    assert journal.record(_outcome("A"))
    install(FaultInjector.from_env("journal.append=torn"))
    assert journal.record(_outcome("B")) is False
    assert journal.degraded
    journal.close()
    clear()
    reopened, completed = CheckpointJournal.open(
        tmp_path, "case", fingerprint, len(CHAIN), resume=True
    )
    reopened.close()
    assert set(completed) == {"A"}


def test_headerless_journal_resumes_from_zero_not_stale(tmp_path):
    """Found by the chaos soak: a header append killed by EIO leaves an
    empty journal file; a later ``resume=True`` open must degrade to
    resume-from-zero, not refuse with StaleJournalError (which failed
    the retried job). A *parseable* foreign header must still refuse."""
    fingerprint = run_fingerprint(None, None, CHAIN)
    install(FaultInjector.from_env("journal.append=eio:1"))
    broken, _ = CheckpointJournal.open(tmp_path, "case", fingerprint, len(CHAIN))
    assert broken.degraded
    broken.close()
    clear()
    assert (tmp_path / "case.jsonl").read_bytes() == b""
    journal, completed = CheckpointJournal.open(
        tmp_path, "case", fingerprint, len(CHAIN), resume=True
    )
    assert completed == {}
    assert not journal.degraded
    assert journal.record(_outcome("A"))  # journaling works again
    journal.close()
    # The loud path is untouched: a genuine journal of a different run
    # still refuses to resume.
    from repro.engine.journal import StaleJournalError

    other, _ = CheckpointJournal.open(tmp_path, "case", "b" * 64, len(CHAIN))
    other.record(_outcome("A"))
    other.close()
    with pytest.raises(StaleJournalError, match="different run"):
        CheckpointJournal.open(
            tmp_path, "case", fingerprint, len(CHAIN), resume=True
        )


def test_discharge_surfaces_journal_degradation_as_event(tmp_path):
    """A run whose journal dies mid-flight still completes with the
    fault-free verdict, and ``discharge()`` appends one
    ``journal-write-error`` resilience event so operators see that a
    resume would re-execute."""
    app, universe = build("pingpong")
    reference = discharge(app, universe)
    install(FaultInjector.from_env("journal.append=enospc"))
    result = discharge(
        app,
        universe,
        resilience=ResilienceConfig(checkpoint_dir=str(tmp_path)),
        checkpoint_label="pingpong",
    )
    assert result.holds is reference.holds
    kinds = [e.kind for e in result.resilience_events]
    assert "journal-write-error" in kinds
    event = next(
        e for e in result.resilience_events if e.kind == "journal-write-error"
    )
    assert "degraded" in event.detail


# --------------------------------------------------------------------- #
# Serve job store — per-record retry, damaged lines skipped
# --------------------------------------------------------------------- #


def _job(job_id="job-1", rounds=2):
    request = JobRequest.from_payload(
        {"kind": "verify", "protocol": "pingpong", "params": {"rounds": rounds}}
    )
    return Job(id=job_id, request=request, submitted_at=0.0)


def test_job_store_recovers_after_append_fault(tmp_path):
    store = JobStore(tmp_path / "jobs.jsonl")
    store.open()
    first, second = _job("job-1", rounds=2), _job("job-2", rounds=3)
    assert store.record("submitted", first)
    install(FaultInjector.from_env("jobs.append=enospc:1"))
    assert store.record("submitted", second) is False
    assert store.write_errors == 1
    # The very next append reopens the file and lands.
    first.status = "done"
    assert store.record("finished", first, status="done")
    store.close()
    clear()
    jobs, _events = JobStore.load(tmp_path / "jobs.jsonl")
    by_id = {j.id: j for j in jobs}
    assert by_id["job-1"].status == "done"
    assert "job-2" not in by_id  # the one lost record, nothing else


def test_job_store_torn_append_damages_only_one_record(tmp_path):
    store = JobStore(tmp_path / "jobs.jsonl")
    store.open()
    assert store.record("submitted", _job("job-1", rounds=2))
    install(FaultInjector.from_env("jobs.append=torn:1"))
    assert store.record("submitted", _job("job-2", rounds=3)) is False
    clear()
    # Recovery path: reopen repairs the torn tail (newline) so this
    # record starts on a fresh line instead of gluing onto the stub.
    assert store.record("submitted", _job("job-3", rounds=4))
    store.close()
    jobs, _events = JobStore.load(tmp_path / "jobs.jsonl")
    ids = {j.id for j in jobs}
    assert "job-1" in ids
    assert "job-2" not in ids
    assert "job-3" in ids
