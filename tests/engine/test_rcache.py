"""Unit and engine-level tests for the persistent obligation result cache.

Three layers: the structural hasher (``stable_digest`` — deterministic,
order-insensitive, closure-sensitive), the content-addressed store
(``ObligationCache`` — roundtrip, corruption tolerance, invalidation
attribution), and the ``discharge()`` integration (uncacheable values
degrade to execution, cached FAILs seed fail-fast, the pool backend hits
the same cache, journal resume outranks the cache, and tracing a warm run
perturbs nothing).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.refinement import CheckResult
from repro.core.store import Store
from repro.core.multiset import Multiset
from repro.diagnose.fixtures import FIXTURES
from repro.engine.journal import JournaledOutcome
from repro.engine.obligations import build_obligations
from repro.engine.rcache import (
    DependencyFingerprinter,
    ObligationCache,
    Unfingerprintable,
    stable_digest,
    universe_fingerprint,
)
from repro.engine.resilience import ResilienceConfig
from repro.engine.scheduler import ObligationOutcome, ProcessPoolScheduler
from repro.obs import Tracer

from .rcache_cases import (
    all_keys,
    build,
    condition_map,
    count_executions,
    rebuild,
    wrap_action,
)

# --------------------------------------------------------------------- #
# stable_digest: deterministic, order-insensitive, closure-sensitive
# --------------------------------------------------------------------- #


def test_digest_is_deterministic_and_value_sensitive():
    assert stable_digest(42) == stable_digest(42)
    assert stable_digest(42) != stable_digest(43)
    assert stable_digest("42") != stable_digest(42)
    # True == 1 and False == 0 as container keys, so equal values must
    # digest equal — otherwise which spelling survives a dict/multiset
    # key collapse (insertion order) would leak into the fingerprint.
    assert stable_digest(True) == stable_digest(1)
    assert stable_digest(False) == stable_digest(0)
    assert stable_digest(None) != stable_digest(0)


def test_digest_ignores_dict_and_set_iteration_order():
    assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
    assert stable_digest({3, 1, 2}) == stable_digest({2, 3, 1})
    assert stable_digest(Store({"x": 1, "y": 2})) == stable_digest(
        Store({"y": 2, "x": 1})
    )
    assert stable_digest(Multiset("aab")) == stable_digest(Multiset("aba"))
    assert stable_digest(Multiset("aab")) != stable_digest(Multiset("ab"))


def test_digest_sees_closure_constants_cells_and_defaults():
    def make(k):
        return lambda x: x + k

    same_a, same_b = make(1), make(1)
    assert stable_digest(same_a) == stable_digest(same_b)
    assert stable_digest(make(1)) != stable_digest(make(2))

    def f(x, bias=0):
        return x + bias

    def g(x, bias=1):
        return x + bias

    assert stable_digest(f) != stable_digest(g)
    assert stable_digest(lambda x: x + 1) != stable_digest(lambda x: x + 2)


def test_digest_sees_referenced_module_globals():
    namespace_a = {"THRESHOLD": 5}
    namespace_b = {"THRESHOLD": 6}
    exec("def pred(x):\n    return x < THRESHOLD", namespace_a)
    exec("def pred(x):\n    return x < THRESHOLD", namespace_b)
    assert stable_digest(namespace_a["pred"]) != stable_digest(
        namespace_b["pred"]
    )
    namespace_b["THRESHOLD"] = 5
    assert stable_digest(namespace_a["pred"]) == stable_digest(
        namespace_b["pred"]
    )


def test_digest_rejects_address_dependent_values():
    with pytest.raises(Unfingerprintable):
        stable_digest(object())
    token = object()
    with pytest.raises(Unfingerprintable):
        stable_digest(lambda x: (x, token))


def test_universe_fingerprint_is_iteration_order_insensitive():
    from repro.core.universe import StoreUniverse

    stores = [Store({"x": i}) for i in range(4)]
    locals_ = {"A": [Store({"i": 0}), Store({"i": 1})]}
    forward = StoreUniverse(list(stores), dict(locals_))
    backward = StoreUniverse(
        list(reversed(stores)), {"A": list(reversed(locals_["A"]))}
    )
    assert universe_fingerprint(forward) == universe_fingerprint(backward)
    shrunk = StoreUniverse(stores[:-1], dict(locals_))
    assert universe_fingerprint(forward) != universe_fingerprint(shrunk)


# --------------------------------------------------------------------- #
# DependencyFingerprinter
# --------------------------------------------------------------------- #


def test_fingerprints_are_distinct_but_identities_survive_edits():
    app, universe = build("pingpong")
    obligations = build_obligations(app, universe)
    fp = DependencyFingerprinter(app, universe)
    fingerprints = {ob.key: fp.fingerprint(ob) for ob in obligations}
    assert all(fingerprints.values())
    assert len(set(fingerprints.values())) == len(fingerprints)

    mutant = rebuild(app, invariant=wrap_action(app.invariant))
    mfp = DependencyFingerprinter(mutant, universe)
    for ob in obligations:
        # The identity never moves — that is what attributes a miss to an
        # invalidation; the fingerprint moves exactly for the readers.
        assert mfp.identity(ob) == fp.identity(ob)
        changed = mfp.fingerprint(ob) != fingerprints[ob.key]
        assert changed == (ob.key in ("I1", "I2") or ob.key.startswith("I3"))


def test_unfingerprintable_dependency_makes_only_its_readers_uncacheable():
    app, universe = build("pingpong")
    token = object()
    gate = app.invariant.gate
    poisoned = rebuild(
        app,
        invariant=type(app.invariant)(
            app.invariant.name,
            lambda state: gate(state) or token is None,
            app.invariant.transitions,
            app.invariant.params,
        ),
    )
    fp = DependencyFingerprinter(poisoned, universe)
    for ob in build_obligations(poisoned, universe):
        cacheable = fp.fingerprint(ob) is not None
        reads_invariant = ob.key in ("I1", "I2") or ob.key.startswith("I3")
        assert cacheable == (not reads_invariant), ob.key


# --------------------------------------------------------------------- #
# ObligationCache: roundtrip, tolerance, attribution
# --------------------------------------------------------------------- #

FP_A = "a" * 64
FP_B = "b" * 64
IDENTITY = "i" * 64


def _outcome(key="I1", holds=True, witnesses=(), **kwargs):
    return ObligationOutcome(
        key,
        CheckResult(key, holds, list(witnesses), checked=9),
        elapsed=0.5,
        pid=os.getpid(),
        attempts=1,
        **kwargs,
    )


def test_ensure_normalizes_none_instance_and_path(tmp_path):
    assert ObligationCache.ensure(None) is None
    cache = ObligationCache(tmp_path)
    assert ObligationCache.ensure(cache) is cache
    opened = ObligationCache.ensure(tmp_path / "fresh")
    assert isinstance(opened, ObligationCache)
    assert opened.objects_dir.is_dir()


def test_store_lookup_roundtrip_with_witnesses(tmp_path):
    cache = ObligationCache(tmp_path)
    stored = _outcome(holds=False, witnesses=[("store", 1), ("store", 2)])
    assert cache.store(FP_A, IDENTITY, "I1", stored)
    assert len(cache) == 1

    entry = cache.lookup(FP_A, IDENTITY, "I1")
    assert isinstance(entry, JournaledOutcome)
    result = entry.to_result()
    assert result.holds is False
    assert result.counterexamples == [("store", 1), ("store", 2)]
    assert result.checked == 9
    assert cache.stats.hits == 1 and cache.stats.stores == 1


def test_store_refuses_incomplete_resumed_and_cached_outcomes(tmp_path):
    cache = ObligationCache(tmp_path)
    skipped = ObligationOutcome("I1", None, 0.0, os.getpid())
    assert not cache.store(FP_A, IDENTITY, "I1", skipped)
    assert not cache.store(FP_A, IDENTITY, "I1", _outcome(resumed=True))
    assert not cache.store(FP_A, IDENTITY, "I1", _outcome(cached=True))
    assert len(cache) == 0 and cache.stats.stores == 0


def test_corrupt_wrong_schema_and_mismatched_entries_are_misses(tmp_path):
    cache = ObligationCache(tmp_path)
    cache.store(FP_A, IDENTITY, "I1", _outcome())

    # Corrupt payload.
    (cache.objects_dir / f"{FP_A}.json").write_text("{torn")
    assert cache.lookup(FP_A, IDENTITY, "I1") is None

    # Wrong schema tag.
    (cache.objects_dir / f"{FP_A}.json").write_text(
        json.dumps({"schema": "something/else", "key": "I1"})
    )
    assert cache.lookup(FP_A, IDENTITY, "I1") is None

    # Right schema, wrong key (collision/tampering guard).
    cache.store(FP_B, IDENTITY, "I2", _outcome("I2"))
    assert cache.lookup(FP_B, IDENTITY, "I1") is None
    assert cache.stats.hits == 0


def test_miss_with_known_identity_counts_as_invalidation(tmp_path):
    cache = ObligationCache(tmp_path)
    cache.store(FP_A, IDENTITY, "I1", _outcome())
    cache.flush()

    # Same identity, new fingerprint: an edit, not a cold miss — and the
    # attribution survives a reload from disk in a fresh process-alike.
    reloaded = ObligationCache(tmp_path)
    assert reloaded.lookup(FP_B, IDENTITY, "I1") is None
    assert reloaded.stats.invalidations == 1 and reloaded.stats.misses == 0
    assert reloaded.lookup(FP_B, "other-identity", "I1") is None
    assert reloaded.stats.misses == 1


def test_corrupt_index_degrades_attribution_not_verdicts(tmp_path):
    cache = ObligationCache(tmp_path)
    cache.store(FP_A, IDENTITY, "I1", _outcome())
    cache.flush()
    (tmp_path / "index.json").write_text("not json at all")

    reloaded = ObligationCache(tmp_path)
    entry = reloaded.lookup(FP_A, IDENTITY, "I1")
    assert entry is not None and entry.holds
    assert reloaded.lookup(FP_B, IDENTITY, "I1") is None
    assert reloaded.stats.misses == 1  # attribution lost, verdicts intact


# --------------------------------------------------------------------- #
# discharge() integration
# --------------------------------------------------------------------- #


def test_uncacheable_obligations_execute_every_run(tmp_path):
    app, universe = build("pingpong")
    token = object()
    gate = app.invariant.gate
    poisoned = rebuild(
        app,
        invariant=type(app.invariant)(
            app.invariant.name,
            lambda state: gate(state) or token is None,
            app.invariant.transitions,
            app.invariant.params,
        ),
    )
    keys = all_keys(poisoned, universe)
    uncacheable = {k for k in keys if k in ("I1", "I2") or k.startswith("I3")}

    cold = poisoned.check(universe, jobs=1, cache=tmp_path)
    assert cold.rcache_stats["uncacheable"] == len(uncacheable)
    with count_executions() as executed:
        warm = poisoned.check(universe, jobs=1, cache=tmp_path)
    assert set(executed) == uncacheable
    assert set(warm.cached_keys) == keys - uncacheable
    assert condition_map(cold) == condition_map(warm)


def test_cached_failures_seed_fail_fast_skips(tmp_path):
    app, universe = FIXTURES["broken-broadcast"].build()
    cold = app.check(universe, jobs=1, fail_fast=True, cache=tmp_path)
    assert not cold.holds
    with count_executions() as executed:
        warm = app.check(universe, jobs=1, fail_fast=True, cache=tmp_path)
    # Completed verdicts (passes *and* fails) hit; the cached FAIL drives
    # the same downstream skips a live FAIL would, with zero executions.
    assert not executed
    assert condition_map(cold) == condition_map(warm)
    skipped = {
        key for key, r in warm.conditions.items() if not r.holds
    }
    assert set(FIXTURES["broken-broadcast"].expect_failing) <= skipped


def test_pool_scheduler_shares_the_cache(tmp_path):
    app, universe = build("pingpong")
    serial = app.check(universe, jobs=1)
    cold = app.check(
        universe,
        scheduler=ProcessPoolScheduler(4, clamp=False),
        cache=tmp_path,
    )
    warm = app.check(
        universe,
        scheduler=ProcessPoolScheduler(4, clamp=False),
        cache=tmp_path,
    )
    # The sharded layout caches per shard; a warm pool run hits them all
    # and merges to the identical condition map.
    assert warm.rcache_stats["hits"] == len(warm.cached_keys) > 0
    assert warm.rcache_stats["misses"] == 0
    assert condition_map(serial) == condition_map(cold) == condition_map(warm)


def test_journal_resume_outranks_the_cache(tmp_path):
    app, universe = build("pingpong")
    resilience = ResilienceConfig(
        checkpoint_dir=str(tmp_path / "ckpt"), resume=True
    )
    first = app.check(
        universe,
        jobs=1,
        resilience=resilience,
        checkpoint_label="pp",
        cache=tmp_path / "cache",
    )
    assert first.holds and not first.resumed_keys
    second = app.check(
        universe,
        jobs=1,
        resilience=resilience,
        checkpoint_label="pp",
        cache=tmp_path / "cache",
    )
    # Every obligation is journaled, so the resume seeds everything and
    # the cache is never consulted for them.
    assert set(second.resumed_keys) == all_keys(app, universe)
    assert not second.cached_keys
    assert condition_map(first) == condition_map(second)


def test_tracing_a_warm_run_perturbs_nothing_and_labels_spans(tmp_path):
    app, universe = build("pingpong")
    app.check(universe, jobs=1, cache=tmp_path)

    untraced = app.check(universe, jobs=1, cache=tmp_path)
    tracer = Tracer()
    traced = app.check(universe, jobs=1, cache=tmp_path, tracer=tracer)
    assert condition_map(untraced) == condition_map(traced)
    assert untraced.cached_keys == traced.cached_keys

    rcache_spans = [s for s in tracer.spans if s.category == "rcache"]
    assert {s.kind for s in rcache_spans} == {"hit"}
    assert len(rcache_spans) == len(traced.cached_keys)
    obligation_spans = [
        s for s in tracer.spans if s.category == "obligation"
    ]
    assert obligation_spans and all(s.cached for s in obligation_spans)
    assert all(
        s.as_dict()["cached"] is True for s in obligation_spans
    )


def test_cli_style_stats_delta_is_per_discharge(tmp_path):
    """One cache object across two discharges: each result's stats are
    the delta for *its* discharge, not the cumulative counters."""
    cache = ObligationCache(tmp_path)
    app, universe = build("pingpong")
    total = len(all_keys(app, universe))
    cold = app.check(universe, jobs=1, cache=cache)
    warm = app.check(universe, jobs=1, cache=cache)
    assert cold.rcache_stats["misses"] == total
    assert cold.rcache_stats["hits"] == 0
    assert warm.rcache_stats["hits"] == total
    assert warm.rcache_stats["misses"] == 0
    assert cache.stats.hits == total and cache.stats.misses == total
