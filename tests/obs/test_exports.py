"""Exporter contracts: Chrome trace schema, metrics aggregates, summary
rendering, and the CLI surface (``--trace`` / ``--metrics``).

The Chrome checks validate what ``chrome://tracing``/Perfetto actually
require of a ``trace_event`` file: a ``traceEvents`` array whose complete
events carry ``name``/``ph``/``ts``/``dur``/``pid``/``tid`` with integer
microsecond timestamps. The metrics checks pin the acceptance criterion:
aggregate totals equal the engine's merged evaluation counts exactly.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.metrics import trace_checked_by_scope
from repro.core import initial_config
from repro.core.context import GhostContext
from repro.core.universe import StoreUniverse
from repro.obs import (
    Tracer,
    chrome_trace,
    metrics_payload,
    render_summary,
    write_chrome_trace,
    write_metrics,
)
from repro.protocols import pingpong, prodcons
from repro.protocols.common import GHOST

ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def traced_check():
    app = pingpong.make_sequentialization(2)
    init = initial_config(pingpong.initial_global(2))
    universe = StoreUniverse.from_reachable(app.program, [init]).with_context(
        GhostContext(GHOST)
    )
    tracer = Tracer()
    with tracer.scope("ping-pong"):
        with tracer.scope("IS[Ping]"):
            result = app.check(universe, jobs=1, tracer=tracer)
    return tracer, result


# --------------------------------------------------------------------- #
# Chrome trace_event schema
# --------------------------------------------------------------------- #


def test_chrome_trace_schema(traced_check):
    tracer, result = traced_check
    document = chrome_trace(tracer)
    events = document["traceEvents"]
    assert isinstance(events, list)
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    # >= 1 span per discharged obligation (acceptance criterion).
    assert len(complete) >= result.num_obligations
    for event in complete:
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        assert isinstance(event["dur"], int) and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert "args" in event
    # One process_name metadata record per distinct PID.
    named = {e["pid"] for e in metadata if e["name"] == "process_name"}
    assert named == {e["pid"] for e in complete}


def test_chrome_trace_timestamps_are_normalized(traced_check):
    tracer, _ = traced_check
    events = [e for e in chrome_trace(tracer)["traceEvents"] if e["ph"] == "X"]
    assert min(e["ts"] for e in events) == 0


def test_chrome_trace_obligation_args(traced_check):
    tracer, result = traced_check
    events = [
        e
        for e in chrome_trace(tracer)["traceEvents"]
        if e["ph"] == "X" and e["cat"] == "obligation"
    ]
    assert sum(e["args"]["checked"] for e in events) == result.total_checked
    for event in events:
        assert event["args"]["condition"] in result.conditions
        assert event["args"]["holds"] is True
        assert event["args"]["scope"] == "ping-pong/IS[Ping]"


def test_write_chrome_trace_round_trips(tmp_path, traced_check):
    tracer, _ = traced_check
    path = write_chrome_trace(tracer, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert loaded == chrome_trace(tracer)


# --------------------------------------------------------------------- #
# Metrics payload
# --------------------------------------------------------------------- #


def test_metrics_totals_equal_engine_counts(traced_check):
    tracer, result = traced_check
    payload = metrics_payload(tracer)
    assert payload["totals"]["checked"] == result.total_checked
    assert payload["totals"]["obligations"] == result.num_obligations
    assert payload["totals"]["skipped"] == 0
    per_condition = payload["per_condition"]
    for name, condition in result.conditions.items():
        entry = per_condition[f"ping-pong/IS[Ping]::{name}"]
        assert entry["checked"] == condition.checked


def test_metrics_per_scope_groups_by_protocol(traced_check):
    tracer, result = traced_check
    payload = metrics_payload(tracer)
    assert list(payload["per_scope"]) == ["ping-pong"]
    assert payload["per_scope"]["ping-pong"]["checked"] == result.total_checked
    assert trace_checked_by_scope(tracer) == {
        "ping-pong": result.total_checked
    }


def test_metrics_payload_is_json_serializable(tmp_path, traced_check):
    tracer, _ = traced_check
    path = write_metrics(tracer, tmp_path / "metrics.json")
    loaded = json.loads(path.read_text())
    assert loaded["schema"] == "repro.obs/metrics/v1"
    assert loaded["per_obligation"], "per-obligation rows missing"
    row = loaded["per_obligation"][0]
    for key in ("name", "condition", "seconds", "checked", "pid", "backend"):
        assert key in row


def test_render_summary_lists_every_condition(traced_check):
    tracer, result = traced_check
    summary = render_summary(tracer)
    for name in result.conditions:
        assert name in summary
    assert "total" in summary
    assert render_summary(Tracer()) == "(no obligation spans recorded)"


# --------------------------------------------------------------------- #
# Protocol pipelines and the CLI
# --------------------------------------------------------------------- #


def test_verify_pipeline_records_phases_and_scopes():
    tracer = Tracer()
    report = prodcons.verify(bound=2, tracer=tracer)
    assert report.ok
    phases = {s.name for s in tracer.phase_spans()}
    assert "sequential spec" in phases
    assert any(name.startswith("IS[") for name in phases)
    scopes = {s.scope for s in tracer.obligation_spans()}
    assert all(s.startswith("producer-consumer/IS[") for s in scopes)


def test_verify_without_tracer_is_identical():
    """Differential acceptance check at the pipeline level: a traced run's
    report content matches an untraced run's exactly (wall-clock figures
    are masked — two runs legitimately round to different hundredths)."""
    import re

    def _masked(report):
        return re.sub(r"\d+\.\d+s", "_s", report.summary())

    plain = prodcons.verify(bound=2)
    traced = prodcons.verify(bound=2, tracer=Tracer())
    assert _masked(traced) == _masked(plain)
    assert [label for label, _ in traced.is_results] == [
        label for label, _ in plain.is_results
    ]
    for (_, a), (_, b) in zip(traced.is_results, plain.is_results):
        assert a.conditions == b.conditions


@pytest.mark.slow
def test_cli_verify_writes_trace_and_metrics(tmp_path):
    trace = tmp_path / "out_trace.json"
    metrics = tmp_path / "out_metrics.json"
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "verify",
            "pingpong",
            "--trace",
            str(trace),
            "--metrics",
            str(metrics),
        ],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    document = json.loads(trace.read_text())
    assert document["traceEvents"]
    payload = json.loads(metrics.read_text())
    assert payload["totals"]["checked"] > 0
    assert "trace: wrote" in completed.stdout
