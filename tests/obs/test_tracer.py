"""Tracer core behaviour: spans, scopes, phases, and the engine hooks.

The engine-facing tests run a real (small) IS application — Ping-Pong at
two rounds — through ``check`` with a tracer attached, on both the serial
and the pool backend, and pin down:

* one span per scheduler unit (including shards/slices on the pool
  layout), each carrying PID, backend, verdict, enumeration count, and a
  cache hit/miss delta;
* the no-perturbation guarantee — the condition map with a tracer
  attached equals the one without, per backend;
* logical parity — serial and pool layouts shard differently, but
  grouping spans by condition yields the same condition set with the same
  summed enumeration counts;
* skipped obligations appear as zero-check, flagged spans under
  ``fail_fast``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import initial_config
from repro.core.context import GhostContext
from repro.core.universe import StoreUniverse
from repro.engine.scheduler import ProcessPoolScheduler, _fork_available
from repro.obs import Span, Tracer
from repro.protocols import pingpong
from repro.protocols.common import GHOST


@pytest.fixture(scope="module")
def pingpong_case():
    app = pingpong.make_sequentialization(2)
    init = initial_config(pingpong.initial_global(2))
    universe = StoreUniverse.from_reachable(app.program, [init]).with_context(
        GhostContext(GHOST)
    )
    return app, universe


def _checked_by_condition(tracer):
    totals = {}
    for span in tracer.obligation_spans():
        totals[span.condition] = totals.get(span.condition, 0) + span.checked
    return totals


# --------------------------------------------------------------------- #
# Tracer primitives
# --------------------------------------------------------------------- #


def test_scopes_nest_and_label_spans():
    tracer = Tracer()
    with tracer.scope("outer"):
        with tracer.scope("inner"):
            tracer.add(Span("x", "obligation", 1.0, 0.5, pid=1))
        tracer.add(Span("y", "obligation", 2.0, 0.5, pid=1))
    tracer.add(Span("z", "obligation", 3.0, 0.5, pid=1))
    scopes = [s.scope for s in tracer.spans]
    assert scopes == ["outer/inner", "outer", ""]
    assert tracer.current_scope == ""


def test_phase_context_manager_records_a_phase_span():
    tracer = Tracer()
    with tracer.phase("setup"):
        pass
    (span,) = tracer.phase_spans()
    assert span.name == "setup"
    assert span.duration >= 0.0
    assert span.pid == os.getpid()


def test_origin_is_earliest_start():
    tracer = Tracer()
    tracer.add(Span("later", "obligation", 10.0, 1.0, pid=1))
    tracer.add(Span("earlier", "obligation", 5.0, 1.0, pid=1))
    assert tracer.origin == 5.0
    assert tracer.total_checked() == 0


# --------------------------------------------------------------------- #
# Engine hooks — serial backend
# --------------------------------------------------------------------- #


def test_serial_check_emits_one_span_per_obligation(pingpong_case):
    app, universe = pingpong_case
    tracer = Tracer()
    result = app.check(universe, jobs=1, tracer=tracer)
    spans = tracer.obligation_spans()
    assert len(spans) == result.num_obligations
    assert {s.name for s in spans} == set(result.timings)
    for span in spans:
        assert span.pid == os.getpid()
        assert span.backend == "serial"
        assert span.holds is True
        assert not span.skipped
        assert span.cache_delta is not None
        assert span.duration >= 0.0


def test_tracer_does_not_perturb_serial_results(pingpong_case):
    """The no-perturbation guarantee, serial backend: condition maps (and
    their rendered reports) are identical with and without a tracer."""
    app, universe = pingpong_case
    plain = app.check(universe, jobs=1)
    traced = app.check(universe, jobs=1, tracer=Tracer())
    assert traced.conditions == plain.conditions
    assert traced.report() == plain.report()


def test_metrics_totals_match_engine_accounting(pingpong_case):
    """Acceptance: span-summed evaluation counts equal the merged
    condition map's, exactly."""
    app, universe = pingpong_case
    tracer = Tracer()
    result = app.check(universe, jobs=1, tracer=tracer)
    assert tracer.total_checked() == result.total_checked
    by_condition = _checked_by_condition(tracer)
    for name, condition in result.conditions.items():
        assert by_condition[name] == condition.checked


def test_cache_deltas_sum_to_span_activity(pingpong_case):
    """Per-span cache deltas are non-negative and their total matches the
    whole run's counter movement (monotone counters, exact bracketing)."""
    from repro.core.cache import counts_snapshot

    app, universe = pingpong_case
    before = counts_snapshot()
    tracer = Tracer()
    app.check(universe, jobs=1, tracer=tracer)
    after = counts_snapshot()
    total = {"gate": 0, "transitions": 0}
    for span in tracer.obligation_spans():
        for kind, counters in span.cache_delta.items():
            assert counters["hits"] >= 0 and counters["misses"] >= 0
            total[kind] += counters["hits"] + counters["misses"]
    for kind in total:
        hits_before, misses_before = before.get(kind, (0, 0))
        hits_after, misses_after = after.get(kind, (0, 0))
        moved = (hits_after + misses_after) - (hits_before + misses_before)
        assert total[kind] == moved


# --------------------------------------------------------------------- #
# Engine hooks — pool backend
# --------------------------------------------------------------------- #


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
def test_pool_spans_ship_back_from_workers(pingpong_case):
    app, universe = pingpong_case
    tracer = Tracer()
    scheduler = ProcessPoolScheduler(2, clamp=False)
    result = app.check(universe, scheduler=scheduler, tracer=tracer)
    spans = tracer.obligation_spans()
    assert len(spans) == result.num_obligations
    worker_pids = {s.pid for s in spans}
    assert os.getpid() not in worker_pids
    assert all(s.backend == "pool[2]" for s in spans)
    warmups = [s for s in tracer.spans if s.category == "warmup"]
    assert len(warmups) == 1 and warmups[0].pid == os.getpid()


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
def test_serial_and_pool_spans_agree_logically(pingpong_case):
    """Span parity: the pool's sharded layout produces more spans, but the
    per-condition sums — the logical obligation set — are identical."""
    app, universe = pingpong_case
    serial_tracer, pool_tracer = Tracer(), Tracer()
    serial = app.check(universe, jobs=1, tracer=serial_tracer)
    pool = app.check(
        universe,
        scheduler=ProcessPoolScheduler(2, clamp=False),
        tracer=pool_tracer,
    )
    assert pool.conditions == serial.conditions
    assert _checked_by_condition(serial_tracer) == _checked_by_condition(
        pool_tracer
    )
    # Inline parity closes the triangle: engine span accounting matches
    # the pre-engine monolithic checker too.
    inline = app.check_inline(universe)
    assert _checked_by_condition(serial_tracer) == {
        name: condition.checked for name, condition in inline.conditions.items()
    }


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
def test_tracer_does_not_perturb_pool_results(pingpong_case):
    app, universe = pingpong_case
    plain = app.check(universe, scheduler=ProcessPoolScheduler(2, clamp=False))
    traced = app.check(
        universe,
        scheduler=ProcessPoolScheduler(2, clamp=False),
        tracer=Tracer(),
    )
    assert traced.conditions == plain.conditions


# --------------------------------------------------------------------- #
# Fail-fast skips
# --------------------------------------------------------------------- #


def test_skipped_obligations_become_flagged_spans():
    """Break an abstraction so its dependents are skipped under
    fail_fast; the skips must surface as zero-check flagged spans."""
    from repro.core.action import Action

    app = pingpong.make_sequentialization(2)
    # Gate still true, but no transitions: the concrete action's behaviour
    # cannot be simulated, so the abs[...] refinement obligations fail and
    # everything downstream (LM, CO, I3) is skipped.
    broken = {
        name: Action(
            abstraction.name,
            abstraction.gate,
            lambda _s: iter(()),
            abstraction.params,
        )
        for name, abstraction in app.abstractions.items()
    }
    bad = type(app)(
        program=app.program,
        m_name=app.m_name,
        m_prime=app.m_prime,
        eliminated=app.eliminated,
        invariant=app.invariant,
        measure=app.measure,
        choice=app.choice,
        abstractions=broken,
    )
    init = initial_config(pingpong.initial_global(2))
    universe = StoreUniverse.from_reachable(bad.program, [init]).with_context(
        GhostContext(GHOST)
    )
    tracer = Tracer()
    result = bad.check(universe, jobs=1, fail_fast=True, tracer=tracer)
    assert not result.holds
    skipped = [s for s in tracer.obligation_spans() if s.skipped]
    assert skipped, "fail_fast should have skipped dependents"
    for span in skipped:
        assert span.checked == 0
        assert span.holds is None
        assert span.duration == 0.0
    assert tracer.total_checked() == result.total_checked
