"""Unit and property tests for multisets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import EMPTY, Multiset

elements = st.lists(st.integers(min_value=0, max_value=5), max_size=12)


class TestBasics:
    def test_empty(self):
        assert len(EMPTY) == 0
        assert not EMPTY
        assert list(EMPTY) == []

    def test_count_and_len(self):
        m = Multiset("aabc")
        assert m.count("a") == 2
        assert m.count("z") == 0
        assert len(m) == 4

    def test_iteration_respects_multiplicity(self):
        m = Multiset([1, 1, 2])
        assert sorted(m) == [1, 1, 2]

    def test_contains(self):
        m = Multiset([1])
        assert 1 in m
        assert 2 not in m

    def test_add(self):
        m = Multiset([1]).add(1).add(2, count=3)
        assert m.count(1) == 2
        assert m.count(2) == 3

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            Multiset().add(1, count=-1)

    def test_remove(self):
        m = Multiset([1, 1])
        assert m.remove(1).count(1) == 1

    def test_remove_too_many_raises(self):
        with pytest.raises(KeyError):
            Multiset([1]).remove(1, count=2)

    def test_remove_absent_raises(self):
        with pytest.raises(KeyError):
            Multiset().remove("x")

    def test_union_operator(self):
        assert (Multiset([1]) + Multiset([1, 2])).count(1) == 2

    def test_difference_truncates(self):
        m = Multiset([1]) - Multiset([1, 1, 2])
        assert len(m) == 0

    def test_sub_requires_multiset(self):
        """``-`` is multiset difference only; element removal is spelled
        ``remove`` so the two can never be confused."""
        with pytest.raises(TypeError):
            Multiset([1, 2]) - 1

    def test_nested_multiset_elements(self):
        """A bag of bags: removing a multiset-valued *element* is spelled
        ``remove`` (strict), while ``-`` is always a difference over
        elements. The old isinstance dispatch made ``outer - inner``
        silently diff against ``inner``'s contents, so the element-removal
        reading was unreachable for nested multisets."""
        inner = Multiset([1])
        other = Multiset([1, 2])
        outer = Multiset([inner, inner, other])
        # Element removal: one copy of the element ``inner`` goes away.
        assert outer.remove(inner).count(inner) == 1
        # Operator: difference over outer's elements. ``inner`` contains
        # the element 1, which outer (a bag of bags) does not contain, so
        # the difference leaves outer unchanged — and equals the explicit
        # method spelling, never a disguised ``remove``.
        assert outer - inner == outer.difference(inner) == outer
        # Difference with a bag holding the element removes one copy.
        assert (outer - Multiset([inner])) == outer.remove(inner)
        # Strict removal of an absent nested element still raises.
        with pytest.raises(KeyError):
            outer.remove(Multiset([2]))

    def test_includes(self):
        assert Multiset([1, 1, 2]).includes(Multiset([1, 2]))
        assert not Multiset([1]).includes(Multiset([1, 1]))

    def test_from_counts_drops_nonpositive(self):
        m = Multiset.from_counts({"a": 2, "b": 0, "c": -1})
        assert m == Multiset("aa")

    def test_support_and_counts(self):
        m = Multiset("aab")
        assert sorted(m.support()) == ["a", "b"]
        assert dict(m.counts()) == {"a": 2, "b": 1}

    def test_repr_roundtrip_info(self):
        assert "2" in repr(Multiset([7, 7]))

    def test_hashable_as_dict_key(self):
        d = {Multiset([1, 2]): "v"}
        assert d[Multiset([2, 1])] == "v"


class TestProperties:
    @given(elements, elements)
    def test_union_commutative(self, a, b):
        assert Multiset(a) + Multiset(b) == Multiset(b) + Multiset(a)

    @given(elements, elements, elements)
    def test_union_associative(self, a, b, c):
        ma, mb, mc = Multiset(a), Multiset(b), Multiset(c)
        assert (ma + mb) + mc == ma + (mb + mc)

    @given(elements)
    def test_union_identity(self, a):
        assert Multiset(a) + EMPTY == Multiset(a)

    @given(elements, st.integers(min_value=0, max_value=5))
    def test_add_then_remove_roundtrip(self, a, x):
        m = Multiset(a)
        assert m.add(x).remove(x) == m

    @given(elements, elements)
    def test_union_then_difference_roundtrip(self, a, b):
        ma, mb = Multiset(a), Multiset(b)
        assert (ma + mb) - mb == ma

    @given(elements, elements)
    def test_includes_iff_difference_empty(self, a, b):
        ma, mb = Multiset(a), Multiset(b)
        assert ma.includes(mb) == (len(mb - ma) == 0)

    @given(elements)
    def test_hash_consistent_with_eq(self, a):
        assert hash(Multiset(a)) == hash(Multiset(list(reversed(a))))

    @given(elements, elements)
    def test_len_additive_under_union(self, a, b):
        assert len(Multiset(a) + Multiset(b)) == len(a) + len(b)
