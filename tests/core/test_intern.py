"""Unit tests for the store interner and the combine-memo lifecycle.

The regression this file guards: ``combine`` used to memoize through a
module-level ``functools.lru_cache``, which survived ``reset_process_cache``
— back-to-back ``verify()`` runs accumulated every (global, local) pair of
every prior run, unbounded.  The memo now lives on the interner and resets
with it.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.cache import reset_process_cache
from repro.core.store import (
    Store,
    StoreInterner,
    combine,
    intern_epoch,
    interning_active,
    interning_disabled,
    memo_key,
    reset_store_interner,
    store_interner,
)


@pytest.fixture(autouse=True)
def _fresh_interner():
    reset_process_cache()
    yield
    reset_process_cache()


class TestStoreInterner:
    def test_equal_stores_share_one_id(self):
        itn = StoreInterner()
        a, b = Store({"x": 1, "y": 2}), Store({"y": 2, "x": 1})
        assert a == b
        assert itn.intern(a) == itn.intern(b)

    def test_distinct_stores_get_distinct_ids(self):
        itn = StoreInterner()
        assert itn.intern(Store({"x": 1})) != itn.intern(Store({"x": 2}))

    def test_ids_are_dense_and_resolvable(self):
        itn = StoreInterner()
        stores = [Store({"i": i}) for i in range(5)]
        ids = [itn.intern(s) for s in stores]
        assert ids == list(range(5))
        for s, idx in zip(stores, ids):
            assert itn.store_of(idx) == s

    def test_canonical_returns_the_first_interned_witness(self):
        itn = StoreInterner()
        first = Store({"x": 1})
        itn.intern(first)
        assert itn.canonical(Store({"x": 1})) is first

    def test_repeat_intern_hits_the_tag_fast_path(self):
        itn = StoreInterner()
        s = Store({"x": 1})
        idx = itn.intern(s)
        assert s._iid == (itn._epoch, idx)  # tagged on first sight
        assert itn.intern(s) == idx
        assert len(itn._ids) == 1  # the table saw it exactly once

    def test_combine_ids_matches_combine(self):
        itn = StoreInterner()
        g, l = Store({"g": 1}), Store({"l": 2})
        gid, lid = itn.intern(g), itn.intern(l)
        assert itn.combine_ids(gid, lid) == itn.combine(g, l)

    def test_combine_memo_returns_identical_object(self):
        itn = StoreInterner()
        g, l = Store({"g": 1}), Store({"l": 2})
        assert itn.combine(g, l) is itn.combine(Store({"g": 1}), Store({"l": 2}))

    def test_clear_moves_the_epoch_and_invalidates_tags(self):
        itn = StoreInterner()
        s = Store({"x": 1})
        first = itn.intern(s)
        itn.intern(Store({"y": 9}))
        itn.clear()
        assert len(itn) == 0
        # The stale tag on ``s`` must not alias into the new table.
        assert itn.intern(s) == 0
        assert itn.store_of(0) == s
        del first

    def test_interned_store_pickles_without_its_tag(self):
        itn = StoreInterner()
        s = Store({"x": 1})
        itn.intern(s)
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s
        # A fresh interner assigns the clone its own id — the pickled
        # payload must not smuggle the parent's tag across.
        other = StoreInterner()
        assert other.intern(clone) == 0


class TestModuleLifecycle:
    def test_epoch_token_changes_on_reset(self):
        before = intern_epoch()
        reset_store_interner()
        assert intern_epoch() is not before

    def test_memo_key_is_an_int_while_active(self):
        assert interning_active()
        assert isinstance(memo_key(Store({"x": 1})), int)

    def test_memo_key_is_the_store_while_disabled(self):
        s = Store({"x": 1})
        with interning_disabled():
            assert not interning_active()
            assert memo_key(s) is s
        assert interning_active()

    def test_interning_disabled_nests(self):
        with interning_disabled():
            with interning_disabled():
                assert not interning_active()
            assert not interning_active()
        assert interning_active()

    def test_combine_is_memoized_through_the_interner(self):
        g, l = Store({"g": 1}), Store({"l": 2})
        assert combine(g, l) is combine(g, l)
        assert store_interner().combined_entries >= 1

    def test_combine_cache_clear_resets_the_memo(self):
        combine(Store({"g": 1}), Store({"l": 2}))
        assert store_interner().combined_entries >= 1
        combine.cache_clear()
        assert store_interner().combined_entries == 0


class TestNoResidueAcrossVerifyRuns:
    def test_back_to_back_verify_runs_do_not_accumulate(self):
        """The lru_cache regression: a second ``verify()`` must start from
        a reset interner/memo, so its footprint equals the first run's."""
        from repro.protocols import pingpong

        report1 = pingpong.verify(rounds=1)
        stats1 = store_interner().stats()
        report2 = pingpong.verify(rounds=1)
        stats2 = store_interner().stats()
        assert report1.ok and report2.ok
        assert stats1["stores"] == stats2["stores"]
        assert stats1["combined"] == stats2["combined"]

    def test_reset_process_cache_clears_interner_state(self):
        combine(Store({"g": 1}), Store({"l": 2}))
        assert len(store_interner()) > 0
        reset_process_cache()
        assert len(store_interner()) == 0
        assert store_interner().combined_entries == 0
