"""Tests for symmetry specs and orbit canonicalization.

The property suite pins the three facts the quotient's soundness rests
on: canonicalization is *idempotent* (a representative is its own
representative), *orbit-invariant* (every element of an orbit maps to the
same representative), and *equality-preserving* (two stores canonicalize
equal iff they lie in the same orbit). The combinator tests pin the
rename algebra itself on every container shape the protocols use.
"""

from itertools import permutations

import pytest

from repro.core import Multiset, PendingAsync, Store, initial_config
from repro.core import symmetry as sym
from repro.core.hashing import structural_key
from repro.core.mapping import FrozenDict
from repro.core.semantics import Config


def _spec(n=3):
    """A small node-symmetric spec over the shapes protocols use."""
    node = sym.atom("node")
    return sym.SymmetrySpec(
        name=f"test-n{n}",
        sorts={"node": tuple(range(1, n + 1))},
        global_rules={
            "owner": node,
            "flags": sym.fmap(node, sym.ID),
            "members": sym.fset(node),
            "slot": sym.opt(node),
            "pair": sym.tup(sym.ID, node),
            "trail": sym.seq(node),
            "inbox": sym.bag(node),
        },
        local_rules={"Act": {"i": node}},
        ghost_var="ghost",
    )


def _perm_of(spec, mapping):
    """The group element realizing ``mapping`` on the node sort."""
    for perm in spec.group():
        if perm["node"] == mapping:
            return perm
    raise AssertionError(f"no group element for {mapping}")


# --------------------------------------------------------------------- #
# Combinators
# --------------------------------------------------------------------- #


def test_combinators_rename_every_shape():
    spec = _spec(3)
    perm = _perm_of(spec, {1: 2, 2: 3, 3: 1})
    assert sym.ID(perm, 41) == 41
    assert sym.atom("node")(perm, 1) == 2
    assert sym.atom("node")(perm, 99) == 99  # lenient out-of-domain
    assert sym.atom("ghost-sort")(perm, 1) == 1  # lenient unknown sort
    assert sym.opt(sym.atom("node"))(perm, None) is None
    assert sym.opt(sym.atom("node"))(perm, 3) == 1
    assert sym.tup(sym.ID, sym.atom("node"))(perm, ("k", 1)) == ("k", 2)
    assert sym.seq(sym.atom("node"))(perm, (1, 2, 1)) == (2, 3, 2)
    assert sym.fset(sym.atom("node"))(perm, frozenset({1, 3})) == frozenset(
        {2, 1}
    )
    renamed = sym.fmap(sym.atom("node"), sym.ID)(
        perm, FrozenDict({1: "a", 2: "b"})
    )
    assert renamed == FrozenDict({2: "a", 3: "b"})


def test_bag_accumulates_colliding_multiplicities():
    # A rename that merges two elements must add their counts, not
    # overwrite one with the other.
    collapse = sym.bag(lambda perm, v: "x")
    out = collapse({}, Multiset(["a", "b", "b"]))
    assert out == Multiset(["x", "x", "x"])


# --------------------------------------------------------------------- #
# SymmetrySpec
# --------------------------------------------------------------------- #


def test_group_order_and_identity_first():
    spec = _spec(3)
    group = spec.group()
    assert len(group) == spec.order() == 6
    identity = group[0]
    assert all(k == v for k, v in identity["node"].items())
    # Every element is a bijection on the domain.
    for perm in group:
        assert sorted(perm["node"].values()) == [1, 2, 3]


def test_product_group_over_two_sorts():
    spec = sym.SymmetrySpec(
        name="two-sorts",
        sorts={"node": (1, 2, 3), "value": ("a", "b")},
    )
    assert spec.order() == 12
    assert len(spec.group()) == 12


def test_token_is_deterministic_and_discriminating():
    assert _spec(3).token() == _spec(3).token()
    assert _spec(3).token() != _spec(2).token()


# --------------------------------------------------------------------- #
# Canonicalization properties
# --------------------------------------------------------------------- #


def _stores(n=3):
    """A spread of stores exercising every declared shape, including
    symmetric (fixed-point) and asymmetric ones."""
    mk = lambda owner, flags, members, slot: Store(
        {
            "owner": owner,
            "flags": FrozenDict(flags),
            "members": frozenset(members),
            "slot": slot,
            "pair": ("k", owner),
            "trail": (owner,),
            "inbox": Multiset(sorted(members)),
            "count": 7,
            "ghost": Multiset(
                [PendingAsync("Act", Store({"i": owner}))]
            ),
        }
    )
    out = []
    for owner in range(1, n + 1):
        out.append(mk(owner, {i: i == owner for i in range(1, n + 1)}, {owner}, None))
    out.append(mk(1, {i: True for i in range(1, n + 1)}, set(range(1, n + 1)), 2))
    out.append(mk(2, {i: False for i in range(1, n + 1)}, set(), None))
    return out


def test_canonical_is_idempotent():
    canon = sym.Canonicalizer(_spec(3))
    for store in _stores():
        rep = canon.store(store)
        assert canon.store(rep) == rep


def test_canonical_is_orbit_invariant():
    canon = sym.Canonicalizer(_spec(3))
    for store in _stores():
        rep = canon.store(store)
        for member in canon.orbit(store):
            assert canon.store(member) == rep


def test_canonical_preserves_store_equality():
    # Same orbit -> same representative; different orbit -> different.
    canon = sym.Canonicalizer(_spec(3))
    stores = _stores()
    for a in stores:
        orbit_a = set(canon.orbit(a))
        for b in stores:
            same_orbit = b in orbit_a
            assert (canon.store(a) == canon.store(b)) == same_orbit


def test_canonical_is_lexicographic_least():
    canon = sym.Canonicalizer(_spec(3))
    for store in _stores():
        rep = canon.store(store)
        keys = sorted(structural_key(m) for m in canon.orbit(store))
        assert structural_key(rep) == keys[0]


def test_symmetric_store_is_its_own_representative():
    canon = sym.Canonicalizer(_spec(3))
    fixed = Store(
        {
            "owner": 99,  # out of domain: untouched
            "flags": FrozenDict({1: True, 2: True, 3: True}),
            "members": frozenset({1, 2, 3}),
            "slot": None,
            "pair": ("k", 99),
            "trail": (),
            "inbox": Multiset([1, 2, 3]),
            "count": 0,
            "ghost": Multiset([]),
        }
    )
    assert canon.store(fixed) is fixed


def test_config_renamed_jointly_with_ghost_mirror():
    """The pending multiset and the ghost bag inside the global must be
    renamed by the *same* permutation, so admissibility filtering stays
    exact on the quotient."""
    canon = sym.Canonicalizer(_spec(3))
    for store in _stores():
        pending = store["ghost"]
        rep = canon.config(Config(store, pending))
        assert rep.glob["ghost"] == rep.pending


def test_config_canonical_idempotent_and_orbit_invariant():
    spec = _spec(3)
    canon = sym.Canonicalizer(spec)
    for store in _stores():
        config = Config(store, store["ghost"])
        rep = canon.config(config)
        assert canon.config(rep) == rep
        for pi in range(len(canon.perms)):
            member = Config(
                canon.rename_global(store, pi),
                canon.rename_pending(config.pending, pi),
            )
            assert canon.config(member) == rep


def test_local_orbit_closes_parameter_stores():
    canon = sym.Canonicalizer(_spec(3))
    orbit = canon.local_orbit("Act", Store({"i": 1}))
    assert sorted(s["i"] for s in orbit) == [1, 2, 3]
    # Actions without rules have singleton orbits.
    assert canon.local_orbit("Other", Store({"i": 1})) == [Store({"i": 1})]


def test_rename_is_group_action_on_stores():
    """Renaming by pi then sigma equals renaming by the composite — spot
    check on all pairs for one store (the memo key is (pi, var, value),
    so each pair exercises the rename algebra, not the cache)."""
    spec = _spec(3)
    canon = sym.Canonicalizer(spec)
    store = _stores()[0]
    perms = canon.perms
    for i, pi in enumerate(perms):
        for j, sigma in enumerate(perms):
            composite = {
                "node": {k: sigma["node"][v] for k, v in pi["node"].items()}
            }
            k = next(
                idx
                for idx, p in enumerate(perms)
                if p["node"] == composite["node"]
            )
            assert canon.rename_global(
                canon.rename_global(store, i), j
            ) == canon.rename_global(store, k)


# --------------------------------------------------------------------- #
# Quotiented universes
# --------------------------------------------------------------------- #


def test_quotiented_universe_folds_orbits_and_closes_locals():
    from repro.core.universe import StoreUniverse

    spec = _spec(3)
    canon = sym.Canonicalizer(spec)
    stores = _stores()
    universe = StoreUniverse(stores, {"Act": [Store({"i": 1})]})
    quotient = universe.quotiented(spec)
    assert quotient.symmetry is spec
    # Every original store's representative is present, nothing else.
    assert set(quotient.globals_) == {canon.store(s) for s in stores}
    # The locals pool is closed under the group: a canonical global may
    # pair with any orbit member of a harvested local.
    assert sorted(s["i"] for s in quotient.locals_for("Act")) == [1, 2, 3]
    # Quotienting is idempotent at the universe level.
    assert quotient.quotiented(spec) is quotient


def test_quotiented_universe_deterministic_order():
    from repro.core.universe import StoreUniverse

    spec = _spec(3)
    stores = _stores()
    u1 = StoreUniverse(stores, {"Act": [Store({"i": 2})]}).quotiented(spec)
    u2 = StoreUniverse(stores[::-1], {"Act": [Store({"i": 3})]}).quotiented(
        spec
    )
    assert u1.globals_ == u2.globals_
    assert u1.locals_for("Act") == u2.locals_for("Act")


def test_from_reachable_quotient_matches_post_hoc_quotient():
    """Quotienting *during* BFS (folding successors to representatives)
    must harvest exactly the representatives of the unquotiented
    universe's stores — equivariance makes the two commute."""
    from repro.core.universe import StoreUniverse
    from repro.protocols import twophase

    apps = twophase.make_sequentializations(2)
    program = apps[0][1].program
    init = initial_config(twophase.initial_global(2))
    spec = twophase.make_symmetry(2)
    canon = sym.Canonicalizer(spec)

    plain = StoreUniverse.from_reachable(program, [init])
    quotient = StoreUniverse.from_reachable(program, [init], symmetry=spec)
    assert set(quotient.globals_) == {canon.store(g) for g in plain.globals_}
    assert len(quotient.globals_) < len(plain.globals_)


def test_from_reachable_closes_locals_pools_under_group():
    """The quotient BFS fixes one permutation per configuration, so the
    raw locals harvest holds one orbit member per (config, PA) pair; the
    group closure must restore exactly the unquotiented pools — without
    it, a counterexample pairing a canonical global with a non-harvested
    orbit member would be silently skipped."""
    from repro.core.universe import StoreUniverse
    from repro.protocols import paxos

    app = paxos.make_sequentialization(1, 2)
    init = initial_config(paxos.initial_global(1, 2))
    spec = paxos.make_symmetry(1, 2)
    plain = StoreUniverse.from_reachable(app.program, [init])
    quotient = StoreUniverse.from_reachable(app.program, [init], symmetry=spec)
    for action, pool in plain.locals_by_action.items():
        assert set(quotient.locals_for(action)) == set(pool), action
