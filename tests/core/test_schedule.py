"""Tests for policy-driven sequentializations (repro.core.schedule)."""

import pytest

from repro.core import (
    Action,
    ISApplication,
    Multiset,
    Program,
    ScheduleError,
    Store,
    Transition,
    choice_from_policy,
    invariant_from_policy,
    pa,
    policy_by_key,
)
from repro.protocols import broadcast


def test_policy_by_key_picks_minimum():
    policy = policy_by_key(("B", "A"), lambda _g, p: (p.action, p.locals.get("i", 0)))
    pending = Multiset([pa("A", i=2), pa("A", i=1), pa("B", i=5)])
    assert policy(Store(), pending) == pa("A", i=1)


def test_policy_by_key_none_when_done():
    policy = policy_by_key(("A",), lambda _g, p: (0,))
    assert policy(Store(), Multiset([pa("Z")])) is None


def test_policy_key_may_read_state():
    policy = policy_by_key(
        ("A",), lambda g, p: (abs(p.locals["i"] - g["pivot"]),)
    )
    pending = Multiset([pa("A", i=1), pa("A", i=4)])
    assert policy(Store({"pivot": 5}), pending) == pa("A", i=4)


def test_invariant_from_policy_base_case_included():
    """The policy invariant must contain M's own transitions (I1 holds by
    construction)."""
    n = 2
    program = broadcast.make_atomic(n)
    policy = broadcast_policy(n)
    invariant = invariant_from_policy(program, "Main", policy)
    sigma = broadcast.initial_global(n)
    main_outcomes = set(program["Main"].outcomes(sigma))
    inv_outcomes = set(invariant.outcomes(sigma))
    assert main_outcomes <= inv_outcomes
    assert len(inv_outcomes) > len(main_outcomes)  # plus proper prefixes


def broadcast_policy(n):
    return policy_by_key(
        ("Broadcast", "Collect"),
        lambda _g, p: (0 if p.action == "Broadcast" else 1, p.locals["i"]),
    )


def test_invariant_from_policy_complete_prefix_has_no_pas():
    n = 2
    program = broadcast.make_atomic(n)
    invariant = invariant_from_policy(program, "Main", broadcast_policy(n))
    sigma = broadcast.initial_global(n)
    complete = [t for t in invariant.outcomes(sigma) if len(t.created) == 0]
    assert complete, "the schedule must run to completion"
    for t in complete:
        decision = t.new_global["decision"]
        assert len({decision[i] for i in range(1, n + 1)}) == 1


def test_policy_derived_is_application_passes():
    n = 2
    program = broadcast.make_atomic(n)
    policy = broadcast_policy(n)
    application = ISApplication(
        program=program,
        m_name="Main",
        eliminated=("Broadcast", "Collect"),
        invariant=invariant_from_policy(program, "Main", policy),
        measure=broadcast.make_measure(),
        choice=choice_from_policy(policy),
        abstractions={"Collect": broadcast.make_collect_abs(n)},
    )
    universe = broadcast.make_universe(program, n)
    assert application.check(universe).holds


def test_policy_and_handwritten_invariants_agree():
    """Ablation: the hand-written Inv of Figure 1-⑤ and the policy-derived
    invariant describe the same prefixes."""
    n = 3
    program = broadcast.make_atomic(n)
    sigma = broadcast.initial_global(n)
    hand = set(broadcast.make_invariant(n).outcomes(sigma))
    derived = set(
        invariant_from_policy(program, "Main", broadcast_policy(n)).outcomes(sigma)
    )
    assert hand == derived


def test_choice_from_policy_raises_when_complete():
    policy = policy_by_key(("A",), lambda _g, p: (0,))
    choice = choice_from_policy(policy)
    with pytest.raises(ValueError):
        choice(Store(), Transition(Store(), Multiset()))


def test_schedule_error_on_bogus_policy():
    """A policy selecting a non-pending PA is reported, not silently run."""
    n = 2
    program = broadcast.make_atomic(n)

    def bogus(_g, _pending):
        return pa("Broadcast", i=99)

    invariant = invariant_from_policy(program, "Main", bogus)
    with pytest.raises(ScheduleError):
        list(invariant.transitions(broadcast.initial_global(n)))


def test_diverging_policy_hits_prefix_budget():
    """A program whose schedule never terminates trips the budget."""

    def main(state):
        yield Transition(state.restrict(("x",)), Multiset([pa("Loop")]))

    def loop(state):
        yield Transition(state.restrict(("x",)), Multiset([pa("Loop")]))

    program = Program(
        {
            "Main": Action("Main", lambda _s: True, main),
            "Loop": Action("Loop", lambda _s: True, loop),
        },
        global_vars=("x",),
    )
    policy = policy_by_key(("Loop",), lambda _g, _p: (0,))
    # Identical (store, pending) prefixes collapse, so divergence requires
    # changing state; make the loop count up.
    def counting_loop(state):
        yield Transition(
            state.restrict(("x",)).set("x", state["x"] + 1), Multiset([pa("Loop")])
        )

    program = program.with_action(
        "Loop", Action("Loop", lambda _s: True, counting_loop, ())
    )
    invariant = invariant_from_policy(
        program, "Main", policy, max_prefixes=50
    )
    with pytest.raises(ScheduleError):
        list(invariant.transitions(Store({"x": 0})))
