"""Tests for well-founded lexicographic measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    Config,
    LexicographicMeasure,
    Multiset,
    Store,
    channel_size,
    global_counter,
    pa,
    pa_count,
    pa_potential,
    total_pa_count,
)


def _config(x=0, pending=(), chan=None):
    data = {"x": x}
    if chan is not None:
        data["ch"] = chan
    return Config(Store(data), Multiset(pending))


def test_total_pa_count():
    measure = LexicographicMeasure((total_pa_count(),))
    assert measure.decreases(_config(pending=[pa("A")]), _config())
    assert not measure.decreases(_config(), _config(pending=[pa("A")]))


def test_pa_count_by_action():
    component = pa_count("A")
    assert component(_config(pending=[pa("A"), pa("A"), pa("B")])) == 2


def test_pa_potential():
    component = pa_potential(lambda p: p.locals.get("w", 0))
    assert component(_config(pending=[pa("A", w=3), pa("B", w=2)])) == 5


def test_channel_size_plain():
    component = channel_size("ch")
    assert component(_config(chan=Multiset(["m", "m"]))) == 2


def test_channel_size_mapping():
    component = channel_size("ch")
    assert component(_config(chan={1: Multiset(["m"]), 2: Multiset()})) == 1


def test_channel_size_with_key():
    component = channel_size("ch", key=1)
    assert component(_config(chan={1: Multiset(["m", "m"]), 2: Multiset(["m"])})) == 2


def test_global_counter():
    component = global_counter("x", scale=3)
    assert component(_config(x=2)) == 6


def test_lexicographic_order():
    measure = LexicographicMeasure((pa_count("A"), pa_count("B")))
    high = _config(pending=[pa("A")])
    low = _config(pending=[pa("B"), pa("B"), pa("B")])
    assert measure.decreases(high, low)  # first component dominates


def test_negative_component_rejected():
    measure = LexicographicMeasure((global_counter("x"),))
    with pytest.raises(ValueError):
        measure.key(_config(x=-1))


@given(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5), st.integers(0, 5))
def test_decreases_is_strict_total_order_on_keys(a1, a2, b1, b2):
    measure = LexicographicMeasure((pa_count("A"), pa_count("B")))
    c1 = _config(pending=[pa("A")] * a1 + [pa("B")] * b1)
    c2 = _config(pending=[pa("A")] * a2 + [pa("B")] * b2)
    d12 = measure.decreases(c1, c2)
    d21 = measure.decreases(c2, c1)
    assert not (d12 and d21)
    if (a1, b1) != (a2, b2):
        assert d12 or d21
