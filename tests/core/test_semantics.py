"""Tests for the operational semantics (configurations, steps, executions)."""

import pytest

from repro.core import (
    Config,
    Execution,
    FAILURE,
    Failure,
    Multiset,
    Step,
    Store,
    initial_config,
    pa,
    steps_from,
)
from repro.core.semantics import step_successors

from ..conftest import make_assert_program, make_counter_program


def test_initial_config_shape():
    config = initial_config(Store({"x": 0}))
    assert config.glob["x"] == 0
    assert list(config.pending) == [pa("Main")]
    assert not config.terminated


def test_failure_singleton():
    assert Failure() is FAILURE
    assert repr(FAILURE) == "FAILURE"


def test_steps_from_counter():
    program = make_counter_program(increments=2)
    config = initial_config(Store({"x": 0}))
    steps = list(steps_from(program, config))
    assert len(steps) == 1  # only Main pending
    target = steps[0].target
    assert isinstance(target, Config)
    assert len(target.pending) == 2


def test_steps_interleave_all_pending():
    program = make_counter_program(increments=2)
    config = initial_config(Store({"x": 0}))
    [first] = list(steps_from(program, config))
    mid = first.target
    steps = list(steps_from(program, mid))
    assert len(steps) == 2  # either Inc may go first
    assert all(step.target.glob["x"] == 1 for step in steps)


def test_gate_failure_step():
    program = make_assert_program(threshold=0)  # x < 0 fails at x = 0
    config = initial_config(Store({"x": 0}))
    [spawn] = list(steps_from(program, config))
    [failing] = list(steps_from(program, spawn.target))
    assert failing.failing
    assert failing.target is FAILURE


def test_blocking_action_contributes_no_steps():
    from repro.core import Action, Program, Transition

    def main(state):
        yield Transition(state.restrict(["x"]), Multiset([pa("Blocked")]))

    program = Program(
        {
            "Main": Action("Main", lambda _s: True, main),
            "Blocked": Action("Blocked", lambda _s: True, lambda _s: iter(())),
        },
        global_vars=("x",),
    )
    config = initial_config(Store({"x": 0}))
    [spawn] = list(steps_from(program, config))
    assert list(steps_from(program, spawn.target)) == []


def test_step_successors_dedup():
    program = make_counter_program(increments=2)
    config = initial_config(Store({"x": 0}))
    [first] = list(steps_from(program, config))
    succs = step_successors(program, first.target)
    assert len(succs) == 2  # distinct remaining-PA multisets


class TestExecutionValidate:
    def _run_to_end(self, program, config):
        steps = []
        current = config
        while not current.terminated:
            step = next(iter(steps_from(program, current)))
            steps.append(step)
            current = step.target
        return Execution(config, steps)

    def test_valid_execution(self):
        program = make_counter_program(increments=2)
        init = initial_config(Store({"x": 0}))
        execution = self._run_to_end(program, init)
        execution.validate(program)
        assert execution.terminating
        assert execution.initialized
        assert not execution.failing
        assert execution.final.glob["x"] == 2

    def test_config_at(self):
        program = make_counter_program(increments=1)
        init = initial_config(Store({"x": 0}))
        execution = self._run_to_end(program, init)
        assert execution.config_at(0) is init
        assert execution.config_at(len(execution)) == execution.final

    def test_validate_rejects_wrong_pa(self):
        program = make_counter_program(increments=1)
        init = initial_config(Store({"x": 0}))
        execution = self._run_to_end(program, init)
        bogus = Execution(
            init, [Step(pa("Inc", i=0), execution.steps[0].transition, execution.steps[0].target)]
        )
        with pytest.raises(ValueError):
            bogus.validate(program)

    def test_validate_rejects_wrong_target(self):
        program = make_counter_program(increments=1)
        init = initial_config(Store({"x": 0}))
        execution = self._run_to_end(program, init)
        first = execution.steps[0]
        tampered = Step(first.executed, first.transition, Config(Store({"x": 99}), first.target.pending))
        with pytest.raises(ValueError):
            Execution(init, [tampered] + execution.steps[1:]).validate(program)

    def test_repr_mentions_classification(self):
        program = make_counter_program(increments=1)
        init = initial_config(Store({"x": 0}))
        execution = self._run_to_end(program, init)
        assert "terminating" in repr(execution)
