"""Tests for gated atomic actions and pending asyncs."""

from repro.core import (
    Action,
    EMPTY,
    Multiset,
    PendingAsync,
    Store,
    Transition,
    assert_action,
    havoc_action,
    pa,
    pas,
    skip_action,
    transition,
)


def test_pa_constructor():
    pending = pa("Broadcast", i=3)
    assert pending.action == "Broadcast"
    assert pending.locals["i"] == 3
    assert "Broadcast" in repr(pending)


def test_pa_no_params_repr():
    assert repr(pa("Main")) == "Main()"


def test_pas_builds_multiset():
    bag = pas(pa("A", i=1), pa("A", i=1), pa("B"))
    assert bag.count(pa("A", i=1)) == 2
    assert len(bag) == 3


def test_transition_helper():
    t = transition(Store({"x": 1}), pa("A"))
    assert t.new_global["x"] == 1
    assert t.created == Multiset([pa("A")])


def test_transition_default_empty():
    assert Transition(Store()).created == EMPTY


def test_action_enabled_requires_gate_and_transition():
    blocked = Action("B", lambda _s: True, lambda _s: iter(()))
    assert not blocked.enabled(Store())
    gated = Action("G", lambda _s: False, lambda s: iter([Transition(Store())]))
    assert not gated.enabled(Store())
    live = Action("L", lambda _s: True, lambda s: iter([Transition(Store())]))
    assert live.enabled(Store())


def test_outcomes_lists_transitions():
    action = havoc_action("H", lambda s: [Store({"x": 0}), Store({"x": 1})])
    outs = action.outcomes(Store())
    assert len(outs) == 2
    assert {t.new_global["x"] for t in outs} == {0, 1}


def test_assert_action_gate():
    action = assert_action("A", lambda s: s["x"] > 0, lambda s: s.restrict(["x"]))
    assert action.gate(Store({"x": 1}))
    assert not action.gate(Store({"x": 0}))
    [t] = action.outcomes(Store({"x": 5}))
    assert t.new_global == Store({"x": 5})


def test_skip_action_noop():
    action = skip_action("S", lambda s: s.restrict(["x"]))
    assert action.gate(Store({"x": 0}))
    [t] = action.outcomes(Store({"x": 0, "l": 9}))
    assert t.new_global == Store({"x": 0})
    assert t.created == EMPTY


def test_pending_async_hashable_and_eq():
    assert pa("A", i=1) == pa("A", i=1)
    assert pa("A", i=1) != pa("A", i=2)
    assert len({pa("A", i=1), pa("A", i=1)}) == 1
