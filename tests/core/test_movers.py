"""Tests for mover types and commutativity checking.

The key semantic facts from Section 2.1 are established here on minimal
actions: over bag channels, *send is a left mover but not a right mover*,
*receive is a right mover and not a left mover* (it blocks), and disjoint
accesses are both movers.
"""

from repro.core import (
    Action,
    Multiset,
    MoverOracle,
    MoverType,
    Program,
    Store,
    StoreUniverse,
    Transition,
    infer_mover_type,
    is_left_mover,
    is_left_mover_wrt_program,
    is_right_mover,
    left_mover_conditions,
)

GLOBALS = ("ch", "y")


def _send(value="m"):
    def transitions(state):
        yield Transition(
            state.restrict(GLOBALS).set("ch", state["ch"].add(value))
        )

    return Action("Send", lambda _s: True, transitions)


def _receive():
    def transitions(state):
        for message in state["ch"].support():
            yield Transition(
                state.restrict(GLOBALS)
                .set("ch", state["ch"].remove(message))
                .set("y", message)
            )

    return Action("Receive", lambda _s: True, transitions)


def _universe():
    channels = [Multiset(), Multiset(["m"]), Multiset(["m", "o"]), Multiset(["o"])]
    return StoreUniverse(
        [Store({"ch": ch, "y": y}) for ch in channels for y in (None, "m")]
    )


def test_send_is_left_mover_wrt_receive():
    assert is_left_mover(_send(), _receive(), _universe()).holds


def test_send_is_not_right_mover_wrt_receive():
    # send;receive may deliver the fresh message, which receive;send cannot.
    result = is_right_mover(_send(), _receive(), _universe())
    assert not result.holds


def test_receive_is_right_mover_wrt_send():
    assert is_right_mover(_receive(), _send(), _universe()).holds


def test_receive_is_not_left_mover_blocking():
    conditions = left_mover_conditions(_receive(), _send(), _universe())
    assert not conditions["non_blocking"].holds  # blocks on the empty bag
    assert conditions["commutation"].holds is False or True  # see below


def test_receive_commutation_fails_against_send():
    # receive after send can take the fresh message: not left-commutable.
    conditions = left_mover_conditions(_receive(), _send(), _universe())
    assert not conditions["commutation"].holds


def test_sends_commute_with_each_other():
    assert is_left_mover(_send("a"), _send("b"), _universe()).holds
    assert is_right_mover(_send("a"), _send("b"), _universe()).holds


def test_gate_forward_preservation_violation():
    # An action whose gate requires an empty channel is not forward
    # preserved by a send.
    def noop(state):
        yield Transition(state.restrict(GLOBALS))

    fragile = Action("Fragile", lambda s: len(s["ch"]) == 0, noop)
    conditions = left_mover_conditions(fragile, _send(), _universe())
    assert not conditions["forward_preservation"].holds


def test_gate_backward_preservation_violation():
    # Send introduces the gate "channel nonempty" of another action.
    def noop(state):
        yield Transition(state.restrict(GLOBALS))

    needs_msg = Action("NeedsMsg", lambda s: len(s["ch"]) > 0, noop)
    conditions = left_mover_conditions(_send(), needs_msg, _universe())
    assert not conditions["backward_preservation"].holds


def _program():
    return Program(
        {"Main": _send(), "Send": _send(), "Receive": _receive()},
        global_vars=GLOBALS,
        require_main=False,
    )


def test_left_mover_wrt_program():
    program = _program()
    assert is_left_mover_wrt_program(_send(), program, _universe()).holds
    assert not is_left_mover_wrt_program(_receive(), program, _universe()).holds


def test_left_mover_wrt_program_skip():
    program = _program()
    # Receive blocks regardless, but skipping Send removes the commutation
    # failure — only non-blocking remains violated.
    result = is_left_mover_wrt_program(
        _receive(), program, _universe(), skip=("Send", "Main")
    )
    assert not result.holds
    assert all("non-blocking" in d or "blocks" in d for d, _w in result.counterexamples)


def test_infer_mover_types():
    program = _program()
    universe = _universe()
    assert infer_mover_type(_send(), program, universe) is MoverType.LEFT
    assert infer_mover_type(_receive(), program, universe) is MoverType.RIGHT


def test_infer_both_mover():
    def local_write(state):
        yield Transition(state.restrict(GLOBALS).set("y", 0))

    action = Action("W", lambda _s: True, local_write)
    program = Program({"W": action}, global_vars=GLOBALS, require_main=False)
    universe = StoreUniverse([Store({"ch": Multiset(), "y": 1})])
    assert infer_mover_type(action, program, universe) is MoverType.BOTH


def test_oracle_caches_and_matches_direct_checks():
    program = _program()
    universe = _universe()
    oracle = MoverOracle(program, universe)
    assert oracle.left("Send", "Receive")
    assert oracle.left("Send", "Receive")  # cached path
    assert not oracle.right("Send", "Receive")
    assert oracle.mover_type("Send") is MoverType.LEFT
    assert oracle.mover_type("Receive") is MoverType.RIGHT
