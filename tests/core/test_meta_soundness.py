"""Meta-soundness of the IS checker (Theorem 4.4, property-tested).

For a space of *artifact variants* — correct ones and deliberately
corrupted ones (wrong abstraction gates, reversed choice priority, wrong
invariants, degenerate measures) — and randomized instances, the checker
must be **sound**: whenever ``check()`` passes, the exhaustive refinement
oracle passes too. Corrupted variants may fail the checker (most do; IS is
incomplete by design), but no variant may slip through.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Action,
    EMPTY_STORE,
    ISApplication,
    LexicographicMeasure,
    check_program_refinement,
    choice_by_priority,
)
from repro.protocols import broadcast


def _variant(name: str, n: int) -> ISApplication:
    base = broadcast.make_sequentialization(n)
    if name == "correct":
        return base
    if name == "identity-abstraction":
        return ISApplication(
            base.program, base.m_name, base.eliminated,
            invariant=base.invariant, measure=base.measure, abstractions={},
        )
    if name == "weak-gate":
        collect = base.program["Collect"]
        weak = Action(
            "CollectWeak",
            lambda s: len(s["CH"][s["i"]]) >= n - 1,
            collect.transitions,
            ("i",),
        )
        return ISApplication(
            base.program, base.m_name, base.eliminated,
            invariant=base.invariant, measure=base.measure,
            abstractions={"Collect": weak},
        )
    if name == "reversed-choice":
        return ISApplication(
            base.program, base.m_name, base.eliminated,
            invariant=base.invariant, measure=base.measure,
            abstractions=dict(base.abstractions),
            choice=choice_by_priority(("Collect", "Broadcast")),
        )
    if name == "wrong-invariant":
        return ISApplication(
            base.program, base.m_name, base.eliminated,
            invariant=broadcast.make_broadcast_invariant(n),
            measure=base.measure, abstractions=dict(base.abstractions),
        )
    if name == "degenerate-measure":
        return ISApplication(
            base.program, base.m_name, base.eliminated,
            invariant=base.invariant,
            measure=LexicographicMeasure((), name="constant"),
            abstractions=dict(base.abstractions),
        )
    raise ValueError(name)


VARIANTS = (
    "correct",
    "identity-abstraction",
    "weak-gate",
    "reversed-choice",
    "wrong-invariant",
    "degenerate-measure",
)


@given(
    st.sampled_from(VARIANTS),
    st.integers(min_value=2, max_value=3),
    st.lists(st.integers(-3, 3), min_size=3, max_size=3),
)
@settings(max_examples=20, deadline=None)
def test_checker_pass_implies_oracle_pass(variant_name, n, raw_values):
    values = tuple(raw_values[:n])
    application = _variant(variant_name, n)
    universe = broadcast.make_universe(application.program, n, values)
    verdict = application.check(universe)
    if verdict.holds:
        oracle = check_program_refinement(
            application.program,
            application.apply(),
            [(broadcast.initial_global(n, values), EMPTY_STORE)],
        )
        assert oracle.holds, (
            f"UNSOUND: checker passed variant {variant_name!r} at n={n}, "
            f"values={values} but the refinement oracle fails"
        )


@pytest.mark.parametrize("variant_name", VARIANTS[1:])
def test_corrupted_variants_are_rejected(variant_name):
    """All corruptions above actually trip the checker at n=3 (so the
    soundness property above is not vacuous)."""
    application = _variant(variant_name, 3)
    universe = broadcast.make_universe(application.program, 3)
    assert not application.check(universe).holds


def test_correct_variant_accepted():
    application = _variant("correct", 3)
    universe = broadcast.make_universe(application.program, 3)
    assert application.check(universe).holds
