"""Regression tests for the single ``combine`` definition.

``combine`` (the paper's g·l store combination) used to be defined twice —
once in ``store`` and once, divergently copy-paste-able, in ``movers``.
There is now one authoritative, memoized definition in ``repro.core.store``
that ``repro.core.movers`` imports; these tests pin that down and fix the
shadowing semantics on overlapping keys.
"""

from __future__ import annotations

from repro.core import movers, store
from repro.core.store import Store


def test_movers_reexports_the_store_definition():
    assert movers.combine is store.combine


def test_local_shadows_global_on_overlapping_keys():
    g = Store({"shared": 1, "g_only": 10})
    l = Store({"shared": 2, "l_only": 20})
    combined = store.combine(g, l)
    assert combined["shared"] == 2  # local wins
    assert combined["g_only"] == 10
    assert combined["l_only"] == 20
    # Both import sites agree on the (memoized) result.
    assert movers.combine(g, l) == combined


def test_combine_memoization_is_observation_free():
    g = Store({"a": 1})
    l = Store({"b": 2})
    first = store.combine(g, l)
    assert store.combine(g, l) == first
    assert store.combine(g, l) == g.merge(l)
