"""Tests for FrozenDict."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import FrozenDict

data_strategy = st.dictionaries(st.integers(0, 5), st.integers(-3, 3), max_size=5)


def test_get_set_immutability():
    d = FrozenDict({1: "a"})
    d2 = d.set(2, "b")
    assert d2[2] == "b"
    assert 2 not in d


def test_update():
    d = FrozenDict({1: "a"}).update({1: "z", 2: "b"})
    assert d[1] == "z" and d[2] == "b"


def test_get_default():
    assert FrozenDict().get(7, "dflt") == "dflt"


def test_missing_raises():
    with pytest.raises(KeyError):
        FrozenDict()[0]


def test_views():
    d = FrozenDict({1: "a", 2: "b"})
    assert sorted(d.keys()) == [1, 2]
    assert sorted(d.values()) == ["a", "b"]
    assert dict(d.items()) == {1: "a", 2: "b"}
    assert len(d) == 2
    assert set(iter(d)) == {1, 2}


def test_as_dict_copy():
    d = FrozenDict({1: "a"})
    mutable = d.as_dict()
    mutable[1] = "z"
    assert d[1] == "a"


def test_usable_as_dict_key():
    table = {FrozenDict({1: "a"}): "found"}
    assert table[FrozenDict({1: "a"})] == "found"


def test_eq_other_type():
    assert FrozenDict() != {1: 2}


@given(data_strategy)
def test_hash_eq_consistency(data):
    assert hash(FrozenDict(data)) == hash(FrozenDict(dict(data)))


@given(data_strategy, st.integers(0, 5), st.integers(-3, 3))
def test_set_then_get(data, key, value):
    assert FrozenDict(data).set(key, value)[key] == value
