"""Tests for action and program refinement (Definitions 3.1/3.2)."""

from repro.core import (
    Action,
    EMPTY_STORE,
    Store,
    StoreUniverse,
    Transition,
    check_action_refinement,
    check_program_refinement,
)

from ..conftest import make_assert_program, make_counter_program


def _inc_action(name="Inc", by=1, gate=lambda _s: True):
    def transitions(state):
        yield Transition(Store({"x": state["x"] + by}))

    return Action(name, gate, transitions)


def _universe(values=range(-2, 3)):
    return StoreUniverse([Store({"x": v}) for v in values])


class TestActionRefinement:
    def test_reflexive(self):
        inc = _inc_action()
        assert check_action_refinement(inc, inc, _universe()).holds

    def test_abstraction_may_fail_more(self):
        concrete = _inc_action()
        abstract = _inc_action(name="IncAbs", gate=lambda s: s["x"] >= 0)
        # Abstraction's gate is smaller: fails more often -> still refines.
        assert check_action_refinement(concrete, abstract, _universe()).holds

    def test_abstraction_may_allow_more_transitions(self):
        concrete = _inc_action()

        def nondet(state):
            yield Transition(Store({"x": state["x"] + 1}))
            yield Transition(Store({"x": state["x"] + 2}))

        abstract = Action("IncAbs", lambda _s: True, nondet)
        assert check_action_refinement(concrete, abstract, _universe()).holds

    def test_missing_transition_fails(self):
        concrete = _inc_action(by=2)
        abstract = _inc_action(name="Wrong", by=1)
        result = check_action_refinement(concrete, abstract, _universe())
        assert not result.holds
        assert result.counterexamples

    def test_gate_weaker_in_abstraction_fails(self):
        concrete = _inc_action(gate=lambda s: s["x"] >= 0)
        abstract = _inc_action(name="TooStrongGate")  # gate true everywhere
        result = check_action_refinement(concrete, abstract, _universe())
        assert not result.holds  # abstract gate holds where concrete fails

    def test_checkresult_repr(self):
        inc = _inc_action()
        result = check_action_refinement(inc, inc, _universe())
        assert "PASS" in repr(result)
        assert bool(result)


class TestProgramRefinement:
    def test_counter_refines_itself(self):
        program = make_counter_program(increments=2)
        result = check_program_refinement(
            program, program, [(Store({"x": 0}), EMPTY_STORE)]
        )
        assert result.holds

    def test_abstract_with_fewer_behaviours_fails(self):
        concrete = make_counter_program(increments=2)
        abstract = make_counter_program(increments=3)  # final x differs
        result = check_program_refinement(
            concrete, abstract, [(Store({"x": 0}), EMPTY_STORE)]
        )
        assert not result.holds

    def test_failing_abstract_trivially_refined(self):
        concrete = make_counter_program(increments=1)
        abstract = make_assert_program(threshold=0)  # always fails at x>=0
        result = check_program_refinement(
            concrete, abstract, [(Store({"x": 0}), EMPTY_STORE)]
        )
        # Good(abstract) is empty at this initial store: nothing to check.
        assert result.holds

    def test_failure_preservation_direction(self):
        concrete = make_assert_program(threshold=0)  # concrete fails
        abstract = make_counter_program(increments=0)  # abstract never fails
        result = check_program_refinement(
            concrete, abstract, [(Store({"x": 0}), EMPTY_STORE)]
        )
        assert not result.holds
