"""Tests for store universes and PA contexts."""

from repro.core import (
    GhostContext,
    InstanceContext,
    Multiset,
    NoContext,
    PendingAsync,
    Store,
    StoreUniverse,
    initial_config,
    pa,
)

from repro.core.store import memo_key

from ..conftest import make_counter_program


def test_from_reachable_harvests_globals_and_locals():
    program = make_counter_program(increments=2)
    universe = StoreUniverse.from_reachable(
        program, [initial_config(Store({"x": 0}))]
    )
    assert {g["x"] for g in universe.globals_} == {0, 1, 2}
    assert len(universe.locals_for("Inc")) == 2  # i = 0, 1
    assert universe.locals_for("Unknown") == [Store()]


def test_combined_iterates_triples():
    universe = StoreUniverse(
        [Store({"x": 0})], {"A": [Store({"i": 1}), Store({"i": 2})]}
    )
    triples = list(universe.combined("A"))
    assert len(triples) == 2
    g, l, state = triples[0]
    assert state["x"] == 0 and state["i"] in (1, 2)


def test_extended_and_merge_dedupe():
    u1 = StoreUniverse([Store({"x": 0})], {"A": [Store({"i": 1})]})
    u2 = u1.extended([Store({"x": 0}), Store({"x": 5})], {"A": [Store({"i": 1})]})
    assert len(u2.globals_) == 2
    assert len(u2.locals_for("A")) == 1
    merged = u1.merge(u2)
    assert len(merged.globals_) == 2


def test_with_context_preserved_by_extended():
    universe = StoreUniverse([Store({"x": 0})]).with_context(GhostContext("g"))
    assert isinstance(universe.extended([Store({"x": 1})]).context, GhostContext)


def test_sampled_keeps_marked_globals():
    globals_ = [Store({"x": i}) for i in range(100)]
    universe = StoreUniverse(globals_)
    sampled = universe.sampled(10, keep=lambda g: g["x"] == 77)
    assert len(sampled.globals_) <= 12
    assert Store({"x": 77}) in sampled.globals_


def test_sampled_noop_under_limit():
    universe = StoreUniverse([Store({"x": 0})])
    assert universe.sampled(10) is universe


def test_from_random_walks():
    program = make_counter_program(increments=3)
    universe = StoreUniverse.from_random_walks(
        program, [initial_config(Store({"x": 0}))], walks=20, seed=1
    )
    assert {g["x"] for g in universe.globals_} == {0, 1, 2, 3}


class TestContexts:
    def test_no_context_allows_everything(self):
        context = NoContext()
        assert context.single(Store(), pa("A"))
        assert context.pair(Store(), pa("A"), pa("A"))

    def test_ghost_context_single(self):
        ghost = Multiset([pa("A", i=1)])
        context = GhostContext("pendingAsyncs")
        state = Store({"pendingAsyncs": ghost})
        assert context.single(state, pa("A", i=1))
        assert not context.single(state, pa("A", i=2))

    def test_ghost_context_pair_needs_multiplicity(self):
        context = GhostContext("pendingAsyncs")
        one = Store({"pendingAsyncs": Multiset([pa("A")])})
        two = Store({"pendingAsyncs": Multiset([pa("A"), pa("A")])})
        assert not context.pair(one, pa("A"), pa("A"))
        assert context.pair(two, pa("A"), pa("A"))

    def test_ghost_context_type_error(self):
        import pytest

        context = GhostContext("pendingAsyncs")
        with pytest.raises(TypeError):
            context.single(Store({"pendingAsyncs": 3}), pa("A"))

    def test_instance_context_same_instance_excluded(self):
        context = InstanceContext(lambda name: (name.split("#")[0], ("i",)))
        g = Store()
        assert not context.pair(g, pa("P#0", i=1), pa("P#4", i=1))
        assert context.pair(g, pa("P#0", i=1), pa("P#4", i=2))
        assert context.pair(g, pa("P#0", i=1), pa("Q#0", i=1))
        assert context.single(g, pa("P#0", i=1))

    def test_pair_cache_used_for_state_independent_contexts(self):
        context = InstanceContext(lambda name: (name, ()))
        universe = StoreUniverse([Store()], context=context)
        assert not universe.pair_ok(Store(), "A", Store(), "A", Store())
        # Memoized under the dense index of the context's cache_key class
        # (one class here — the context is state-independent); locals key
        # by intern id.
        key = (
            universe._ck_ids[context.cache_key(Store())],
            "A",
            memo_key(Store()),
            "A",
            memo_key(Store()),
        )
        assert key in universe._pair_cache
        assert universe.context_cache_stats.misses == 1
        assert not universe.pair_ok(Store(), "A", Store(), "A", Store())
        assert universe.context_cache_stats.hits == 1


class TestSampledProperties:
    """Property suite for the deterministic down-sampler: the result
    never exceeds the limit (when the keep-set fits), every kept global
    is retained, and the selection is a pure function of the *set* of
    globals — input order cannot leak through."""

    def _globals(self, n=97):
        return [Store({"x": i, "y": i % 5}) for i in range(n)]

    def test_size_never_exceeds_limit(self):
        globals_ = self._globals()
        for limit in (1, 2, 3, 7, 10, 31, 96, 97, 200):
            sampled = StoreUniverse(globals_).sampled(limit)
            assert len(sampled.globals_) <= limit
            assert len(sampled.globals_) >= min(limit, len(globals_))

    def test_size_with_keep_never_exceeds_limit(self):
        globals_ = self._globals()
        keep = lambda g: g["x"] % 10 == 0  # 10 marked globals
        for limit in (10, 11, 15, 50, 96):
            sampled = StoreUniverse(globals_).sampled(limit, keep=keep)
            assert len(sampled.globals_) <= limit
            assert all(g in sampled.globals_ for g in globals_ if keep(g))

    def test_oversized_keep_set_is_retained_verbatim(self):
        globals_ = self._globals()
        keep = lambda g: g["x"] < 20
        sampled = StoreUniverse(globals_).sampled(5, keep=keep)
        assert sorted(g["x"] for g in sampled.globals_) == list(range(20))

    def test_deterministic_under_shuffle(self):
        import random

        globals_ = self._globals()
        baseline = StoreUniverse(globals_).sampled(13).globals_
        for seed in range(5):
            shuffled = list(globals_)
            random.Random(seed).shuffle(shuffled)
            assert StoreUniverse(shuffled).sampled(13).globals_ == baseline

    def test_keep_deterministic_under_shuffle(self):
        import random

        globals_ = self._globals()
        keep = lambda g: g["y"] == 3
        baseline = StoreUniverse(globals_).sampled(17, keep=keep).globals_
        shuffled = list(globals_)
        random.Random(42).shuffle(shuffled)
        assert (
            StoreUniverse(shuffled).sampled(17, keep=keep).globals_
            == baseline
        )

    def test_propagates_locals_context_and_symmetry(self):
        from repro.protocols import twophase

        spec = twophase.make_symmetry(2)
        universe = StoreUniverse(
            self._globals(),
            {"A": [Store({"i": 1})]},
            symmetry=spec,
        ).with_context(GhostContext("g"))
        sampled = universe.sampled(9)
        assert sampled.locals_for("A") == [Store({"i": 1})]
        assert isinstance(sampled.context, GhostContext)
        assert sampled.symmetry is spec
