"""Tests for the IS proof rule itself, including the Section 4
cooperation counterexample showing why condition (CO) is necessary."""

import pytest

from repro.core import (
    Action,
    EMPTY_STORE,
    ISApplication,
    LexicographicMeasure,
    Multiset,
    Program,
    Store,
    StoreUniverse,
    Transition,
    check_program_refinement,
    choice_by_priority,
    derive_m_prime,
    pa,
    pas_to,
    total_pa_count,
)

GLOBALS = ("x",)


def _glob(state: Store) -> Store:
    return state.restrict(GLOBALS)


def test_pas_to_filters_by_action():
    created = Multiset([pa("A"), pa("B"), pa("A")])
    assert len(pas_to(created, ("A",))) == 2


def test_choice_by_priority_orders_actions_then_key():
    choice = choice_by_priority(("B", "A"))
    t = Transition(Store(), Multiset([pa("A", i=1), pa("B", i=2), pa("B", i=1)]))
    assert choice(Store(), t) == pa("B", i=1)


def test_choice_by_priority_requires_candidates():
    choice = choice_by_priority(("A",))
    with pytest.raises(ValueError):
        choice(Store(), Transition(Store(), Multiset([pa("Z")])))


def test_derive_m_prime_filters_pa_transitions():
    def transitions(_state):
        yield Transition(Store({"x": 1}), Multiset([pa("A")]))
        yield Transition(Store({"x": 2}))

    invariant = Action("Inv", lambda _s: True, transitions)
    m_prime = derive_m_prime(invariant, ("A",))
    outs = m_prime.outcomes(Store())
    assert len(outs) == 1
    assert outs[0].new_global["x"] == 2


class TestValidation:
    def _program(self):
        def main(state):
            yield Transition(_glob(state), Multiset([pa("A")]))

        def a(state):
            yield Transition(_glob(state))

        return Program(
            {
                "Main": Action("Main", lambda _s: True, main),
                "A": Action("A", lambda _s: True, a),
            },
            global_vars=GLOBALS,
        )

    def test_unknown_eliminated_action_rejected(self):
        program = self._program()
        with pytest.raises(ValueError):
            ISApplication(
                program,
                "Main",
                ("Nope",),
                program["Main"],
                LexicographicMeasure((total_pa_count(),)),
            )

    def test_unknown_m_rejected(self):
        program = self._program()
        with pytest.raises(ValueError):
            ISApplication(
                program,
                "Nope",
                ("A",),
                program["Main"],
                LexicographicMeasure((total_pa_count(),)),
            )

    def test_abstraction_outside_e_rejected(self):
        program = self._program()
        with pytest.raises(ValueError):
            ISApplication(
                program,
                "Main",
                ("A",),
                program["Main"],
                LexicographicMeasure((total_pa_count(),)),
                abstractions={"Main": program["Main"]},
            )


class TestCooperationCounterexample:
    """The Section 4 program showing (CO) is necessary, adapted to stay
    finite-state: ``Rec`` perpetually re-spawns itself (so no well-founded
    order can decrease), while a failing task sits alongside it.

    All conditions except cooperation hold, yet replacing ``Main`` would
    produce a program that cannot fail — unsound per Definition 3.2.
    """

    def _program(self):
        def main(state):
            yield Transition(_glob(state), Multiset([pa("Rec"), pa("Fail")]))

        def rec(state):
            yield Transition(_glob(state), Multiset([pa("Rec")]))

        def fail_transitions(state):
            yield Transition(_glob(state))

        return Program(
            {
                "Main": Action("Main", lambda _s: True, main),
                "Rec": Action("Rec", lambda _s: True, rec),
                "Fail": Action("Fail", lambda _s: False, fail_transitions),
            },
            global_vars=GLOBALS,
        )

    def _application(self):
        program = self._program()
        return ISApplication(
            program,
            "Main",
            ("Rec",),
            invariant=program["Main"],
            measure=LexicographicMeasure((total_pa_count(),)),
        )

    def _universe(self):
        return StoreUniverse(
            [Store({"x": 0})],
            {"Main": [EMPTY_STORE], "Rec": [EMPTY_STORE], "Fail": [EMPTY_STORE]},
        )

    def test_only_cooperation_fails(self):
        result = self._application().check(self._universe())
        assert not result.holds
        failed = {r.name for r in result.failed()}
        assert failed == {"CO: cooperation"}

    def test_applying_anyway_is_unsound(self):
        application = self._application()
        transformed = application.apply()
        # M' has an empty transition relation: the transformed program
        # silently loses the reachable failure.
        assert transformed["Main"].outcomes(Store({"x": 0})) == []
        oracle = check_program_refinement(
            application.program,
            transformed,
            [(Store({"x": 0}), EMPTY_STORE)],
            max_configs=100,
        )
        assert not oracle.holds

    def test_report_format(self):
        result = self._application().check(self._universe())
        text = result.report()
        assert "FAILED" in text
        assert "CO" in text


class TestBrokenArtifactsAreRejected:
    """Each IS condition must catch its own class of bad artifact on the
    broadcast consensus protocol."""

    def _base(self, n=2):
        from repro.protocols import broadcast

        app = broadcast.make_sequentialization(n)
        universe = broadcast.make_universe(app.program, n)
        return app, universe, broadcast

    def test_good_artifacts_pass(self):
        app, universe, _ = self._base()
        assert app.check(universe).holds

    def test_wrong_invariant_fails_i1_or_i3(self):
        app, universe, broadcast = self._base()
        # An invariant that only summarizes the complete execution cannot
        # simulate Main's own transition (base case broken).
        complete_only = derive_m_prime(app.invariant, app.eliminated, name="Bad")
        bad = ISApplication(
            app.program,
            app.m_name,
            app.eliminated,
            invariant=complete_only,
            measure=app.measure,
            abstractions=dict(app.abstractions),
        )
        result = bad.check(universe)
        assert not result.conditions["I1"].holds

    def test_missing_abstraction_fails_lm_and_co(self):
        app, universe, _ = self._base()
        bad = ISApplication(
            app.program,
            app.m_name,
            app.eliminated,
            invariant=app.invariant,
            measure=app.measure,
            abstractions={},
        )
        result = bad.check(universe)
        assert not result.conditions["LM[Collect]"].holds
        assert not result.conditions["CO"].holds

    def test_invalid_abstraction_fails_abs_check(self):
        app, universe, broadcast = self._base()
        # "Abstraction" that drops transitions: not a valid abstraction.
        collect = app.program["Collect"]
        crippled = Action(
            "CollectBad",
            lambda _s: True,
            lambda _s: iter(()),
            collect.params,
        )
        bad = ISApplication(
            app.program,
            app.m_name,
            app.eliminated,
            invariant=app.invariant,
            measure=app.measure,
            abstractions={"Collect": crippled},
        )
        result = bad.check(universe)
        assert not result.conditions["abs[Collect]"].holds

    def test_bad_choice_function_detected(self):
        app, universe, _ = self._base()
        bad = ISApplication(
            app.program,
            app.m_name,
            app.eliminated,
            invariant=app.invariant,
            measure=app.measure,
            abstractions=dict(app.abstractions),
            choice=lambda _s, _t: pa("Collect", i=999),  # never pending
        )
        result = bad.check(universe)
        assert not result.conditions["I3"].holds

    def test_wrong_m_prime_fails_i2(self):
        app, universe, _ = self._base()

        def never(_state):
            return iter(())

        bad = ISApplication(
            app.program,
            app.m_name,
            app.eliminated,
            invariant=app.invariant,
            measure=app.measure,
            abstractions=dict(app.abstractions),
            m_prime=Action("M'", lambda _s: True, never),
        )
        result = bad.check(universe)
        assert not result.conditions["I2"].holds
