"""Tests for the Program container."""

import pytest

from repro.core import Action, Program, Store, Transition, pa


def _noop(name="A", params=()):
    return Action(name, lambda _s: True, lambda s: iter([Transition(Store())]), params)


def test_main_required():
    with pytest.raises(ValueError):
        Program({"NotMain": _noop()})


def test_main_requirement_can_be_waived():
    program = Program({"A": _noop()}, require_main=False)
    assert "A" in program


def test_lookup_by_pending_async():
    action = _noop("Work", ("i",))
    program = Program({"Main": _noop("Main"), "Work": action})
    assert program.lookup(pa("Work", i=1)) is action


def test_with_action_substitution():
    program = Program({"Main": _noop("Main")})
    replacement = _noop("Main2")
    updated = program.with_action("Main", replacement)
    assert updated["Main"] is replacement
    assert program["Main"] is not replacement  # persistence


def test_without_actions():
    program = Program({"Main": _noop("Main"), "A": _noop("A")})
    trimmed = program.without_actions(["A"])
    assert "A" not in trimmed
    assert "Main" in trimmed


def test_globals_projection():
    program = Program({"Main": _noop()}, global_vars=("x",))
    combined = Store({"x": 1, "local": 2})
    assert dict(program.globals_of(combined).items()) == {"x": 1}


def test_iteration_and_len():
    program = Program({"Main": _noop("Main"), "A": _noop("A")})
    assert len(program) == 2
    assert set(program.action_names()) == {"Main", "A"}
    assert dict(program.actions())["A"].name == "A"


def test_repr_lists_names():
    program = Program({"Main": _noop()}, global_vars=("x",))
    assert "Main" in repr(program) and "x" in repr(program)
