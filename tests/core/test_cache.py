"""The shared evaluation cache: correctness, counters, process isolation.

Memoizing ``action.gate``/``action.transitions`` must be invisible to the
checker — cached and uncached discharge produce byte-identical condition
maps on every Table 1 protocol. The hit/miss counters backing the
benchmark report must be exposed and monotone, and process-pool workers
must each rebuild a private cache (the singleton is keyed by PID) instead
of sharing the parent's.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core import Action, initial_config
from repro.core.cache import (
    CacheStats,
    active_cache,
    caching_disabled,
    process_cache,
    reset_process_cache,
)
from repro.core.context import GhostContext
from repro.core.universe import StoreUniverse
from repro.engine.obligations import build_obligations
from repro.engine.scheduler import (
    ProcessPoolScheduler,
    SerialScheduler,
    _fork_available,
)
from repro.protocols import (
    broadcast,
    changroberts,
    nbuyer,
    paxos,
    pingpong,
    prodcons,
    twophase,
)
from repro.protocols.common import GHOST


def _first_app(pairs):
    return pairs[0][1]


PROTOCOL_CASES = {
    "broadcast": lambda: (
        broadcast.make_sequentialization(2),
        broadcast.initial_global(2),
    ),
    "pingpong": lambda: (
        pingpong.make_sequentialization(2),
        pingpong.initial_global(2),
    ),
    "prodcons": lambda: (
        prodcons.make_sequentialization(3),
        prodcons.initial_global(3),
    ),
    "nbuyer": lambda: (
        _first_app(nbuyer.make_sequentializations(2)),
        nbuyer.initial_global(2),
    ),
    "changroberts": lambda: (
        _first_app(changroberts.make_sequentializations(3)),
        changroberts.initial_global(3),
    ),
    "twophase": lambda: (
        _first_app(twophase.make_sequentializations(2)),
        twophase.initial_global(2),
    ),
    "paxos": lambda: (
        paxos.make_sequentialization(1, 2, (1, 2)),
        paxos.initial_global(1, 2),
    ),
}


def _universe(app, init_global):
    return StoreUniverse.from_reachable(
        app.program, [initial_config(init_global)]
    ).with_context(GhostContext(GHOST))


def _condition_map(result):
    return {
        key: (r.name, r.holds, r.checked, tuple(r.counterexamples))
        for key, r in result.conditions.items()
    }


@pytest.mark.parametrize("name", sorted(PROTOCOL_CASES))
def test_cached_discharge_equals_uncached(name):
    """Memoization never changes a verdict, a check count, or a
    counterexample, on any of the seven protocols."""
    app, init_global = PROTOCOL_CASES[name]()
    universe = _universe(app, init_global)

    reset_process_cache()
    cached = app.check(universe, jobs=1)
    with caching_disabled():
        uncached = app.check(universe, jobs=1)

    assert _condition_map(cached) == _condition_map(uncached)
    assert cached.total_checked == uncached.total_checked


def test_counters_monotone_and_exposed():
    """Counters only grow, totals add up, and ``as_dict`` exposes the
    hits/misses/hit_rate triple per evaluation kind."""
    app, init_global = PROTOCOL_CASES["pingpong"]()
    universe = _universe(app, init_global)

    reset_process_cache()
    app.check(universe, jobs=1)
    first = process_cache().stats_by_kind()
    assert first["transitions"].misses > 0

    app.check(universe, jobs=1)
    second = process_cache().stats_by_kind()
    for kind in ("gate", "transitions"):
        assert second[kind].hits >= first[kind].hits
        assert second[kind].misses >= first[kind].misses
        assert second[kind].total == second[kind].hits + second[kind].misses
        assert 0.0 <= second[kind].hit_rate <= 1.0
    # The second, identical run is served from cache: no new misses.
    assert second["transitions"].misses == first["transitions"].misses
    assert second["transitions"].hits > first["transitions"].hits

    exposed = process_cache().as_dict()
    for kind in ("gate", "transitions"):
        assert set(exposed[kind]) == {"hits", "misses", "hit_rate"}


def test_cache_stats_merge_and_empty_rate():
    assert CacheStats().hit_rate == 0.0
    merged = CacheStats(hits=3, misses=1).merged(CacheStats(hits=1, misses=5))
    assert (merged.hits, merged.misses, merged.total) == (4, 6, 10)


def test_shared_memo_across_action_views():
    """Distinct Action wrappers around the same callables share one memo:
    the second view's evaluations are hits, not misses."""
    reset_process_cache()
    cache = process_cache()

    def gate(_s):
        return True

    def transitions(state):
        yield from ()

    from repro.core.store import Store

    store = Store({"x": 0})
    view_a = cache.cached(Action("A", gate, transitions))
    view_b = cache.cached(Action("B", gate, transitions))
    view_a.transitions(store)
    view_b.transitions(store)
    stats = cache.stats_by_kind()["transitions"]
    assert (stats.misses, stats.hits) == (1, 1)
    # Idempotent on already-cached views.
    assert cache.cached(view_a) is view_a


def test_caching_disabled_is_reentrant():
    assert active_cache() is not None
    with caching_disabled():
        assert active_cache() is None
        with caching_disabled():
            assert active_cache() is None
        assert active_cache() is None
    assert active_cache() is not None


def _child_probe(queue):
    # Runs in a forked child whose parent has a warmed cache: the PID-keyed
    # singleton must be rebuilt fresh, not inherited live.
    cache = process_cache()
    queue.put((os.getpid(), cache.pid, cache.stats().total))


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
def test_forked_child_rebuilds_cache():
    app, init_global = PROTOCOL_CASES["pingpong"]()
    universe = _universe(app, init_global)
    reset_process_cache()
    app.check(universe, jobs=1)
    parent = process_cache()
    assert parent.pid == os.getpid()
    assert parent.stats().total > 0

    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    child = context.Process(target=_child_probe, args=(queue,))
    child.start()
    child_os_pid, child_cache_pid, child_total = queue.get(timeout=60)
    child.join(timeout=60)

    assert child_cache_pid == child_os_pid != parent.pid
    assert child_total == 0  # fresh counters, nothing inherited
    # The parent's cache is untouched by the child's existence.
    assert process_cache() is parent


def test_serial_outcomes_carry_cache_snapshots():
    """The serial backend snapshots the evaluation-cache counters after
    every obligation — the per-obligation drill-down (``--stats``) must
    work for serial runs too, not only for pool workers."""
    app, init_global = PROTOCOL_CASES["pingpong"]()
    universe = _universe(app, init_global)
    obligations = build_obligations(app, universe)

    reset_process_cache()
    outcomes = SerialScheduler().run(app, universe, obligations)
    assert len(outcomes) == len(obligations)
    totals = []
    for ob in obligations:
        outcome = outcomes[ob.key]
        assert outcome.cache_stats is not None
        assert set(outcome.cache_stats) == {"gate", "transitions"}
        totals.append(
            sum(
                kind["hits"] + kind["misses"]
                for kind in outcome.cache_stats.values()
            )
        )
    # Snapshots are cumulative: totals never decrease along build order.
    assert totals == sorted(totals)
    assert totals[-1] > 0


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
def test_pool_workers_use_private_caches():
    """Every process-pool outcome carries the discharging worker's own
    cache snapshot; workers are real separate processes."""
    app, init_global = PROTOCOL_CASES["pingpong"]()
    universe = _universe(app, init_global)
    obligations = build_obligations(app, universe)

    outcomes = ProcessPoolScheduler(jobs=2, clamp=False).run(
        app, universe, obligations
    )
    assert len(outcomes) == len(obligations)
    worker_pids = {o.pid for o in outcomes.values()}
    assert os.getpid() not in worker_pids
    for outcome in outcomes.values():
        assert outcome.cache_stats is not None
        assert set(outcome.cache_stats) == {"gate", "transitions"}
