"""Eq/hash-consistency properties for the content-hashed containers.

Store, Multiset and FrozenDict all hash through
:func:`repro.core.hashing.unordered_items_hash`; the interner's identity
discipline and the evaluation-cache memo keys both assume that equal
containers hash equal (and that insertion order never leaks into either
side).  These hypothesis properties pin that contract for all three.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.hashing import unordered_items_hash
from repro.core.mapping import FrozenDict
from repro.core.multiset import Multiset
from repro.core.store import Store

SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=8),
    st.tuples(st.integers(min_value=0, max_value=9), st.text(max_size=3)),
)

ITEMS = st.dictionaries(st.text(max_size=6), SCALARS, max_size=8)


@settings(max_examples=100, deadline=None)
@given(ITEMS, st.randoms())
def test_unordered_items_hash_ignores_order(data, rng):
    items = list(data.items())
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert unordered_items_hash(items) == unordered_items_hash(shuffled)


@settings(max_examples=100, deadline=None)
@given(ITEMS, st.randoms())
def test_store_eq_implies_hash_eq(data, rng):
    items = list(data.items())
    rng.shuffle(items)
    a, b = Store(data), Store(dict(items))
    assert a == b
    assert hash(a) == hash(b)


@settings(max_examples=100, deadline=None)
@given(st.lists(SCALARS, max_size=8), st.randoms())
def test_multiset_eq_implies_hash_eq(elements, rng):
    shuffled = list(elements)
    rng.shuffle(shuffled)
    a, b = Multiset(elements), Multiset(shuffled)
    assert a == b
    assert hash(a) == hash(b)


@settings(max_examples=100, deadline=None)
@given(ITEMS, st.randoms())
def test_frozendict_eq_implies_hash_eq(data, rng):
    items = list(data.items())
    rng.shuffle(items)
    a, b = FrozenDict(data), FrozenDict(dict(items))
    assert a == b
    assert hash(a) == hash(b)


@settings(max_examples=100, deadline=None)
@given(ITEMS)
def test_containers_share_one_hash_definition(data):
    # All three containers hash their items through the same helper, so a
    # drift in any one implementation shows up as a mismatch here.
    assert hash(Store(data)) == unordered_items_hash(data.items())
    assert hash(FrozenDict(data)) == unordered_items_hash(data.items())


@settings(max_examples=100, deadline=None)
@given(st.lists(SCALARS, max_size=8))
def test_multiset_hash_matches_count_items(elements):
    m = Multiset(elements)
    assert hash(m) == unordered_items_hash(m.counts())
