"""Eq/hash-consistency properties for the content-hashed containers.

Store, Multiset and FrozenDict all hash through
:func:`repro.core.hashing.unordered_items_hash`; the interner's identity
discipline and the evaluation-cache memo keys both assume that equal
containers hash equal (and that insertion order never leaks into either
side).  These hypothesis properties pin that contract for all three.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.hashing import unordered_items_hash
from repro.core.mapping import FrozenDict
from repro.core.multiset import Multiset
from repro.core.store import Store

SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=8),
    st.tuples(st.integers(min_value=0, max_value=9), st.text(max_size=3)),
)

ITEMS = st.dictionaries(st.text(max_size=6), SCALARS, max_size=8)


@settings(max_examples=100, deadline=None)
@given(ITEMS, st.randoms())
def test_unordered_items_hash_ignores_order(data, rng):
    items = list(data.items())
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert unordered_items_hash(items) == unordered_items_hash(shuffled)


@settings(max_examples=100, deadline=None)
@given(ITEMS, st.randoms())
def test_store_eq_implies_hash_eq(data, rng):
    items = list(data.items())
    rng.shuffle(items)
    a, b = Store(data), Store(dict(items))
    assert a == b
    assert hash(a) == hash(b)


@settings(max_examples=100, deadline=None)
@given(st.lists(SCALARS, max_size=8), st.randoms())
def test_multiset_eq_implies_hash_eq(elements, rng):
    shuffled = list(elements)
    rng.shuffle(shuffled)
    a, b = Multiset(elements), Multiset(shuffled)
    assert a == b
    assert hash(a) == hash(b)


@settings(max_examples=100, deadline=None)
@given(ITEMS, st.randoms())
def test_frozendict_eq_implies_hash_eq(data, rng):
    items = list(data.items())
    rng.shuffle(items)
    a, b = FrozenDict(data), FrozenDict(dict(items))
    assert a == b
    assert hash(a) == hash(b)


@settings(max_examples=100, deadline=None)
@given(ITEMS)
def test_containers_share_one_hash_definition(data):
    # All three containers hash their items through the same helper, so a
    # drift in any one implementation shows up as a mismatch here.
    assert hash(Store(data)) == unordered_items_hash(data.items())
    assert hash(FrozenDict(data)) == unordered_items_hash(data.items())


@settings(max_examples=100, deadline=None)
@given(st.lists(SCALARS, max_size=8))
def test_multiset_hash_matches_count_items(elements):
    m = Multiset(elements)
    assert hash(m) == unordered_items_hash(m.counts())


# --------------------------------------------------------------------- #
# structural_key: the cross-process total order
# --------------------------------------------------------------------- #

from repro.core.hashing import structural_key  # noqa: E402


@settings(max_examples=100, deadline=None)
@given(ITEMS, ITEMS)
def test_structural_key_separates_unequal_stores(a, b):
    sa, sb = Store(a), Store(b)
    assert (structural_key(sa) == structural_key(sb)) == (sa == sb)


@settings(max_examples=100, deadline=None)
@given(ITEMS, st.randoms())
def test_structural_key_ignores_insertion_order(data, rng):
    items = list(data.items())
    rng.shuffle(items)
    assert structural_key(Store(data)) == structural_key(Store(dict(items)))
    assert structural_key(Multiset(items)) == structural_key(
        Multiset(reversed(items))
    )


def test_structural_key_agrees_with_equality_across_types():
    # The key must mirror ``==`` exactly: Python's numeric equality is
    # cross-type (False == 0 == 0.0), everything else keys apart.
    assert structural_key(True) == structural_key(1) == structural_key(1.0)
    assert structural_key(False) == structural_key(0)
    assert structural_key(0.5) != structural_key(0)
    assert structural_key(1) != structural_key("1")
    assert structural_key(float("inf")) != structural_key(float("-inf"))
    assert structural_key(Store({"a": 1})) != structural_key(
        FrozenDict({"a": 1})
    )


def test_structural_key_stable_across_hash_seeds():
    """The regression the sort-key switch exists for: ``repr`` of
    address-bearing values and ``hash`` of strings both vary across
    processes / ``PYTHONHASHSEED``; ``structural_key`` must not. Two
    subprocesses with different seeds must key an identical store spread
    identically — this is what makes ``from_reachable``'s pool order
    (and therefore shard boundaries and counterexample attribution)
    reproducible across machines."""
    import os
    import subprocess
    import sys

    snippet = """
import sys
sys.path.insert(0, {src!r})
from repro.core.hashing import structural_key
from repro.core.mapping import FrozenDict
from repro.core.multiset import Multiset
from repro.core.store import Store
from repro.core.action import PendingAsync

stores = [
    Store({{"x": i, "who": chr(97 + i % 5), "bag": Multiset(["a", "b", "a"]),
           "m": FrozenDict({{"k": frozenset({{i, 2}})}}),
           "pa": Multiset([PendingAsync("Act", Store({{"i": i}}))])}})
    for i in range(8)
]
for s in sorted(stores, key=structural_key):
    print(structural_key(s))
"""
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    code = snippet.format(src=os.path.abspath(src))
    outputs = {
        subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONHASHSEED": seed},
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        for seed in ("0", "1", "424242")
    }
    assert len(outputs) == 1, "structural_key drifted across hash seeds"
