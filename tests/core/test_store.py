"""Unit and property tests for stores and store combination."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import EMPTY_STORE, Store, combine

store_data = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]), st.integers(-3, 3), max_size=4
)


class TestBasics:
    def test_get_set(self):
        s = Store({"x": 1})
        assert s["x"] == 1
        assert s.set("x", 2)["x"] == 2
        assert s["x"] == 1  # immutability

    def test_get_default(self):
        assert Store().get("missing", 42) == 42

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            Store()["nope"]

    def test_update(self):
        s = Store({"x": 1}).update({"x": 2, "y": 3})
        assert s["x"] == 2 and s["y"] == 3

    def test_without(self):
        s = Store({"x": 1, "y": 2}).without(["x"])
        assert "x" not in s and s["y"] == 2

    def test_restrict(self):
        s = Store({"x": 1, "y": 2}).restrict(["y", "z"])
        assert dict(s.items()) == {"y": 2}

    def test_merge_right_bias(self):
        s = Store({"x": 1}).merge(Store({"x": 9, "y": 2}))
        assert s["x"] == 9 and s["y"] == 2

    def test_len_iter_contains(self):
        s = Store({"x": 1, "y": 2})
        assert len(s) == 2
        assert set(s) == {"x", "y"}
        assert "x" in s

    def test_as_dict_copy(self):
        s = Store({"x": 1})
        d = s.as_dict()
        d["x"] = 99
        assert s["x"] == 1

    def test_empty_store_singletonish(self):
        assert len(EMPTY_STORE) == 0

    def test_combine(self):
        combined = combine(Store({"g": 1}), Store({"l": 2}))
        assert combined["g"] == 1 and combined["l"] == 2

    def test_combine_local_shadows(self):
        assert combine(Store({"v": 1}), Store({"v": 2}))["v"] == 2

    def test_globals_of(self):
        combined = Store({"g": 1, "l": 2})
        assert dict(combined.globals_of(["g"]).items()) == {"g": 1}


class TestProperties:
    @given(store_data, store_data)
    def test_merge_restrict_roundtrip(self, a, b):
        g, l = Store(a), Store(b)
        merged = combine(g, l)
        for name in b:
            assert merged[name] == b[name]
        for name in a:
            if name not in b:
                assert merged[name] == a[name]

    @given(store_data)
    def test_hash_eq_consistency(self, data):
        assert hash(Store(data)) == hash(Store(dict(data)))
        assert Store(data) == Store(dict(data))

    @given(store_data, st.sampled_from(["a", "b"]), st.integers(-3, 3))
    def test_set_then_get(self, data, name, value):
        assert Store(data).set(name, value)[name] == value

    @given(store_data)
    def test_restrict_without_partition(self, data):
        s = Store(data)
        keep = [k for i, k in enumerate(sorted(data)) if i % 2 == 0]
        merged = s.restrict(keep).merge(s.without(keep))
        assert merged == s
