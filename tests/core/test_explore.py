"""Tests for explicit-state exploration (Good, Trans, sampling)."""

import random

import pytest

from repro.core import (
    EMPTY_STORE,
    ExplorationBudgetExceeded,
    Store,
    explore,
    good_and_trans,
    initial_config,
    instance_summary,
    random_execution,
    reachable_globals,
    terminating_executions,
)

from ..conftest import make_assert_program, make_counter_program


def test_explore_counter():
    program = make_counter_program(increments=3)
    result = explore(program, [initial_config(Store({"x": 0}))])
    assert not result.can_fail
    assert result.final_globals == {Store({"x": 3})}
    # 1 initial + 1 post-Main spawn state per remaining-PA count (the Inc
    # tasks are symmetric but carry distinct locals): configs = 1 + 2^3.
    assert result.num_configs == 1 + 8


def test_explore_budget():
    program = make_counter_program(increments=4)
    with pytest.raises(ExplorationBudgetExceeded):
        explore(program, [initial_config(Store({"x": 0}))], max_configs=3)


def test_explore_detects_failure():
    program = make_assert_program(threshold=0)
    result = explore(program, [initial_config(Store({"x": 0}))])
    assert result.can_fail


def test_explore_detects_deadlock():
    from repro.core import Action, Multiset, Program, Transition, pa

    def main(state):
        yield Transition(state.restrict(["x"]), Multiset([pa("Stuck")]))

    program = Program(
        {
            "Main": Action("Main", lambda _s: True, main),
            "Stuck": Action("Stuck", lambda _s: True, lambda _s: iter(())),
        },
        global_vars=("x",),
    )
    result = explore(program, [initial_config(Store({"x": 0}))])
    assert len(result.deadlocks) == 1


def test_instance_summary():
    program = make_counter_program(increments=2)
    summary = instance_summary(program, Store({"x": 10}))
    assert not summary.can_fail
    assert summary.final_globals == {Store({"x": 12})}


def test_good_and_trans():
    program = make_assert_program(threshold=1)
    good, trans = good_and_trans(
        program, [(Store({"x": 0}), EMPTY_STORE), (Store({"x": 5}), EMPTY_STORE)]
    )
    assert Store({"x": 0}) in good  # 0 < 1 holds
    assert Store({"x": 5}) not in good
    assert (Store({"x": 0}), Store({"x": 0})) in trans


def test_reachable_globals():
    program = make_counter_program(increments=2)
    globals_ = reachable_globals(program, [initial_config(Store({"x": 0}))])
    assert {g["x"] for g in globals_} == {0, 1, 2}


def test_random_execution_terminates():
    program = make_counter_program(increments=3)
    rng = random.Random(7)
    execution = random_execution(program, initial_config(Store({"x": 0})), rng)
    assert execution.terminating
    execution.validate(program)


def test_terminating_executions_enumerates_interleavings():
    program = make_counter_program(increments=2)
    runs = list(terminating_executions(program, initial_config(Store({"x": 0}))))
    # Main first, then 2 orders of the Inc tasks.
    assert len(runs) == 2
    for execution in runs:
        execution.validate(program)
        assert execution.final.glob["x"] == 2


def test_random_walk_finals_subset_of_exhaustive():
    """Sampling agreement: final states reached by random scheduling are
    always within the exhaustively computed set."""
    from repro.protocols import broadcast

    n = 3
    program = broadcast.make_atomic(n)
    g0 = broadcast.initial_global(n)
    exhaustive = explore(program, [initial_config(g0)]).final_globals
    rng = random.Random(3)
    for _ in range(15):
        execution = random_execution(program, initial_config(g0), rng)
        if execution.terminating:
            assert execution.final.glob in exhaustive


def test_terminating_executions_limit():
    program = make_counter_program(increments=3)
    runs = list(
        terminating_executions(program, initial_config(Store({"x": 0})), limit=2)
    )
    assert len(runs) == 2
