"""Smoke tests running the example scripts end to end (small instances)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_quickstart():
    result = _run("quickstart.py", "2")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "IS conditions hold" in result.stdout
    assert "property (1)" in result.stdout


def test_rewriting_demo():
    result = _run("rewriting_demo.py", "2", "3")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "sequentialized execution (1 step)" in result.stdout
    assert "identical final configuration" in result.stdout


def test_paxos_walkthrough():
    result = _run("paxos_walkthrough.py", "1", "2")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "ProposeAbs gate" in result.stdout
    assert "no two rounds ever decide different values" in result.stdout


def test_build_your_own():
    result = _run("build_your_own.py", "2")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "IS conditions hold" in result.stdout
    assert "counter ends at {2}" in result.stdout


@pytest.mark.slow
def test_run_table1():
    result = _run("run_table1.py")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "Paxos" in result.stdout
