"""The delta-debugging shrinker: size measure, edit generation, and the
replay-oracle loop's invariants (soundness, monotonicity, determinism)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Multiset, Store, Transition
from repro.core.mapping import FrozenDict
from repro.diagnose import GateWitness, shrink_witness, witness_size
from repro.diagnose.shrink import _value_edits

# --------------------------------------------------------------------- #
# witness_size
# --------------------------------------------------------------------- #


def test_size_of_zero_and_empty_leaves_is_zero():
    assert witness_size(0) == 0
    assert witness_size(0.0) == 0
    assert witness_size("") == 0
    assert witness_size(None) == 0
    assert witness_size(False) == 0
    assert witness_size(Store()) == 0
    assert witness_size(Multiset()) == 0


def test_size_counts_container_entries_plus_contents():
    assert witness_size(Store({"x": 1})) == 2  # 1 for the var + 1 for value
    assert witness_size(Store({"x": 0})) == 1  # zeroed value is free
    assert witness_size(Multiset([5, 5])) == 4  # 2 × (1 + 1)
    assert witness_size(Multiset([0])) == 1  # 1 × (1 + 0)


def test_size_of_witness_sums_payload_fields_only():
    cx = GateWitness(
        reason="a very long reason that should not count",
        check="gate-inclusion",
        actors=("A", "B"),
        state=Store({"x": 1}),
    )
    assert witness_size(cx) == witness_size(Store({"x": 1}))


# --------------------------------------------------------------------- #
# edit generation
# --------------------------------------------------------------------- #

VALUES = st.recursive(
    st.one_of(
        st.integers(min_value=-3, max_value=3),
        st.booleans(),
        st.text(alphabet="ab", max_size=2),
    ),
    lambda leaf: st.one_of(
        st.lists(leaf, max_size=3).map(Multiset),
        st.dictionaries(
            st.sampled_from(["x", "y"]), leaf, max_size=2
        ).map(Store),
        st.dictionaries(st.integers(1, 2), leaf, max_size=2).map(FrozenDict),
    ),
    max_leaves=6,
)


@settings(max_examples=60, deadline=None)
@given(VALUES)
def test_every_edit_strictly_shrinks(value):
    size = witness_size(value)
    for what, smaller in _value_edits(value):
        assert witness_size(smaller) < size, (value, what, smaller)


@settings(max_examples=30, deadline=None)
@given(VALUES)
def test_edit_order_is_deterministic(value):
    first = [(what, repr(v)) for what, v in _value_edits(value)]
    second = [(what, repr(v)) for what, v in _value_edits(value)]
    assert first == second


def test_transition_edits_cover_new_global_and_created():
    tr = Transition(Store({"x": 1}), Multiset([Store({"i": 1})]))
    edits = dict(_value_edits(tr))
    assert any(what.startswith("new_global") for what in edits)
    assert any(what.startswith("created") for what in edits)


# --------------------------------------------------------------------- #
# the shrink loop
# --------------------------------------------------------------------- #


def test_shrink_drops_irrelevant_variables():
    """An oracle that only looks at ``x`` lets everything else go."""
    cx = GateWitness(
        reason="r",
        check="c",
        state=Store({"x": 3, "junk": 7, "noise": Multiset([1, 2])}),
    )

    def still_fails(candidate):
        return candidate.state["x"] == 3  # KeyError (dropped x) => not failing

    minimized, steps = shrink_witness(cx, still_fails)
    assert set(minimized.state.variables()) == {"x"}
    assert minimized.state["x"] == 3
    assert steps  # something was actually removed
    assert witness_size(minimized) < witness_size(cx)


def test_shrink_returns_input_when_nothing_removable():
    cx = GateWitness(reason="r", state=Store({"x": 1}))

    def still_fails(candidate):
        return candidate.state == Store({"x": 1})

    minimized, steps = shrink_witness(cx, still_fails)
    assert minimized == cx
    assert steps == []


def test_shrink_never_accepts_a_non_failing_candidate():
    """Soundness: the minimized witness satisfies the oracle, and so did
    every intermediate accepted edit (checked via an oracle log)."""
    accepted_log = []

    cx = GateWitness(reason="r", state=Store({"x": 2, "y": 5}))

    def still_fails(candidate):
        ok = candidate.state.get("x", 0) == 2
        accepted_log.append((candidate, ok))
        return ok

    minimized, _ = shrink_witness(cx, still_fails)
    assert still_fails(minimized)
    # Every candidate the loop kept (witnessed by becoming the new current)
    # must have been one the oracle approved.
    approved = {repr(c) for c, ok in accepted_log if ok}
    assert repr(minimized) in approved


def test_oracle_exceptions_count_as_not_failing():
    cx = GateWitness(reason="r", state=Store({"x": 1, "y": 2}))

    def still_fails(candidate):
        # Raises KeyError once ``y`` is dropped; shrinker must survive and
        # refuse that edit.
        return candidate.state["y"] == 2 and candidate.state.get("x") is not None

    minimized, _ = shrink_witness(cx, still_fails)
    assert minimized.state["y"] == 2


def test_shrink_is_deterministic():
    cx = GateWitness(
        reason="r", state=Store({"x": 1, "y": Multiset([1, 1, 2]), "z": "ab"})
    )

    def still_fails(candidate):
        return candidate.state.get("x", 0) == 1

    first = shrink_witness(cx, still_fails)
    second = shrink_witness(cx, still_fails)
    assert first == second


@settings(max_examples=25, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "keep"]),
        st.integers(min_value=-3, max_value=3),
        max_size=4,
    )
)
def test_shrink_property_minimized_still_fails_and_never_grows(variables):
    """Property: for an arbitrary store payload and a satisfiable oracle,
    the minimized witness still fails and is no larger than the input."""
    store = Store(dict(variables, keep=1))
    cx = GateWitness(reason="r", state=store)

    def still_fails(candidate):
        return candidate.state.get("keep", 0) == 1

    minimized, steps = shrink_witness(cx, still_fails)
    assert still_fails(minimized)
    assert witness_size(minimized) <= witness_size(cx)
    assert len(steps) >= 0
    # Local minimum: no single further edit keeps the failure.
    from repro.diagnose.shrink import _witness_edits

    for _, candidate in _witness_edits(minimized):
        if witness_size(candidate) >= witness_size(minimized):
            continue
        try:
            assert not still_fails(candidate)
        except KeyError:
            pass
