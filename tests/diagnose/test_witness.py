"""The typed counterexample hierarchy: descriptions, prefixes, payloads,
legacy unpacking, and the single shared cap constant."""

from __future__ import annotations

import pickle

from repro.core import Store, Transition
from repro.diagnose import (
    COUNTEREXAMPLE_KEEP,
    CommutationWitness,
    Counterexample,
    GateWitness,
    MissingTransitionWitness,
    SkippedMarker,
)


def test_description_is_prefix_then_reason():
    cx = GateWitness(reason="gate fails", check="gate-inclusion")
    assert cx.description == "gate fails"
    assert cx.with_prefix("abs").description == "abs: gate fails"
    assert (
        cx.with_prefix("outer").with_prefix("inner").description
        == "inner: outer: gate fails"
    )


def test_with_prefix_accepts_multiple_labels_in_order():
    cx = GateWitness(reason="r").with_prefix("a", "b")
    assert cx.description == "a: b: r"


def test_with_prefix_preserves_payload_and_type():
    state = Store({"x": 1})
    cx = GateWitness(reason="r", check="c", state=state)
    prefixed = cx.with_prefix("p")
    assert isinstance(prefixed, GateWitness)
    assert prefixed.state == state
    assert prefixed.check == "c"


def test_iteration_matches_legacy_pair_unpacking():
    """Old code did ``for description, witness in result.counterexamples``;
    the typed hierarchy keeps that working via ``__iter__``."""
    state = Store({"x": 1})
    description, witness = GateWitness(reason="gate fails", state=state)
    assert description == "gate fails"
    assert witness == state


def test_payload_unwraps_single_field_and_tuples_multiple():
    state = Store({"x": 1})
    tr = Transition(state)
    single = GateWitness(reason="r", state=state)
    assert single.payload() == state
    double = MissingTransitionWitness(reason="r", state=state, transition=tr)
    assert double.payload() == (state, tr)
    assert SkippedMarker(reason="skipped: dep failed").payload() is None


def test_witnesses_are_hashable_value_objects():
    a = GateWitness(reason="r", check="c", state=Store({"x": 1}))
    b = GateWitness(reason="r", check="c", state=Store({"x": 1}))
    assert a == b
    assert hash(a) == hash(b)
    assert a != GateWitness(reason="r", check="c", state=Store({"x": 2}))


def test_witnesses_pickle_roundtrip():
    """Witnesses cross the pool-scheduler process boundary."""
    witnesses = [
        GateWitness(reason="r", check="c", state=Store({"x": 1})),
        MissingTransitionWitness(
            reason="r", state=Store({"x": 1}), transition=Transition(Store({"x": 2}))
        ),
        CommutationWitness(
            reason="r",
            global_store=Store({"g": 0}),
            left_locals=Store({"i": 1}),
            right_locals=Store({"i": 2}),
        ),
        SkippedMarker(reason="skipped: dep failed").with_prefix("wrt X"),
    ]
    for cx in witnesses:
        assert pickle.loads(pickle.dumps(cx)) == cx


def test_repr_shows_type_and_description():
    cx = GateWitness(reason="gate fails").with_prefix("abs")
    assert repr(cx) == "GateWitness('abs: gate fails')"


def test_cap_constant_is_shared_everywhere():
    """Satellite: one cap, one truncation rule — the refinement checkers,
    the engine merge, and the movers all read the same constant."""
    import inspect

    from repro.core import movers, refinement
    from repro.engine import obligations

    assert refinement.COUNTEREXAMPLE_KEEP == COUNTEREXAMPLE_KEEP
    assert obligations._KEEP == COUNTEREXAMPLE_KEEP
    sig = inspect.signature(refinement._fail)
    assert sig.parameters["keep"].default == COUNTEREXAMPLE_KEEP
    assert movers.COUNTEREXAMPLE_KEEP == COUNTEREXAMPLE_KEEP


def test_base_counterexample_has_no_payload():
    cx = Counterexample(reason="r", check="c")
    assert cx.payload() is None
    assert list(cx) == ["r", None]
