"""Typed exploration budgets and honest ``checked`` accounting."""

from __future__ import annotations

import pytest

from repro.core.explore import ExplorationBudgetExceeded, explore, instance_summary
from repro.core.refinement import check_program_refinement
from repro.core.semantics import initial_config
from repro.protocols import pingpong
from repro.protocols.common import BudgetHit


def _program_and_init(rounds=2):
    application = pingpong.make_sequentialization(rounds)
    return application.program, pingpong.initial_global(rounds)


def test_budget_exception_carries_partial_counts():
    program, init_global = _program_and_init()
    with pytest.raises(ExplorationBudgetExceeded) as excinfo:
        explore(program, [initial_config(init_global)], max_configs=3)
    exc = excinfo.value
    assert exc.limit == 3
    assert exc.explored == 4  # the overflowing configuration is counted
    assert "budget exceeded" in str(exc)
    assert str(exc.explored) in str(exc)


def test_instance_summary_counts_explored_configurations():
    program, init_global = _program_and_init()
    summary = instance_summary(program, init_global)
    assert summary.num_configs > 0
    # The budget is exactly the reachable count: one more config is fine.
    assert (
        instance_summary(
            program, init_global, max_configs=summary.num_configs
        ).num_configs
        == summary.num_configs
    )
    with pytest.raises(ExplorationBudgetExceeded):
        instance_summary(program, init_global, max_configs=summary.num_configs - 1)


def test_program_refinement_checked_counts_configurations_not_pairs():
    """Satellite fix: ``checked`` used to be ``len(pairs)`` (always 1
    here); it must count configurations explored on both sides."""
    program, init_global = _program_and_init()
    from repro.core.store import EMPTY_STORE

    result = check_program_refinement(
        program, program, [(init_global, EMPTY_STORE)]
    )
    assert result.holds
    per_side = instance_summary(program, init_global).num_configs
    assert result.checked == 2 * per_side
    assert result.checked > 1


def test_protocol_report_budget_verdict():
    report = pingpong.verify(rounds=3, max_configs=3)
    assert report.status == "BUDGET"
    assert not report.ok
    assert isinstance(report.budget, BudgetHit)
    assert report.budget.stage == "IS[Ping+Pong+Await]"
    assert report.budget.limit == 3
    assert report.budget.explored == 4
    assert "budget exceeded" in report.summary()
    assert report.is_results == []  # pipeline stopped at the first blow


def test_protocol_report_ok_with_sufficient_budget():
    report = pingpong.verify(rounds=2, max_configs=100_000)
    assert report.status == "OK"
    assert report.ok
    assert report.budget is None
    assert report.explain_targets  # populated for --explain even on OK runs


def test_budget_hit_on_ground_truth_stage():
    """A budget large enough for the (ghost-context) IS universe but too
    small for exhaustive ground truth lands on a later stage."""
    ok = pingpong.verify(rounds=2)
    assert ok.ok
    # Find a budget that passes IS but trips a later stage, if the state
    # spaces differ; otherwise at least confirm stage labels are correct.
    report = pingpong.verify(rounds=2, max_configs=3)
    assert report.status == "BUDGET"
    assert report.budget.stage.startswith(("IS[", "sequential spec", "ground truth"))


def test_table1_budget_rows():
    from repro.analysis.table1 import TABLE1_REGISTRY, build_table1, render_table1

    rows = build_table1(entries=TABLE1_REGISTRY[1:2], max_configs=3)
    assert len(rows) == 1
    assert rows[0].status == "BUDGET"
    assert not rows[0].ok
    assert "BUDGET" in render_table1(rows)
