"""End-to-end diagnostics on the seeded failing fixtures: backend
determinism of witness lists, replay confirmation, shrinking, rendering,
and the JSON failure report."""

from __future__ import annotations

import json

import pytest

from repro.diagnose import (
    COUNTEREXAMPLE_KEEP,
    FIXTURES,
    SkippedMarker,
    explain_fixture,
    explain_result,
    replay_witness,
    witness_size,
)
from repro.diagnose.render import render_explanation, render_witness, witness_to_json
from repro.engine.scheduler import ProcessPoolScheduler
from repro.obs import failure_payload


@pytest.fixture(scope="module")
def broken():
    """The min-decide mutant, checked once per backend (module-scoped:
    universes are small but three full checks are not free)."""
    fixture = FIXTURES["broken-broadcast"]
    app, universe = fixture.build()
    inline = app.check_inline(universe)
    serial = app.check(universe, jobs=1)
    pool = app.check(universe, scheduler=ProcessPoolScheduler(4, clamp=False))
    return fixture, app, universe, inline, serial, pool


def _witness_lists(result):
    return {
        name: tuple(check.counterexamples)
        for name, check in result.conditions.items()
    }


def test_fixture_fails_expected_conditions(broken):
    fixture, _app, _universe, inline, _serial, _pool = broken
    assert not inline.holds
    failed = {name for name, check in inline.conditions.items() if not check.holds}
    assert set(fixture.expect_failing) <= failed


def test_witness_lists_identical_across_backends(broken):
    """The acceptance bar: same failing mutant through inline checker,
    serial scheduler, and warm pool gives *identical ordered* capped
    witness lists — typed equality, not just equal descriptions."""
    _fixture, _app, _universe, inline, serial, pool = broken
    assert _witness_lists(inline) == _witness_lists(serial)
    assert _witness_lists(inline) == _witness_lists(pool)


def test_witness_lists_respect_the_cap(broken):
    _fixture, _app, _universe, inline, _serial, _pool = broken
    for check in inline.conditions.values():
        assert len(check.counterexamples) <= COUNTEREXAMPLE_KEEP


def test_every_witness_replays_as_still_failing(broken):
    _fixture, app, _universe, inline, _serial, _pool = broken
    replayed = 0
    for name, check in inline.conditions.items():
        for cx in check.counterexamples:
            if isinstance(cx, SkippedMarker):
                continue
            assert replay_witness(app, name, cx), (name, cx)
            replayed += 1
    assert replayed > 0


def test_explanation_minimizes_and_confirms(broken):
    _fixture, app, _universe, inline, _serial, _pool = broken
    explanation = explain_result(app, inline, target="broken-broadcast")
    assert not explanation.holds
    assert explanation.witnesses
    assert explanation.all_confirmed
    for report in explanation.witnesses:
        assert report.replay_confirmed
        assert report.minimized_size <= report.original_size
        assert report.minimized_size == witness_size(report.minimized)
        # Shrink order: each accepted edit strictly decreased the size,
        # so N steps imply at least N units removed.
        assert report.original_size - report.minimized_size >= len(report.steps)
        # The minimized witness still fails its own predicate.
        assert replay_witness(app, report.condition, report.minimized)
    assert any(report.steps for report in explanation.witnesses)


def test_explanations_deterministic_across_backends(broken):
    _fixture, app, _universe, _inline, serial, pool = broken
    a = explain_result(app, serial, target="t")
    b = explain_result(app, pool, target="t")
    assert a.conditions == b.conditions
    assert a.witnesses == b.witnesses


def test_render_and_json_roundtrip(broken):
    _fixture, app, _universe, inline, _serial, _pool = broken
    explanation = explain_result(app, inline, target="broken-broadcast")
    text = render_explanation(explanation)
    assert "verdict: FAIL" in text
    assert "replay confirmed still-failing" in text
    assert "shrunk by:" in text
    for report in explanation.witnesses:
        assert render_witness(report.minimized)

    payload = failure_payload(explanation)
    encoded = json.loads(json.dumps(payload))
    assert encoded["schema"] == "repro.obs/failure/v1"
    assert encoded["holds"] is False
    assert encoded["all_confirmed"] is True
    assert len(encoded["witnesses"]) == len(explanation.witnesses)
    for item in encoded["witnesses"]:
        assert item["minimized_size"] <= item["original_size"]
        assert item["original"]["kind"]
        assert item["minimized"]["payload"]


def test_witness_to_json_tags_semantic_values(broken):
    _fixture, _app, _universe, inline, _serial, _pool = broken
    cx = next(
        cx
        for check in inline.conditions.values()
        for cx in check.counterexamples
    )
    doc = witness_to_json(cx)
    assert doc["check"]
    assert doc["description"] == cx.description
    assert "store" in json.dumps(doc)


def test_stuck_fixture_gate_witnesses():
    """The second seeded bug: non-blocking and cooperation failures."""
    fixture = FIXTURES["stuck-broadcast"]
    app, universe = fixture.build()
    result = app.check_inline(universe)
    failed = {name for name, check in result.conditions.items() if not check.holds}
    assert set(fixture.expect_failing) <= failed
    explanation = explain_result(app, result, target="stuck-broadcast")
    assert explanation.all_confirmed
    kinds = {report.minimized.kind for report in explanation.witnesses}
    assert "gate" in kinds


def test_explain_fixture_end_to_end():
    explanation = explain_fixture("broken-broadcast")
    assert not explanation.holds
    assert explanation.all_confirmed
    assert explanation.target.startswith("fixture broken-broadcast")


def test_explain_fixture_unknown_name():
    with pytest.raises(KeyError, match="unknown fixture"):
        explain_fixture("no-such-fixture")
