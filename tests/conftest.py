"""Shared fixtures and toy programs for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    Action,
    Multiset,
    PendingAsync,
    Program,
    Store,
    Transition,
    initial_config,
)

COUNTER_GLOBALS = ("x",)


def counter_globals(state: Store) -> Store:
    return state.restrict(COUNTER_GLOBALS)


def make_counter_program(increments: int = 2) -> Program:
    """A tiny program: Main spawns ``increments`` Inc tasks, each adding 1
    to the global ``x``. All actions commute; terminating states have
    ``x = x0 + increments``."""

    def main_transitions(state: Store):
        created = [PendingAsync("Inc", Store({"i": i})) for i in range(increments)]
        yield Transition(counter_globals(state), Multiset(created))

    def inc_transitions(state: Store):
        yield Transition(counter_globals(state).set("x", state["x"] + 1))

    return Program(
        {
            "Main": Action("Main", lambda _s: True, main_transitions),
            "Inc": Action("Inc", lambda _s: True, inc_transitions, ("i",)),
        },
        global_vars=COUNTER_GLOBALS,
    )


def make_assert_program(threshold: int) -> Program:
    """Main spawns one Check task asserting ``x < threshold``."""

    def main_transitions(state: Store):
        yield Transition(counter_globals(state), Multiset([PendingAsync("Check")]))

    def check_transitions(state: Store):
        yield Transition(counter_globals(state))

    return Program(
        {
            "Main": Action("Main", lambda _s: True, main_transitions),
            "Check": Action(
                "Check", lambda s: s["x"] < threshold, check_transitions
            ),
        },
        global_vars=COUNTER_GLOBALS,
    )


@pytest.fixture
def counter_program() -> Program:
    return make_counter_program()


@pytest.fixture
def counter_init():
    return initial_config(Store({"x": 0}))
