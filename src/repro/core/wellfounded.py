"""Well-founded orders over configurations for the cooperation condition.

The IS rule (Figure 3) requires a well-founded order :math:`\\gg` such that
every abstracted action can always execute while strictly decreasing the
configuration. Section 4 ("Checking cooperation is easy") describes the
generic pattern used for all of the paper's examples: map a configuration to
a tuple of natural numbers — each component counting the messages in some
channel or the pending asyncs of some action — and compare tuples
lexicographically. Such an order is automatically well-founded and
*monotonic* (adding the same PAs to both sides preserves the order), so the
cooperation condition can be discharged locally on
:math:`(g, \\{(\\ell, A)\\}) \\gg (g', \\Omega')`.

:class:`LexicographicMeasure` implements exactly this pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from .semantics import Config

__all__ = [
    "LexicographicMeasure",
    "pa_count",
    "channel_size",
    "total_pa_count",
    "global_counter",
    "pa_potential",
]

Component = Callable[[Config], int]


@dataclass(frozen=True)
class LexicographicMeasure:
    """A measure mapping configurations to tuples of naturals.

    ``c ≫ c'`` iff ``key(c) > key(c')`` in lexicographic order. Components
    must be non-negative for well-foundedness; :meth:`key` enforces this.
    """

    components: Tuple[Component, ...]
    name: str = "measure"

    def key(self, config: Config) -> Tuple[int, ...]:
        values = tuple(component(config) for component in self.components)
        if any(v < 0 for v in values):
            raise ValueError(f"negative measure component in {self.name}: {values}")
        return values

    def decreases(self, before: Config, after: Config) -> bool:
        """The strict order ``before ≫ after``."""
        return self.key(before) > self.key(after)


def pa_count(action_name: str) -> Component:
    """Component counting pending asyncs to a given action."""

    def component(config: Config) -> int:
        return sum(
            count
            for pending, count in config.pending.counts()
            if pending.action == action_name
        )

    return component


def total_pa_count() -> Component:
    """Component counting all pending asyncs (the broadcast-consensus order)."""

    def component(config: Config) -> int:
        return len(config.pending)

    return component


def channel_size(var: str, key=None) -> Component:
    """Component counting messages in a channel stored in global ``var``.

    The channel value must support ``len``; with ``key`` given, ``var`` is a
    mapping (e.g. a dict of per-node channels) and the component counts
    messages across all entries (``key=None``) or in a specific entry.
    """

    def component(config: Config) -> int:
        value = config.glob[var]
        if key is not None:
            return len(value[key])
        if isinstance(value, dict):
            return sum(len(channel) for channel in value.values())
        return len(value)

    return component


def pa_potential(weight) -> Component:
    """Component summing a non-negative weight over all pending asyncs.

    Generalizes PA counting for protocols whose actions *replace* one PA by
    another (e.g. Ping-Pong, where ``Pong(x)`` spawns ``Pong(x+1)``): give
    each PA a potential that strictly drops along the protocol's progress,
    e.g. ``weight(pa) = rounds_remaining(pa)``. Monotonic by construction,
    so the cooperation condition can be checked locally.
    """

    def component(config: Config) -> int:
        return sum(
            weight(pending) * count for pending, count in config.pending.counts()
        )

    return component


def global_counter(var: str, scale: int = 1) -> Component:
    """Component reading a non-negative integer global variable.

    Useful for protocols whose progress is tracked in a counter (e.g. the
    number of rounds still to run); ``scale`` weights the component.
    """

    def component(config: Config) -> int:
        return int(config.glob[var]) * scale

    return component
