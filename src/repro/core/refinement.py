"""Refinement between actions and between programs (Definitions 3.1/3.2).

*Action refinement* :math:`a_1 \\preccurlyeq a_2` requires

1. :math:`\\rho_2 \\subseteq \\rho_1` — the abstraction fails at least as
   often as the concrete action, and
2. :math:`\\rho_2 \\circ \\tau_1 \\subseteq \\tau_2` — on stores where the
   abstraction does not fail, every concrete transition is an abstract one.

*Program refinement* :math:`\\mathcal{P}_1 \\preccurlyeq \\mathcal{P}_2`
requires :math:`Good(\\mathcal{P}_2) \\subseteq Good(\\mathcal{P}_1)` and
:math:`Good(\\mathcal{P}_2) \\circ Trans(\\mathcal{P}_1) \\subseteq
Trans(\\mathcal{P}_2)`.

Both are checked exhaustively over a finite domain: a
:class:`~repro.core.universe.StoreUniverse` for actions, a finite family of
initial stores for programs. A failed check carries a concrete
counterexample, playing the role of an SMT model in CIVL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..diagnose.witness import (
    COUNTEREXAMPLE_KEEP,
    Counterexample,
    GateWitness,
    MissingTransitionWitness,
)
from .action import Action
from .explore import instance_summary
from .program import Program
from .store import Store, combine
from .universe import StoreUniverse

__all__ = [
    "CheckResult",
    "COUNTEREXAMPLE_KEEP",
    "check_action_refinement",
    "check_program_refinement",
]


@dataclass
class CheckResult:
    """Outcome of an exhaustive check; ``holds`` plus counterexamples.

    ``counterexamples`` is a list of typed
    :class:`~repro.diagnose.witness.Counterexample` objects pinning the
    offending stores/transitions; each still unpacks as the legacy
    ``(description, payload)`` pair. The list is capped at
    :data:`COUNTEREXAMPLE_KEEP` per result — the single truncation rule
    every merge path shares, so backends agree on what is reported.
    """

    name: str
    holds: bool
    counterexamples: List[Counterexample] = field(default_factory=list)
    checked: int = 0

    def __bool__(self) -> bool:
        return self.holds

    @property
    def verdict(self) -> str:
        """``PASS``, ``FAIL``, or ``TIMEOUT``.

        A condition is ``TIMEOUT`` when it failed to *complete* rather
        than failed to *hold*: every witness is a scheduling marker
        (``timeout``/``skipped`` kinds — deadline expiries, crashes,
        interrupts, fail-fast skips) and at least one records a
        disruption. A genuine violation witness anywhere makes the
        verdict ``FAIL`` — a real counterexample outranks an incomplete
        enumeration.
        """
        if self.holds:
            return "PASS"
        kinds = {
            getattr(cx, "kind", "counterexample")
            for cx in self.counterexamples
        }
        if "timeout" in kinds and kinds <= {"timeout", "skipped"}:
            return "TIMEOUT"
        return "FAIL"

    def __repr__(self) -> str:
        status = self.verdict
        extra = f", {len(self.counterexamples)} counterexamples" if not self.holds else ""
        return f"CheckResult({self.name}: {status}, {self.checked} checked{extra})"


def _fail(
    result: CheckResult,
    witness: Counterexample,
    keep: int = COUNTEREXAMPLE_KEEP,
) -> None:
    result.holds = False
    if len(result.counterexamples) < keep:
        result.counterexamples.append(witness)


def check_action_refinement(
    concrete: Action,
    abstract: Action,
    universe: StoreUniverse,
    name: Optional[str] = None,
    pa_name: Optional[str] = None,
) -> CheckResult:
    """Check :math:`concrete \\preccurlyeq abstract` over a store universe.

    The two actions are compared on the *same* combined stores, enumerated
    from the universe's locals for the concrete action (an abstraction in
    the paper always has the same parameter signature as the action it
    abstracts). When ``pa_name`` is given, only stores where a PA of that
    name could be scheduled (per the universe's PA context) are considered.
    """
    result = CheckResult(name or f"{concrete.name} ≼ {abstract.name}", True)
    for g, l, state in universe.combined(concrete.name):
        if pa_name is not None and not universe.single_ok(g, pa_name, l):
            continue
        result.checked += 1
        abstract_ok = abstract.gate(state)
        concrete_ok = concrete.gate(state)
        # Condition (1): ρ2 ⊆ ρ1.
        if abstract_ok and not concrete_ok:
            _fail(
                result,
                GateWitness(
                    reason="abstract gate holds where concrete gate fails",
                    check="gate-inclusion",
                    actors=(concrete.name, abstract.name),
                    state=state,
                ),
            )
            continue
        if not abstract_ok:
            # ρ2 ◦ τ1 is empty here; nothing to check.
            continue
        # Condition (2): ρ2 ◦ τ1 ⊆ τ2.
        abstract_outcomes = set(abstract.outcomes(state))
        for tr in concrete.transitions(state):
            if tr not in abstract_outcomes:
                _fail(
                    result,
                    MissingTransitionWitness(
                        reason="concrete transition missing from abstraction",
                        check="transition-inclusion",
                        actors=(concrete.name, abstract.name),
                        state=state,
                        transition=tr,
                    ),
                )
    return result


def check_program_refinement(
    concrete: Program,
    abstract: Program,
    initial_stores: Iterable[Tuple[Store, Store]],
    max_configs: Optional[int] = None,
    name: str = "program refinement",
) -> CheckResult:
    """Check :math:`concrete \\preccurlyeq abstract` on given initial stores.

    ``initial_stores`` yields ``(global, main-local)`` pairs; both programs
    are explored exhaustively from each. This is the ground-truth oracle the
    IS rule is validated against in the test suite.
    """
    pairs = list(initial_stores)
    explored = 0
    good1, good2 = set(), set()
    trans1, trans2 = set(), set()
    origin = {}
    for good, trans, program in ((good1, trans1, concrete), (good2, trans2, abstract)):
        for g, l in pairs:
            summary = instance_summary(program, g, l, max_configs)
            explored += summary.num_configs
            sigma = combine(g, l)
            origin[sigma] = (g, l)
            if not summary.can_fail:
                good.add(sigma)
            for final in summary.final_globals:
                trans.add((sigma, final))

    # ``checked`` counts configurations the exhaustive searches actually
    # explored (2 programs x len(pairs) instances), matching the work
    # measure of action-level checks — not the number of initial stores.
    result = CheckResult(name, True, checked=explored)
    for g, l in pairs:
        sigma = combine(g, l)
        if sigma in good2 and sigma not in good1:
            _fail(
                result,
                GateWitness(
                    reason="Good(abstract) not included in Good(concrete)",
                    check="good-inclusion",
                    state=sigma,
                    context=(g, l),
                ),
            )
    for sigma, final in sorted(trans1, key=repr):
        if sigma in good2 and (sigma, final) not in trans2:
            _fail(
                result,
                MissingTransitionWitness(
                    reason="terminating behaviour of concrete not reproduced by abstract",
                    check="trans-inclusion",
                    state=sigma,
                    final_global=final,
                    context=origin[sigma],
                ),
            )
    return result
