"""Immutable, hashable finite maps for map-valued global variables.

Protocol state is naturally map-shaped: ``decision: Node -> Option<Value>``,
``CH: Node -> Bag<Message>``, ``joinedNodes: Round -> Set<Node>`` (compare
the variable declarations in Figure 4(a) of the paper). Since stores must be
hashable for state-space exploration, such values are represented with
:class:`FrozenDict`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Mapping, Tuple

from .hashing import unordered_items_hash

__all__ = ["FrozenDict"]


class FrozenDict:
    """An immutable, hashable mapping with functional update.

    >>> d = FrozenDict({1: "a"})
    >>> d.set(2, "b")[2]
    'b'
    >>> 2 in d
    False
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Mapping[Hashable, Hashable] = ()):
        self._data: Dict[Hashable, Hashable] = dict(data)
        self._hash = None

    def set(self, key: Hashable, value: Hashable) -> "FrozenDict":
        data = dict(self._data)
        data[key] = value
        return FrozenDict(data)

    def update(self, changes: Mapping[Hashable, Hashable]) -> "FrozenDict":
        data = dict(self._data)
        data.update(changes)
        return FrozenDict(data)

    def get(self, key: Hashable, default: Hashable = None) -> Hashable:
        return self._data.get(key, default)

    def items(self) -> Iterator[Tuple[Hashable, Hashable]]:
        return iter(self._data.items())

    def keys(self) -> Iterator[Hashable]:
        return iter(self._data.keys())

    def values(self) -> Iterator[Hashable]:
        return iter(self._data.values())

    def as_dict(self) -> Dict[Hashable, Hashable]:
        return dict(self._data)

    def __getitem__(self, key: Hashable) -> Hashable:
        return self._data[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrozenDict):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = unordered_items_hash(self._data.items())
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in sorted(self._data.items(), key=lambda kv: repr(kv[0])))
        return "{" + inner + "}"
