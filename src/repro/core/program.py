"""Programs: finite maps from action names to gated atomic actions.

Per Section 3 of the paper, a program :math:`\\mathcal{P}` maps action names
to actions and must contain the dedicated name ``Main``; execution starts
from a configuration with a single pending async to ``Main``.

On top of the formal content, :class:`Program` records the list of *global
variables*, which lets actions and the exploration engine project the global
part out of a combined store (the paper keeps this projection implicit).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Sequence, Tuple

from .action import Action, PendingAsync
from .store import Store

__all__ = ["Program", "MAIN"]

#: The dedicated entry-point action name required in every program.
MAIN = "Main"


class Program:
    """An immutable program: action names to actions, plus global variables.

    >>> prog = Program({"Main": some_action}, global_vars=("x",))
    >>> prog["Main"] is some_action
    True
    >>> prog.with_action("Main", other) is prog
    False
    """

    __slots__ = ("_actions", "_global_vars")

    def __init__(
        self,
        actions: Mapping[str, Action],
        global_vars: Sequence[str] = (),
        require_main: bool = True,
    ):
        if require_main and MAIN not in actions:
            raise ValueError(f"program must contain the action name {MAIN!r}")
        self._actions: Dict[str, Action] = dict(actions)
        self._global_vars: Tuple[str, ...] = tuple(global_vars)

    @property
    def global_vars(self) -> Tuple[str, ...]:
        return self._global_vars

    def globals_of(self, state: Store) -> Store:
        """Project the global part out of a combined store."""
        return state.restrict(self._global_vars)

    def action_names(self) -> Iterator[str]:
        return iter(self._actions)

    def actions(self) -> Iterator[Tuple[str, Action]]:
        return iter(self._actions.items())

    def with_action(self, name: str, action: Action) -> "Program":
        """The paper's :math:`\\mathcal{P}[A \\mapsto a]` substitution."""
        actions = dict(self._actions)
        actions[name] = action
        return Program(actions, self._global_vars, require_main=False)

    def without_actions(self, names: Sequence[str]) -> "Program":
        """Drop actions (used after IS eliminates a set of action names)."""
        drop = set(names)
        actions = {k: v for k, v in self._actions.items() if k not in drop}
        return Program(actions, self._global_vars, require_main=False)

    def lookup(self, pending: PendingAsync) -> Action:
        """The action a pending async refers to."""
        return self._actions[pending.action]

    def __getitem__(self, name: str) -> Action:
        return self._actions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._actions

    def __len__(self) -> int:
        return len(self._actions)

    def __repr__(self) -> str:
        names = ", ".join(sorted(self._actions))
        return f"Program([{names}]; globals={list(self._global_vars)})"
