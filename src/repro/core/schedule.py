"""Policy-driven sequentializations: deriving IS artifacts from a schedule.

Section 5.2 of the paper observes that *"the main creative task is the
invention of the sequentialization, while all required proof artifacts are
derived from it: the invariant action and the choice function are
determined from partial sequential executions, and M' summarizes completed
sequential executions."*

This module turns that observation into a construction. A **policy** is a
function from the current (global store, pending multiset) to the pending
async that the idealized sequential schedule executes next (``None`` when
the schedule is complete). From a policy we derive

* the **invariant action** (:func:`invariant_from_policy`): all prefixes of
  the policy-driven sequential execution, each prefix's still-pending PAs
  becoming the transition's created PAs — exactly the shape of ``Inv`` in
  Figure 1-⑤ and ``PaxosInv`` in Figure 4(c);
* the **choice function** (:func:`choice_from_policy`): apply the policy to
  the transition's endpoint;
* ``M'`` comes for free as the invariant's complete (E-free) transitions.

Most protocols use :func:`policy_by_key`: order the pending PAs by a
per-protocol key (e.g. Paxos: round, then phase, then node) and always pick
the minimum. The hand-written invariant of ``repro.protocols.broadcast``
coexists with its policy-derived twin; an ablation benchmark confirms they
induce the same sequentialization.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Set, Tuple

from .action import Action, PendingAsync, Transition
from .multiset import Multiset
from .program import Program
from .sequentialize import ChoiceFn
from .store import Store, combine

__all__ = [
    "PolicyFn",
    "ScheduleError",
    "policy_by_key",
    "invariant_from_policy",
    "choice_from_policy",
]

#: A scheduling policy: which pending PA does the sequentialization run
#: next from this (global store, pending multiset)? ``None`` = complete.
PolicyFn = Callable[[Store, Multiset], Optional[PendingAsync]]


class ScheduleError(RuntimeError):
    """The policy selected a PA that is not pending, or diverged."""


def policy_by_key(
    eliminated: Iterable[str],
    key: Callable[[Store, PendingAsync], Tuple],
) -> PolicyFn:
    """The min-key policy: among pending PAs to ``eliminated``, pick the one
    with the smallest key (keys may read the global store, e.g. to order a
    ring relative to the maximum-id node in Chang-Roberts)."""
    names = set(eliminated)

    def policy(global_store: Store, pending: Multiset) -> Optional[PendingAsync]:
        candidates = [p for p in pending.support() if p.action in names]
        if not candidates:
            return None
        return min(candidates, key=lambda p: key(global_store, p))

    return policy


def _prefix_closure(
    program: Program,
    policy: PolicyFn,
    start_global: Store,
    start_pending: Multiset,
    max_prefixes: int,
) -> Iterator[Transition]:
    """All states reachable by running the policy-driven schedule, each as a
    transition (endpoint global store, still-pending PAs)."""
    seen: Set[Transition] = set()
    stack: List[Tuple[Store, Multiset]] = [(start_global, start_pending)]
    while stack:
        global_store, pending = stack.pop()
        prefix = Transition(global_store, pending)
        if prefix in seen:
            continue
        seen.add(prefix)
        if len(seen) > max_prefixes:
            raise ScheduleError(
                f"policy produced more than {max_prefixes} prefixes "
                f"(diverging schedule?)"
            )
        yield prefix
        chosen = policy(global_store, pending)
        if chosen is None:
            continue
        if chosen not in pending:
            raise ScheduleError(f"policy selected non-pending PA {chosen!r}")
        action = program[chosen.action]
        state = combine(global_store, chosen.locals)
        if not action.gate(state):
            # The schedule would fail here; the prefix stays a dead end and
            # the gate obligation resurfaces in condition I3.
            continue
        remaining = pending.remove(chosen)
        for tr in action.transitions(state):
            stack.append((tr.new_global, remaining.union(tr.created)))


def invariant_from_policy(
    program: Program,
    m_name: str,
    policy: PolicyFn,
    name: str = "Inv",
    max_prefixes: int = 200_000,
) -> Action:
    """The invariant action induced by a scheduling policy.

    Its transitions from :math:`\\sigma` are: one transition of :math:`M`
    (base case, hence I1 holds by construction) extended by every prefix of
    the policy-driven sequential execution of the created PAs. The gate is
    :math:`M`'s gate.
    """
    m_action = program[m_name]

    def transitions(sigma: Store) -> Iterator[Transition]:
        emitted: Set[Transition] = set()
        for t0 in m_action.transitions(sigma):
            for prefix in _prefix_closure(
                program, policy, t0.new_global, t0.created, max_prefixes
            ):
                if prefix not in emitted:
                    emitted.add(prefix)
                    yield prefix

    return Action(name, m_action.gate, transitions, m_action.params)


def choice_from_policy(policy: PolicyFn) -> ChoiceFn:
    """The IS choice function induced by a policy: applied to the endpoint
    of an invariant transition."""

    def choose(_sigma: Store, t: Transition) -> PendingAsync:
        chosen = policy(t.new_global, t.created)
        if chosen is None:
            raise ValueError("choice called on a transition without PAs to E")
        return chosen

    return choose
