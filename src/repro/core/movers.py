"""Mover types and commutativity checks (Section 3, "Left movers").

An action ``l`` is a **left mover** w.r.t. an action ``x`` if

1. the gate of ``l`` is *forward-preserved* by ``x``,
2. the gate of ``x`` is *backward-preserved* by ``l``,
3. ``l`` *commutes to the left* of ``x`` (executing ``x`` then ``l`` can be
   replaced by ``l`` then ``x`` with the same final global store and the
   same created pending asyncs), and
4. ``l`` is *non-blocking* (has a transition from every store in its gate).

``l`` is a left mover w.r.t. a program if it is a left mover w.r.t. every
action of the program. Right movers are the mirror image used by Lipton
reduction (``repro.reduction``). All conditions are discharged by exhaustive
enumeration over a :class:`~repro.core.universe.StoreUniverse`, whose PA
context encodes CIVL's linear-permission discipline (which PAs may coexist).

For bulk mover-type inference use :class:`MoverOracle`, which memoizes
action outcomes and stops at the first counterexample.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Tuple

from ..diagnose.witness import COUNTEREXAMPLE_KEEP, CommutationWitness, GateWitness
from .action import Action
from .cache import CachedAction, active_cache
from .columnar import left_mover_condition_columnar
from .program import Program
from .refinement import CheckResult, _fail
from .store import Store, combine
from .universe import StoreUniverse

__all__ = [
    "MoverType",
    "MoverOracle",
    "LM_CONDITION_ORDER",
    "left_mover_condition",
    "left_mover_conditions",
    "is_left_mover",
    "is_left_mover_wrt_program",
    "is_right_mover",
    "infer_mover_type",
]

#: Canonical order of the four left-mover conditions — the order
#: :func:`is_left_mover` evaluates and concatenates them in. The
#: obligation engine shards LM pair checks along this order (see
#: ``repro.engine.obligations``), so merged shard results reproduce the
#: unsharded result verbatim.
LM_CONDITION_ORDER = (
    "forward_preservation",
    "backward_preservation",
    "commutation",
    "non_blocking",
)


class MoverType(enum.Enum):
    """Lipton mover types."""

    BOTH = "both"
    LEFT = "left"
    RIGHT = "right"
    NON = "non"

    @property
    def is_left(self) -> bool:
        return self in (MoverType.LEFT, MoverType.BOTH)

    @property
    def is_right(self) -> bool:
        return self in (MoverType.RIGHT, MoverType.BOTH)


#: Memoizing action view, promoted to ``repro.core.cache`` (kept under the
#: historical name for the mover-oracle internals).
_CachedAction = CachedAction


def _cached(action) -> CachedAction:
    """A memoized view of ``action`` through the process-wide evaluation
    cache, so gate/transition enumerations are shared across all mover and
    IS obligations of a discharge run. Falls back to a private memo when
    caching is disabled (see :func:`repro.core.cache.caching_disabled`)."""
    if isinstance(action, CachedAction):
        return action
    cache = active_cache()
    if cache is not None:
        return cache.cached(action)
    return CachedAction(action)


def _gate_forward_preserved(
    l, x, universe: StoreUniverse, fail_fast: bool = False, globals_subset=None
) -> CheckResult:
    """Condition (1): ρ_l stays true across any gate-satisfying x step."""
    fast = left_mover_condition_columnar(
        "forward_preservation", l, x, universe, fail_fast, globals_subset
    )
    if fast is not None:
        return fast
    result = CheckResult(f"gate of {l.name} forward-preserved by {x.name}", True)
    for g in universe.globals_ if globals_subset is None else globals_subset:
        for ll in universe.locals_for(l.name):
            if not l.gate(combine(g, ll)):
                continue
            for lx in universe.locals_for(x.name):
                if not universe.pair_ok(g, l.name, ll, x.name, lx):
                    continue
                state_x = combine(g, lx)
                if not x.gate(state_x):
                    continue
                for tr in x.transitions(state_x):
                    result.checked += 1
                    if not l.gate(combine(tr.new_global, ll)):
                        _fail(
                            result,
                            CommutationWitness(
                                reason="gate lost",
                                check="forward-preservation",
                                actors=(l.name, x.name),
                                global_store=g,
                                left_locals=ll,
                                right_locals=lx,
                                first_transition=tr,
                            ),
                        )
                        if fail_fast:
                            return result
    return result


def _gate_backward_preserved(
    l, x, universe: StoreUniverse, fail_fast: bool = False, globals_subset=None
) -> CheckResult:
    """Condition (2): if ρ_x holds after an l step, it held before."""
    fast = left_mover_condition_columnar(
        "backward_preservation", l, x, universe, fail_fast, globals_subset
    )
    if fast is not None:
        return fast
    result = CheckResult(f"gate of {x.name} backward-preserved by {l.name}", True)
    for g in universe.globals_ if globals_subset is None else globals_subset:
        for ll in universe.locals_for(l.name):
            state_l = combine(g, ll)
            if not l.gate(state_l):
                continue
            for tr in l.transitions(state_l):
                for lx in universe.locals_for(x.name):
                    if not universe.pair_ok(g, l.name, ll, x.name, lx):
                        continue
                    result.checked += 1
                    if x.gate(combine(tr.new_global, lx)) and not x.gate(
                        combine(g, lx)
                    ):
                        _fail(
                            result,
                            CommutationWitness(
                                reason="gate introduced",
                                check="backward-preservation",
                                actors=(l.name, x.name),
                                global_store=g,
                                left_locals=ll,
                                right_locals=lx,
                                first_transition=tr,
                            ),
                        )
                        if fail_fast:
                            return result
    return result


def _commutes_left(
    l, x, universe: StoreUniverse, fail_fast: bool = False, globals_subset=None
) -> CheckResult:
    """Condition (3): every x;l execution has a matching l;x execution."""
    fast = left_mover_condition_columnar(
        "commutation", l, x, universe, fail_fast, globals_subset
    )
    if fast is not None:
        return fast
    result = CheckResult(f"{l.name} commutes to the left of {x.name}", True)
    for g in universe.globals_ if globals_subset is None else globals_subset:
        for ll in universe.locals_for(l.name):
            if not l.gate(combine(g, ll)):
                continue
            for lx in universe.locals_for(x.name):
                if not universe.pair_ok(g, l.name, ll, x.name, lx):
                    continue
                state_x = combine(g, lx)
                if not x.gate(state_x):
                    continue
                for tr_x in x.transitions(state_x):
                    mid = tr_x.new_global
                    state_l = combine(mid, ll)
                    for tr_l in l.transitions(state_l):
                        result.checked += 1
                        if not _has_swapped(l, x, g, ll, lx, tr_x, tr_l):
                            _fail(
                                result,
                                CommutationWitness(
                                    reason="no matching l-then-x execution",
                                    check="commutation",
                                    actors=(l.name, x.name),
                                    global_store=g,
                                    left_locals=ll,
                                    right_locals=lx,
                                    first_transition=tr_x,
                                    second_transition=tr_l,
                                ),
                            )
                            if fail_fast:
                                return result
    return result


def _has_swapped(l, x, g, ll, lx, tr_x, tr_l) -> bool:
    """∃ĝ: l from g reaches ĝ with tr_l's PAs, then x from ĝ reaches the
    same final global with tr_x's PAs."""
    for tr_l2 in l.transitions(combine(g, ll)):
        if tr_l2.created != tr_l.created:
            continue
        for tr_x2 in x.transitions(combine(tr_l2.new_global, lx)):
            if tr_x2.created == tr_x.created and tr_x2.new_global == tr_l.new_global:
                return True
    return False


def _non_blocking(
    l, universe: StoreUniverse, fail_fast: bool = False, globals_subset=None
) -> CheckResult:
    """Condition (4): the action has a transition from every gate store."""
    fast = left_mover_condition_columnar(
        "non_blocking", l, l, universe, fail_fast, globals_subset
    )
    if fast is not None:
        return fast
    result = CheckResult(f"{l.name} non-blocking", True)
    for g in universe.globals_ if globals_subset is None else globals_subset:
        for ll in universe.locals_for(l.name):
            if not universe.single_ok(g, l.name, ll):
                continue
            state = combine(g, ll)
            if not l.gate(state):
                continue
            result.checked += 1
            if not l.transitions(state):
                _fail(
                    result,
                    GateWitness(
                        reason="blocks in gate-satisfying store",
                        check="non-blocking",
                        actors=(l.name,),
                        state=state,
                    ),
                )
                if fail_fast:
                    return result
    return result


_LM_CONDITION_FNS = {
    "forward_preservation": _gate_forward_preserved,
    "backward_preservation": _gate_backward_preserved,
    "commutation": _commutes_left,
    "non_blocking": lambda l, x, universe, fail_fast=False, globals_subset=None: (
        _non_blocking(l, universe, fail_fast, globals_subset)
    ),
}


def left_mover_condition(
    l: Action,
    x: Action,
    universe: StoreUniverse,
    condition: str,
    globals_subset=None,
    fail_fast: bool = False,
) -> CheckResult:
    """One of the four left-mover conditions of ``l`` w.r.t. ``x``,
    restricted to a slice of the universe's globals.

    The obligation engine's unit of LM work: for a fixed condition, the
    enumeration is a loop over global stores, so the full condition result
    is the order-preserving concatenation of its ``globals_subset`` slices
    — same ``checked`` total, same counterexample prefix. ``condition``
    must come from :data:`LM_CONDITION_ORDER`.
    """
    try:
        fn = _LM_CONDITION_FNS[condition]
    except KeyError:
        raise ValueError(f"unknown left-mover condition {condition!r}") from None
    return fn(
        _cached(l), _cached(x), universe,
        fail_fast=fail_fast, globals_subset=globals_subset,
    )


def left_mover_conditions(
    l: Action, x: Action, universe: StoreUniverse
) -> Dict[str, CheckResult]:
    """The four left-mover conditions of ``l`` w.r.t. ``x``, individually."""
    lc, xc = _cached(l), _cached(x)
    return {
        "forward_preservation": _gate_forward_preserved(lc, xc, universe),
        "backward_preservation": _gate_backward_preserved(lc, xc, universe),
        "commutation": _commutes_left(lc, xc, universe),
        "non_blocking": _non_blocking(lc, universe),
    }


def _combine_conditions(name: str, conditions: Dict[str, CheckResult]) -> CheckResult:
    result = CheckResult(name, True)
    for condition in conditions.values():
        result.checked += condition.checked
        if not condition.holds:
            result.holds = False
            result.counterexamples.extend(
                cx.with_prefix(condition.name) for cx in condition.counterexamples
            )
    del result.counterexamples[COUNTEREXAMPLE_KEEP:]
    return result


def is_left_mover(
    l: Action, x: Action, universe: StoreUniverse, fail_fast: bool = False
) -> CheckResult:
    """Combined left-mover check of ``l`` w.r.t. a single action ``x``."""
    lc, xc = _cached(l), _cached(x)
    conditions = {
        "forward_preservation": _gate_forward_preserved(lc, xc, universe, fail_fast),
        "backward_preservation": _gate_backward_preserved(lc, xc, universe, fail_fast),
        "commutation": _commutes_left(lc, xc, universe, fail_fast),
        "non_blocking": _non_blocking(lc, universe, fail_fast),
    }
    return _combine_conditions(f"{l.name} left mover wrt {x.name}", conditions)


def is_right_mover(
    r: Action, x: Action, universe: StoreUniverse, fail_fast: bool = False
) -> CheckResult:
    """Right-mover check of ``r`` w.r.t. ``x``.

    ``r`` may commute to the right of ``x``: every ``r;x`` execution has a
    matching ``x;r`` execution, and moving ``x`` earlier neither introduces
    a failure of ``x`` (gate backward-preservation by ``r``) nor destroys a
    failure of ``r`` (gate forward-preservation by ``x``). The commutation
    diagram of ``r;x -> x;r`` is exactly condition (3) with the roles of
    the two actions swapped.
    """
    rc, xc = _cached(r), _cached(x)
    conditions = {
        "commutation": _commutes_left(xc, rc, universe, fail_fast),
        "backward_preservation": _gate_backward_preserved(rc, xc, universe, fail_fast),
        "forward_preservation": _gate_forward_preserved(rc, xc, universe, fail_fast),
    }
    return _combine_conditions(f"{r.name} right mover wrt {x.name}", conditions)


def is_left_mover_wrt_program(
    l: Action,
    program: Program,
    universe: StoreUniverse,
    skip: Iterable[str] = (),
) -> CheckResult:
    """``LeftMover(l, P)``: left mover w.r.t. every action of ``program``.

    ``skip`` lists action names to exclude (e.g. in iterated IS, actions
    already eliminated from the pool, cf. Section 5.3).
    """
    skipped = set(skip)
    lc = _cached(l)
    result = CheckResult(f"{l.name} left mover wrt program", True)
    for name, x in program.actions():
        if name in skipped:
            continue
        sub = is_left_mover(lc, _cached(x), universe)  # type: ignore[arg-type]
        result.checked += sub.checked
        if not sub.holds:
            result.holds = False
            result.counterexamples.extend(
                cx.with_prefix(f"wrt {name}") for cx in sub.counterexamples
            )
    del result.counterexamples[COUNTEREXAMPLE_KEEP:]
    return result


class MoverOracle:
    """Memoized, fail-fast mover-type inference over a whole program.

    Used by Lipton reduction, where every action is classified against
    every other: action outcomes are cached per store and each pairwise
    check stops at its first counterexample.
    """

    def __init__(self, program: Program, universe: StoreUniverse):
        self.program = program
        self.universe = universe
        self._cached = {name: _cached(a) for name, a in program.actions()}
        self._left: Dict[Tuple[str, str], bool] = {}
        self._right: Dict[Tuple[str, str], bool] = {}

    def left(self, l_name: str, x_name: str) -> bool:
        key = (l_name, x_name)
        if key not in self._left:
            self._left[key] = is_left_mover(
                self._cached[l_name],  # type: ignore[arg-type]
                self._cached[x_name],  # type: ignore[arg-type]
                self.universe,
                fail_fast=True,
            ).holds
        return self._left[key]

    def right(self, r_name: str, x_name: str) -> bool:
        key = (r_name, x_name)
        if key not in self._right:
            self._right[key] = is_right_mover(
                self._cached[r_name],  # type: ignore[arg-type]
                self._cached[x_name],  # type: ignore[arg-type]
                self.universe,
                fail_fast=True,
            ).holds
        return self._right[key]

    def mover_type(self, name: str, skip: Iterable[str] = ()) -> MoverType:
        skipped = set(skip)
        left = True
        right = True
        for other in self.program.action_names():
            if other in skipped:
                continue
            if left and not self.left(name, other):
                left = False
            if right and not self.right(name, other):
                right = False
            if not left and not right:
                return MoverType.NON
        if left and right:
            return MoverType.BOTH
        return MoverType.LEFT if left else MoverType.RIGHT


def infer_mover_type(
    action: Action,
    program: Program,
    universe: StoreUniverse,
    skip: Iterable[str] = (),
) -> MoverType:
    """Infer the mover type of ``action`` against the pool of actions in
    ``program`` (convenience wrapper over :class:`MoverOracle`)."""
    oracle = MoverOracle(program, universe)
    oracle._cached[action.name] = _cached(action)
    return oracle.mover_type(action.name, skip=skip)
