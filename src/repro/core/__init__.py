"""Core formalization: actions, programs, semantics, movers, and the IS rule.

This package implements Sections 3 and 4 of *Inductive Sequentialization of
Asynchronous Programs* (PLDI 2020): stores, gated atomic actions with
pending asyncs, the operational semantics of configurations, refinement
(Definitions 3.1/3.2), left/right movers, well-founded measures, and the IS
proof rule of Figure 3.
"""

from .action import (
    Action,
    PendingAsync,
    Transition,
    assert_action,
    havoc_action,
    pa,
    pas,
    skip_action,
    transition,
)
from .explore import (
    ExplorationBudgetExceeded,
    ExplorationResult,
    InstanceSummary,
    explore,
    good_and_trans,
    instance_summary,
    random_execution,
    reachable_globals,
    terminating_executions,
)
from .context import GhostContext, InstanceContext, NoContext, PAContext
from .mapping import FrozenDict
from .movers import (
    MoverOracle,
    MoverType,
    infer_mover_type,
    is_left_mover,
    is_left_mover_wrt_program,
    is_right_mover,
    left_mover_conditions,
)
from .multiset import EMPTY, Multiset
from .program import MAIN, Program
from .refinement import (
    CheckResult,
    check_action_refinement,
    check_program_refinement,
)
from .semantics import (
    Config,
    Execution,
    FAILURE,
    Failure,
    Step,
    initial_config,
    steps_from,
)
from .schedule import (
    PolicyFn,
    ScheduleError,
    choice_from_policy,
    invariant_from_policy,
    policy_by_key,
)
from .sequentialize import (
    ChoiceFn,
    ISApplication,
    ISResult,
    choice_by_priority,
    derive_m_prime,
    pas_to,
)
from .store import EMPTY_STORE, Store, combine
from .universe import StoreUniverse
from .wellfounded import (
    LexicographicMeasure,
    channel_size,
    global_counter,
    pa_count,
    pa_potential,
    total_pa_count,
)

__all__ = [
    "Action",
    "PendingAsync",
    "Transition",
    "assert_action",
    "havoc_action",
    "pa",
    "pas",
    "skip_action",
    "transition",
    "ExplorationBudgetExceeded",
    "ExplorationResult",
    "InstanceSummary",
    "explore",
    "good_and_trans",
    "instance_summary",
    "random_execution",
    "reachable_globals",
    "terminating_executions",
    "GhostContext",
    "InstanceContext",
    "NoContext",
    "PAContext",
    "FrozenDict",
    "MoverOracle",
    "MoverType",
    "infer_mover_type",
    "is_left_mover",
    "is_left_mover_wrt_program",
    "is_right_mover",
    "left_mover_conditions",
    "EMPTY",
    "Multiset",
    "MAIN",
    "Program",
    "CheckResult",
    "check_action_refinement",
    "check_program_refinement",
    "Config",
    "Execution",
    "FAILURE",
    "Failure",
    "Step",
    "initial_config",
    "steps_from",
    "PolicyFn",
    "ScheduleError",
    "choice_from_policy",
    "invariant_from_policy",
    "policy_by_key",
    "ChoiceFn",
    "ISApplication",
    "ISResult",
    "choice_by_priority",
    "derive_m_prime",
    "pas_to",
    "EMPTY_STORE",
    "Store",
    "combine",
    "StoreUniverse",
    "LexicographicMeasure",
    "channel_size",
    "global_counter",
    "pa_count",
    "pa_potential",
    "total_pa_count",
]
