"""The one canonical hash for unordered ``(key, value)`` collections.

:class:`~repro.core.store.Store`, :class:`~repro.core.multiset.Multiset`
and :class:`~repro.core.mapping.FrozenDict` are all content-hashed
containers whose equality ignores insertion order. Their ``__hash__``
implementations used to be three copy-pasted ``hash(frozenset(...))``
expressions — three places for the digest to silently drift apart (and the
store interner and the rcache fingerprints both assume eq/hash agree).
This module is the single shared definition; the hypothesis properties in
``tests/core/test_hashing.py`` pin eq/hash consistency for all three
containers against it.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple

__all__ = ["unordered_items_hash", "structural_key"]


def unordered_items_hash(items: Iterable[Tuple[Hashable, Hashable]]) -> int:
    """Order-insensitive hash of an ``(key, value)`` item collection.

    Two collections with equal item *sets* hash equal regardless of
    iteration order — exactly the invariant ``dict``-backed equality
    needs. ``frozenset`` hashing already mixes the per-item hashes
    commutatively and is C-implemented; wrapping it here (rather than
    inlining it at every call site) is what keeps the three containers'
    digests provably identical.
    """
    return hash(frozenset(items))


def structural_key(value) -> str:
    """A deterministic total order key for protocol values.

    ``unordered_items_hash`` (above) inherits Python's per-process string
    hashing, so it cannot order anything across ``PYTHONHASHSEED``
    boundaries; ``repr`` is worse — address-bearing reprs make two runs
    disagree about the same store. This renders a value to a *structural*
    string recursively: primitives with a type tag, sequences elementwise,
    unordered containers by sorted element keys. Two equal values always
    render identically, two unequal values of the repo's store vocabulary
    render differently, and the rendering is byte-identical across
    processes, hash seeds, and dict insertion orders.

    It is the sort key for harvested store universes
    (:meth:`~repro.core.universe.StoreUniverse.from_reachable`) and the
    lexicographic order under which ``repro.core.symmetry`` picks orbit
    representatives — both need exactly this cross-process stability.
    """
    if value is None:
        return "N"
    if isinstance(value, (bool, int, float)):
        # One numeric rendering for all three types: Python's container
        # equality is cross-type (``False == 0 == 0.0``), and the key
        # must agree with ``==`` or canonicalization would not be
        # well-defined on store equality classes.
        try:
            if value == int(value):
                return f"n{int(value)}"
        except (OverflowError, ValueError):
            pass  # inf / nan: fall through to repr
        return f"n{value!r}"
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if isinstance(value, bytes):
        return f"y{len(value)}:{value.hex()}"
    if isinstance(value, (tuple, list)):
        return "t(" + ",".join(structural_key(v) for v in value) + ")"
    if isinstance(value, (set, frozenset)):
        return "S{" + ",".join(sorted(structural_key(v) for v in value)) + "}"
    counts = getattr(value, "counts", None)
    if callable(counts):
        # Multiset-shaped: unordered (element, multiplicity) pairs.
        rendered = sorted(
            structural_key(e) + "*" + str(c) for e, c in counts()
        )
        return "m{" + ",".join(rendered) + "}"
    action = getattr(value, "action", None)
    locals_ = getattr(value, "locals", None)
    if isinstance(action, str) and locals_ is not None:
        # PendingAsync-shaped (duck-typed to avoid a circular import).
        return "p(" + action + ";" + structural_key(locals_) + ")"
    items = getattr(value, "items", None)
    if callable(items):
        # Store / FrozenDict / dict: unordered (key, value) pairs.
        rendered = sorted(
            structural_key(k) + "=" + structural_key(v) for k, v in items()
        )
        return type(value).__name__ + "{" + ",".join(rendered) + "}"
    # Last resort for values outside the store vocabulary; repr must then
    # be deterministic for the ordering to be (same caveat stable_digest
    # documents for unfingerprintable values).
    return "r" + repr(value)
