"""The one canonical hash for unordered ``(key, value)`` collections.

:class:`~repro.core.store.Store`, :class:`~repro.core.multiset.Multiset`
and :class:`~repro.core.mapping.FrozenDict` are all content-hashed
containers whose equality ignores insertion order. Their ``__hash__``
implementations used to be three copy-pasted ``hash(frozenset(...))``
expressions — three places for the digest to silently drift apart (and the
store interner and the rcache fingerprints both assume eq/hash agree).
This module is the single shared definition; the hypothesis properties in
``tests/core/test_hashing.py`` pin eq/hash consistency for all three
containers against it.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple

__all__ = ["unordered_items_hash"]


def unordered_items_hash(items: Iterable[Tuple[Hashable, Hashable]]) -> int:
    """Order-insensitive hash of an ``(key, value)`` item collection.

    Two collections with equal item *sets* hash equal regardless of
    iteration order — exactly the invariant ``dict``-backed equality
    needs. ``frozenset`` hashing already mixes the per-item hashes
    commutatively and is C-implemented; wrapping it here (rather than
    inlining it at every call site) is what keeps the three containers'
    digests provably identical.
    """
    return hash(frozenset(items))
