"""Stores: immutable assignments of values to variables.

Section 3 of the paper partitions variables into globals :math:`V_G` and
locals :math:`V_L`; a store :math:`\\sigma : V \\to D` assigns a value to
every variable, and :math:`g \\cdot \\ell` denotes the combination of a
global store ``g`` and a local store ``ℓ``.

In this implementation a :class:`Store` is an immutable, hashable mapping
from variable names (strings) to hashable values. The global/local split is
by convention: an action's local store carries its parameters (e.g. the node
id ``i`` of ``Broadcast(i)``), while the global store carries protocol state
and channels. :func:`combine` implements :math:`g \\cdot \\ell` and
:meth:`Store.globals_of` projects the global part back out.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple

__all__ = ["Store", "EMPTY_STORE", "combine"]

Value = Hashable


class Store:
    """An immutable mapping from variable names to (hashable) values.

    >>> s = Store({"x": 1, "y": 2})
    >>> s["x"]
    1
    >>> s.set("x", 7)["x"]
    7
    >>> s["x"]  # the original is unchanged
    1
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Mapping[str, Value] = ()):
        self._data: Dict[str, Value] = dict(data)
        self._hash = None

    def __getitem__(self, name: str) -> Value:
        return self._data[name]

    def get(self, name: str, default: Value = None) -> Value:
        return self._data.get(name, default)

    def set(self, name: str, value: Value) -> "Store":
        """Return a new store with ``name`` bound to ``value``."""
        data = dict(self._data)
        data[name] = value
        return Store(data)

    def update(self, changes: Mapping[str, Value]) -> "Store":
        """Return a new store applying all bindings in ``changes``."""
        data = dict(self._data)
        data.update(changes)
        return Store(data)

    def without(self, names: Iterable[str]) -> "Store":
        """Return a new store with the given variables removed."""
        drop = set(names)
        return Store({k: v for k, v in self._data.items() if k not in drop})

    def restrict(self, names: Iterable[str]) -> "Store":
        """Return a new store keeping only the given variables."""
        keep = set(names)
        return Store({k: v for k, v in self._data.items() if k in keep})

    def globals_of(self, global_vars: Iterable[str]) -> "Store":
        """Project out the global part of a combined store."""
        return self.restrict(global_vars)

    def merge(self, other: "Store") -> "Store":
        """Combine two stores; ``other`` wins on overlapping variables."""
        data = dict(self._data)
        data.update(other._data)
        return Store(data)

    def variables(self) -> Iterator[str]:
        return iter(self._data)

    def items(self) -> Iterator[Tuple[str, Value]]:
        return iter(self._data.items())

    def as_dict(self) -> Dict[str, Value]:
        """A mutable copy of the underlying mapping."""
        return dict(self._data)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Store):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._data.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._data.items()))
        return f"Store({inner})"


#: The empty store (e.g. the local store of a parameterless action).
EMPTY_STORE = Store()


@lru_cache(maxsize=262_144)
def combine(global_store: Store, local_store: Store) -> Store:
    """The paper's :math:`g \\cdot \\ell` combination of stores.

    Local variables shadow globals of the same name; protocols in this
    repository keep the two namespaces disjoint, so the distinction never
    matters in practice.

    This is the single authoritative definition (``repro.core.movers``
    re-exports it). Memoized: exploration and the mover/IS checks recombine
    the same (global, local) pairs many times, and stores are immutable.
    """
    return global_store.merge(local_store)
