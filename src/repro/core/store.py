"""Stores: immutable assignments of values to variables.

Section 3 of the paper partitions variables into globals :math:`V_G` and
locals :math:`V_L`; a store :math:`\\sigma : V \\to D` assigns a value to
every variable, and :math:`g \\cdot \\ell` denotes the combination of a
global store ``g`` and a local store ``ℓ``.

In this implementation a :class:`Store` is an immutable, hashable mapping
from variable names (strings) to hashable values. The global/local split is
by convention: an action's local store carries its parameters (e.g. the node
id ``i`` of ``Broadcast(i)``), while the global store carries protocol state
and channels. :func:`combine` implements :math:`g \\cdot \\ell` and
:meth:`Store.globals_of` projects the global part back out.

Interning
---------

The IS conditions quantify over *finite* store universes, so the same few
thousand stores are combined, hashed and compared millions of times per
discharge run. :class:`StoreInterner` maps every distinct store to a small
integer exactly once (structural sharing: equal stores resolve to one
canonical object and one id), which turns the engine's memo keys into
ints, lets predicate evaluation run over integer-indexed columns (see
``repro.core.columnar``), and makes fork-pool work shipping a matter of
int ranges over a copy-on-write-inherited table. Intern ids are
process-local and ephemeral — persistent fingerprints
(``repro.engine.rcache``) always hash canonical store *contents*, never
ids, so cached verification results survive interner resets and process
boundaries.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from .hashing import unordered_items_hash

__all__ = [
    "Store",
    "EMPTY_STORE",
    "combine",
    "StoreInterner",
    "store_interner",
    "intern_epoch",
    "reset_store_interner",
    "interning_active",
    "interning_disabled",
    "memo_key",
]

Value = Hashable


class Store:
    """An immutable mapping from variable names to (hashable) values.

    >>> s = Store({"x": 1, "y": 2})
    >>> s["x"]
    1
    >>> s.set("x", 7)["x"]
    7
    >>> s["x"]  # the original is unchanged
    1
    """

    __slots__ = ("_data", "_hash", "_iid")

    def __init__(self, data: Mapping[str, Value] = ()):
        self._data: Dict[str, Value] = dict(data)
        self._hash = None
        self._iid = None

    def __getitem__(self, name: str) -> Value:
        return self._data[name]

    def get(self, name: str, default: Value = None) -> Value:
        return self._data.get(name, default)

    def set(self, name: str, value: Value) -> "Store":
        """Return a new store with ``name`` bound to ``value``."""
        data = dict(self._data)
        data[name] = value
        return Store(data)

    def update(self, changes: Mapping[str, Value]) -> "Store":
        """Return a new store applying all bindings in ``changes``."""
        data = dict(self._data)
        data.update(changes)
        return Store(data)

    def without(self, names: Iterable[str]) -> "Store":
        """Return a new store with the given variables removed."""
        drop = set(names)
        return Store({k: v for k, v in self._data.items() if k not in drop})

    def restrict(self, names: Iterable[str]) -> "Store":
        """Return a new store keeping only the given variables."""
        keep = set(names)
        return Store({k: v for k, v in self._data.items() if k in keep})

    def globals_of(self, global_vars: Iterable[str]) -> "Store":
        """Project out the global part of a combined store."""
        return self.restrict(global_vars)

    def merge(self, other: "Store") -> "Store":
        """Combine two stores; ``other`` wins on overlapping variables."""
        data = dict(self._data)
        data.update(other._data)
        return Store(data)

    def variables(self) -> Iterator[str]:
        return iter(self._data)

    def items(self) -> Iterator[Tuple[str, Value]]:
        return iter(self._data.items())

    def as_dict(self) -> Dict[str, Value]:
        """A mutable copy of the underlying mapping."""
        return dict(self._data)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Store):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = unordered_items_hash(self._data.items())
        return self._hash

    def __getstate__(self):
        # Only the contents travel across pickling: the cached hash is
        # cheap to recompute and the intern tag is meaningless in any
        # other process (ids are process-local).
        return self._data

    def __setstate__(self, state):
        self._data = state
        self._hash = None
        self._iid = None

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._data.items()))
        return f"Store({inner})"


#: The empty store (e.g. the local store of a parameterless action).
EMPTY_STORE = Store()


class StoreInterner:
    """Process-wide intern table: every distinct store gets one small int.

    ``intern`` resolves a store to its id (assigning the next id on first
    sight) and stamps the id onto the object, so repeat lookups are an
    attribute read instead of a dict probe. The stamp carries the
    interner's *epoch* (a fresh sentinel per table), so a stamp minted
    against a cleared or replaced table is detected and re-resolved rather
    than trusted — a stale id can never alias a different store.

    The interner also owns the memo for :func:`combine` (g·l): keyed by
    the ``(global id, local id)`` int pair, with the result canonicalized
    through the table so equal combined stores are one object everywhere.
    This replaces the old module-level ``lru_cache``, whose entries
    survived across protocol runs and test cases with no way to account
    for or release them; the interner is explicitly scoped — ``clear()``
    drops everything, and ``repro.core.cache.reset_process_cache`` calls
    it so eval-cache and interner lifetimes stay coupled (int memo keys
    must never outlive the table that minted them).

    Forked pool workers inherit the parent's table through copy-on-write:
    ids agree across the pool by construction, and a child's inserts land
    on its own pages.
    """

    __slots__ = (
        "_ids",
        "_stores",
        "_combined",
        "_dict_combined",
        "_epoch",
        "disabled_depth",
        "hits",
        "misses",
    )

    def __init__(self) -> None:
        self._ids: Dict[Store, int] = {}
        self._stores: List[Store] = []
        self._combined: Dict[Tuple[int, int], Store] = {}
        # Store-keyed combine memo used only while interning is disabled —
        # the faithful stand-in for the retired ``lru_cache`` so benchmarks
        # can still measure the dict-shaped representation as a baseline.
        self._dict_combined: Dict[Tuple[Store, Store], Store] = {}
        self._epoch = object()
        # Re-entrant :class:`interning_disabled` nesting depth. Lives on
        # the interner (not as a module global) so :func:`combine`'s only
        # mutable referenced global is the interner itself, which the
        # persistent result cache digests as a constant token (see
        # ``repro.engine.rcache``) — memo contents never affect semantics.
        self.disabled_depth = 0
        self.hits = 0
        self.misses = 0

    def intern(self, store: Store) -> int:
        """The id of ``store`` (assigned on first sight, O(1) after)."""
        tag = store._iid
        if tag is not None and tag[0] is self._epoch:
            return tag[1]
        idx = self._ids.get(store)
        if idx is None:
            idx = len(self._stores)
            self._ids[store] = idx
            self._stores.append(store)
        store._iid = (self._epoch, idx)
        return idx

    def canonical(self, store: Store) -> Store:
        """The one shared object equal stores resolve to."""
        return self._stores[self.intern(store)]

    def store_of(self, idx: int) -> Store:
        """The canonical store with id ``idx``."""
        return self._stores[idx]

    def memo_key(self, store: Store):
        """Alias of :meth:`intern` under the name the memo layers use."""
        return self.intern(store)

    def combine(self, global_store: Store, local_store: Store) -> Store:
        """Memoized g·l, keyed by the ``(int, int)`` id pair."""
        key = (self.intern(global_store), self.intern(local_store))
        result = self._combined.get(key)
        if result is None:
            self.misses += 1
            result = self.canonical(global_store.merge(local_store))
            self._combined[key] = result
        else:
            self.hits += 1
        return result

    def combine_ids(self, gid: int, lid: int) -> Store:
        """g·l straight from intern ids (the columnar layer's entry)."""
        key = (gid, lid)
        result = self._combined.get(key)
        if result is None:
            self.misses += 1
            result = self.canonical(self._stores[gid].merge(self._stores[lid]))
            self._combined[key] = result
        else:
            self.hits += 1
        return result

    def clear(self) -> None:
        """Drop the table, the combine memo, and all outstanding id
        stamps (the epoch changes, so stamped stores re-resolve)."""
        self._ids.clear()
        self._stores.clear()
        self._combined.clear()
        self._epoch = object()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._stores)

    @property
    def combined_entries(self) -> int:
        return len(self._combined)

    def stats(self) -> Dict[str, int]:
        """Counters for ``cache_stats`` reporting: table size, combine
        memo size, and combine hit/miss counts."""
        return {
            "stores": len(self._stores),
            "combined": len(self._combined),
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self) -> str:
        return (
            f"StoreInterner({len(self._stores)} stores, "
            f"{len(self._combined)} combined, "
            f"{self.hits} hits / {self.misses} misses)"
        )


_INTERNER = StoreInterner()


def store_interner() -> StoreInterner:
    """The process's intern table (forked children share it COW)."""
    return _INTERNER


def intern_epoch() -> object:
    """Identity token of the current intern-table generation (changes on
    every :meth:`StoreInterner.clear`). Caches that key by intern ids but
    live outside :func:`repro.core.cache.reset_process_cache`'s reach —
    e.g. a long-lived :class:`~repro.core.universe.StoreUniverse`'s
    admissibility memos — compare it (by identity) to detect staleness."""
    return _INTERNER._epoch


def interning_active() -> bool:
    """False inside :func:`interning_disabled` blocks."""
    return not _INTERNER.disabled_depth


def memo_key(store: Store):
    """The key memo layers index evaluations by: the store's intern id
    (an int) normally, the store itself while interning is disabled.

    Int and Store keys can share a dict without aliasing (they never
    compare equal), so flipping the mode mid-process is safe — benchmarks
    still reset the caches between modes for honest measurements.
    """
    if _INTERNER.disabled_depth:
        return store
    return _INTERNER.intern(store)


class interning_disabled:
    """Fall back to the dict-shaped representation (re-entrant).

    Benchmarks use this to measure the pre-interning baseline for the
    per-layer attribution in BENCH_obligations.json: ``combine`` memoizes
    under ``(Store, Store)`` keys and evaluation memos key by the store
    object, exactly the retired representation. Columnar evaluation keys
    by intern ids, so disabling interning implies the columnar fast path
    is skipped too (``repro.core.columnar`` checks this flag).
    """

    def __enter__(self):
        _INTERNER.disabled_depth += 1
        return self

    def __exit__(self, *exc_info):
        _INTERNER.disabled_depth -= 1
        _INTERNER._dict_combined.clear()


def reset_store_interner() -> None:
    """Clear the process intern table.

    Int memo keys elsewhere (``repro.core.cache``, ``repro.core.columnar``)
    are minted from this table, so prefer
    :func:`repro.core.cache.reset_process_cache`, which resets all three
    layers together.
    """
    _INTERNER.clear()


def combine(global_store: Store, local_store: Store) -> Store:
    """The paper's :math:`g \\cdot \\ell` combination of stores.

    Local variables shadow globals of the same name; protocols in this
    repository keep the two namespaces disjoint, so the distinction never
    matters in practice.

    This is the single authoritative definition (``repro.core.movers``
    re-exports it). Memoized through the process :class:`StoreInterner`
    under ``(int, int)`` id keys — explicitly scoped (cleared with the
    interner) instead of the old module-level ``lru_cache``, which
    accumulated stores across runs forever.
    """
    itn = _INTERNER
    if itn.disabled_depth:
        key = (global_store, local_store)
        result = itn._dict_combined.get(key)
        if result is None:
            result = global_store.merge(local_store)
            itn._dict_combined[key] = result
        return result
    return itn.combine(global_store, local_store)


def _combine_cache_clear() -> None:
    """Back-compat shim for the old ``combine.cache_clear()`` call sites:
    clears the interner (table + memo) outright."""
    _INTERNER.clear()


combine.cache_clear = _combine_cache_clear  # type: ignore[attr-defined]
