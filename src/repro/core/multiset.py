"""Immutable, hashable multisets (bags).

Multisets are pervasive in the paper's formalization: the set of pending
asyncs :math:`\\Omega` attached to a configuration or created by a transition
is a *finite multiset* of pending asyncs, and the message channels of all
case-study protocols are bags of messages (modelling a network that can
reorder and duplicate deliveries).

The implementation stores elements in a canonical ``(element, count)``
mapping and freezes it, so multisets can be used as dictionary keys and as
parts of hashable configurations during state-space exploration.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Tuple

from .hashing import unordered_items_hash

__all__ = ["Multiset", "EMPTY"]


class Multiset:
    """An immutable multiset over hashable elements.

    Supports the operations used by the formal development: union
    (``+`` / :meth:`union`, written :math:`\\uplus` in the paper), strict
    element removal (:meth:`remove`), truncated difference
    (``-`` / :meth:`difference`), containment, counting, and iteration
    with multiplicity.

    The ``-`` operator takes a :class:`Multiset` right-hand side *only*
    and always means :meth:`difference`. Removing a single element is
    spelled :meth:`remove` — never ``-`` — so a multiset whose *elements*
    are themselves multisets cannot be silently misinterpreted (an earlier
    version dispatched ``m - x`` on ``isinstance(x, Multiset)``, which
    turned element removal of a multiset-valued element into a truncated
    difference over its contents).

    >>> m = Multiset(["a", "b", "a"])
    >>> m.count("a")
    2
    >>> sorted(m)
    ['a', 'a', 'b']
    >>> m.remove("a").count("a")
    1
    >>> (m - Multiset(["a", "a", "a"])).count("a")
    0
    """

    __slots__ = ("_counts", "_hash", "_size")

    def __init__(self, elements: Iterable[Hashable] = ()):
        counts: Dict[Hashable, int] = {}
        for element in elements:
            counts[element] = counts.get(element, 0) + 1
        self._counts = counts
        self._size = sum(counts.values())
        self._hash = None

    @classmethod
    def from_counts(cls, counts: Dict[Hashable, int]) -> "Multiset":
        """Build a multiset directly from an ``element -> count`` mapping.

        Entries with non-positive counts are dropped.
        """
        result = cls.__new__(cls)
        clean = {e: c for e, c in counts.items() if c > 0}
        result._counts = clean
        result._size = sum(clean.values())
        result._hash = None
        return result

    def count(self, element: Hashable) -> int:
        """Multiplicity of ``element`` (0 if absent)."""
        return self._counts.get(element, 0)

    def union(self, other: "Multiset") -> "Multiset":
        """Multiset union :math:`\\uplus` (multiplicities add up)."""
        counts = dict(self._counts)
        for element, count in other._counts.items():
            counts[element] = counts.get(element, 0) + count
        return Multiset.from_counts(counts)

    def add(self, element: Hashable, count: int = 1) -> "Multiset":
        """Return a new multiset with ``count`` extra copies of ``element``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        counts = dict(self._counts)
        counts[element] = counts.get(element, 0) + count
        return Multiset.from_counts(counts)

    def remove(self, element: Hashable, count: int = 1) -> "Multiset":
        """Return a new multiset with ``count`` copies of ``element`` removed.

        Raises :class:`KeyError` if fewer than ``count`` copies are present,
        mirroring the side condition of the paper's step rule, which only
        fires for a pending async actually present in the configuration.
        """
        present = self._counts.get(element, 0)
        if present < count:
            raise KeyError(element)
        counts = dict(self._counts)
        counts[element] = present - count
        return Multiset.from_counts(counts)

    def difference(self, other: "Multiset") -> "Multiset":
        """Multiset difference (truncated at zero)."""
        counts = dict(self._counts)
        for element, count in other._counts.items():
            counts[element] = counts.get(element, 0) - count
        return Multiset.from_counts(counts)

    def includes(self, other: "Multiset") -> bool:
        """True if ``other`` is a sub-multiset of ``self``."""
        return all(
            self._counts.get(element, 0) >= count
            for element, count in other._counts.items()
        )

    def support(self) -> Iterator[Hashable]:
        """Iterate over distinct elements (ignoring multiplicity)."""
        return iter(self._counts)

    def counts(self) -> Iterator[Tuple[Hashable, int]]:
        """Iterate over ``(element, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def __contains__(self, element: Hashable) -> bool:
        return element in self._counts

    def __iter__(self) -> Iterator[Hashable]:
        for element, count in self._counts.items():
            for _ in range(count):
                yield element

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __add__(self, other: "Multiset") -> "Multiset":
        if not isinstance(other, Multiset):
            return NotImplemented
        return self.union(other)

    def __sub__(self, other: "Multiset") -> "Multiset":
        if not isinstance(other, Multiset):
            return NotImplemented
        return self.difference(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = unordered_items_hash(self._counts.items())
        return self._hash

    def __repr__(self) -> str:
        if not self._counts:
            return "Multiset()"
        parts = []
        for element, count in sorted(self._counts.items(), key=repr):
            if count == 1:
                parts.append(repr(element))
            else:
                parts.append(f"{element!r}*{count}")
        return "Multiset({" + ", ".join(parts) + "})"


#: The empty multiset, shared since :class:`Multiset` is immutable.
EMPTY = Multiset()
