"""Columnar batch evaluation of IS predicates over interned universes.

The LM and I3 obligations enumerate millions of (global, local) combos per
discharge run, and the dict-shaped hot path paid a Python call plus a
hashed-dict probe per predicate per combo (``gate(combine(g, l))``,
``universe.pair_ok(...)``, ``transitions(...)`` — see the profile in
ROADMAP item 3). This module replaces those per-store calls with
*columns*: per-(action-view, local) arrays indexed by the global store's
intern id (``repro.core.store.StoreInterner``), filled in one batch pass
over the universe and extended lazily for successor globals discovered
while commuting actions. The inner loops of the four left-mover conditions
and of I3 then run on list indexing and small-int compares:

* **gate columns** — ``col[gid] -> bool`` for one (view, local) pair;
* **successor columns** — ``col[gid] -> ((tr, new_gid, created_cid), …)``
  with the transition's new global interned and its created-PA multiset
  mapped to a small int, so the commutation diagram chase
  (``_has_swapped``) compares ints instead of multisets;
* **admissibility tables** — pair/single decisions per PA context, keyed
  by the context's ``cache_key`` equivalence class of globals (the ghost
  multiset), computed once per class and shared by every global in it.

Semantics are *identical* to the dict-shaped oracle in
``repro.core.movers`` / ``ISApplication.check_i3``: the loops preserve the
exact enumeration order (global-major, then locals, then transitions), the
``checked`` counters increment at the same points, and witnesses carry the
same stores and transitions — ``tests/engine/test_columnar_differential.py``
asserts typed-identical :class:`CheckResult`s on all seven protocols. The
fast path steps aside (falling back to the oracle) while shared caching is
disabled, while interning is disabled, inside :func:`columnar_disabled`
blocks, and for PA contexts that declare their decisions uncachable.

Forked pool workers inherit the column store through fork copy-on-write
(the scheduler's warm-up pass builds the columns in the parent first), so
a worker starts from filled tables instead of re-deriving them. Columns
key by intern ids, so the store registers with
``repro.core.cache.register_reset_hook`` and resets together with the
interner and the evaluation cache. Persistent result fingerprints
(``repro.engine.rcache``) never see ids or columns — they hash canonical
store contents, which is what keeps warm re-verification valid across the
representation change.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..diagnose.witness import CommutationWitness, GateWitness
from .action import PendingAsync
from .cache import active_cache, register_reset_hook
from .refinement import CheckResult, _fail
from .store import Store, interning_active, store_interner

__all__ = [
    "ColumnarStore",
    "columnar_store",
    "columnar_active",
    "columnar_disabled",
    "left_mover_condition_columnar",
    "i3_fast_path",
]

_DISABLED_DEPTH = 0


class _Uncachable(Exception):
    """Raised when a PA context declares its decisions uncachable
    (``cache_key`` returned ``None``); the caller falls back to the
    dict-shaped oracle, which consults the context per store."""


def _view_key(view) -> Tuple[object, object]:
    """Columns are shared per underlying (gate, transitions) callable
    pair — the same identity the evaluation cache memoizes under — so the
    many Action wrappers the IS checks build around one invariant all hit
    the same columns."""
    action = getattr(view, "action", view)
    return (action.gate, action.transitions)


class _Admissibility:
    """Pair/single admissibility tables for one PA context.

    ``ck_col[gid]`` maps a global's intern id to the dense index of its
    ``cache_key`` equivalence class; ``reps[ck]`` keeps one representative
    global per class for lazy decision fills. Decisions are stored per
    class in small dicts keyed by that index — for the ghost context this
    collapses the ~2800 globals of a Paxos universe onto a few hundred
    ghost multisets, which is what removes ``pair_ok`` from the profile.
    """

    __slots__ = (
        "context",
        "ck_col",
        "ck_ids",
        "reps",
        "pair_cells",
        "single_cells",
        "row_memos",
        "_prefilled",
    )

    def __init__(self, context) -> None:
        self.context = context
        self.ck_col: List[Optional[int]] = []
        self.ck_ids: Dict[object, int] = {}
        self.reps: List[Store] = []
        self.pair_cells: Dict[Tuple, Dict[int, bool]] = {}
        self.single_cells: Dict[Tuple, Dict[int, bool]] = {}
        self.row_memos: Dict[Tuple, Dict[int, tuple]] = {}
        self._prefilled: object = None

    def prefill(self, globals_pool, gids, table_size: int) -> None:
        if self._prefilled is gids:
            return
        col = self.ck_col
        if len(col) < table_size:
            col.extend([None] * (table_size - len(col)))
        cache_key = self.context.cache_key
        ck_ids = self.ck_ids
        for i, gid in enumerate(gids):
            if col[gid] is None:
                key = cache_key(globals_pool[i])
                if key is None:
                    raise _Uncachable
                ck = ck_ids.get(key)
                if ck is None:
                    ck = len(self.reps)
                    ck_ids[key] = ck
                    self.reps.append(globals_pool[i])
                col[gid] = ck
        self._prefilled = gids

    def pair_row(self, name1: str, lid1: int, name2: str, locals2, lids2):
        """One row of lazy pair cells: ``(cell, local2)`` per right-hand
        local, where ``cell`` maps a class index to the decision."""
        cells = self.pair_cells
        row = []
        for l2, lid2 in zip(locals2, lids2):
            key = (name1, lid1, name2, lid2)
            cell = cells.get(key)
            if cell is None:
                cell = {}
                cells[key] = cell
            row.append((cell, l2))
        return row

    def single_cell(self, name: str, lid: int) -> Dict[int, bool]:
        key = (name, lid)
        cell = self.single_cells.get(key)
        if cell is None:
            cell = {}
            self.single_cells[key] = cell
        return cell

    def row_memo(self, name1: str, lid1: int, name2: str, lids2_key) -> dict:
        """Class-index → admissible right-local indices, shared across the
        four LM conditions of the same (left, right) pair.  ``lids2_key``
        pins the right-hand locals pool the indices point into."""
        key = (name1, lid1, name2, lids2_key)
        memo = self.row_memos.get(key)
        if memo is None:
            memo = {}
            self.row_memos[key] = memo
        return memo


class ColumnarStore:
    """Process-wide registry of evaluation columns (see module docstring)."""

    def __init__(self) -> None:
        self.gate_cols: Dict[Tuple, List[Optional[bool]]] = {}
        self.succ_cols: Dict[Tuple, List[Optional[tuple]]] = {}
        self.created_ids: Dict[object, int] = {}
        self.contexts: Dict[object, _Admissibility] = {}
        self.gate_fills = 0
        self.succ_fills = 0
        # Column key -> the exact gids list already batch-filled, compared
        # by identity (the reference also pins the list against id reuse).
        self._gate_batched: Dict[Tuple, object] = {}

    # ------------------------------------------------------------------ #
    # Columns
    # ------------------------------------------------------------------ #

    def _column(self, registry, view, lid: int, size: int) -> list:
        key = (_view_key(view), lid)
        col = registry.get(key)
        if col is None:
            col = []
            registry[key] = col
        if len(col) < size:
            col.extend([None] * (size - len(col)))
        return col

    def gate_column(self, view, lid: int, gids) -> list:
        """The gate column of (view, local), batch-filled over ``gids``."""
        itn = store_interner()
        key = (_view_key(view), lid)
        col = self._column(self.gate_cols, view, lid, len(itn))
        if self._gate_batched.get(key) is gids:
            return col
        gate = view.gate
        combine_ids = itn.combine_ids
        fills = 0
        for gid in gids:
            if col[gid] is None:
                col[gid] = gate(combine_ids(gid, lid))
                fills += 1
        self.gate_fills += fills
        self._gate_batched[key] = gids
        return col

    def gate_column_lazy(self, view, lid: int) -> list:
        """The gate column of (view, local) with no batch fill: entries
        are ``None`` until probed (``fill_gate``).  Right-hand movers are
        probed only where the left gate and admissibility already passed,
        so batch-evaluating their gates over the whole pool is wasted
        work — Main-typed right columns dominated the cold profile."""
        return self._column(self.gate_cols, view, lid, len(store_interner()))

    def fill_gate(self, col: list, view, lid: int, gid: int) -> bool:
        """Lazy gate fill for an out-of-universe (successor) global."""
        itn = store_interner()
        if gid >= len(col):
            col.extend([None] * (len(itn) - len(col)))
        value = view.gate(itn.combine_ids(gid, lid))
        col[gid] = value
        self.gate_fills += 1
        return value

    def succ_column(self, view, lid: int, gids=(), where=None) -> list:
        """The successor column of (view, local).

        When ``where`` (a gate column) is given, entries are batch-filled
        for the gids whose gate holds — the ones the mover loops will
        visit — and left lazy elsewhere.
        """
        itn = store_interner()
        col = self._column(self.succ_cols, view, lid, len(itn))
        if where is not None:
            for gid in gids:
                if col[gid] is None and where[gid]:
                    self.fill_succ(col, view, lid, gid)
        return col

    def fill_succ(self, col: list, view, lid: int, gid: int) -> tuple:
        """Evaluate and intern the transitions of (view, local) from the
        global with id ``gid``: ``(tr, new_gid, created_cid)`` triples."""
        itn = store_interner()
        state = itn.combine_ids(gid, lid)
        intern = itn.intern
        created_ids = self.created_ids
        entries = []
        for tr in view.transitions(state):
            created = tr.created
            cid = created_ids.get(created)
            if cid is None:
                cid = len(created_ids)
                created_ids[created] = cid
            entries.append((tr, intern(tr.new_global), cid))
        entries = tuple(entries)
        if gid >= len(col):
            col.extend([None] * (len(itn) - len(col)))
        col[gid] = entries
        self.succ_fills += 1
        return entries

    # ------------------------------------------------------------------ #
    # Admissibility
    # ------------------------------------------------------------------ #

    def admissibility(self, universe, globals_pool, gids) -> _Admissibility:
        context = universe.context
        adm = self.contexts.get(context)
        if adm is None:
            adm = _Admissibility(context)
            self.contexts[context] = adm
        adm.prefill(globals_pool, gids, len(store_interner()))
        return adm

    # ------------------------------------------------------------------ #
    # Lifecycle / accounting
    # ------------------------------------------------------------------ #

    def clear(self) -> None:
        self.gate_cols.clear()
        self.succ_cols.clear()
        self.created_ids.clear()
        self.contexts.clear()
        self._gate_batched.clear()
        self.gate_fills = 0
        self.succ_fills = 0

    def stats(self) -> Dict[str, int]:
        return {
            "gate_columns": len(self.gate_cols),
            "succ_columns": len(self.succ_cols),
            "gate_fills": self.gate_fills,
            "succ_fills": self.succ_fills,
            "created_multisets": len(self.created_ids),
            "admissibility_contexts": len(self.contexts),
        }

    def __repr__(self) -> str:
        return (
            f"ColumnarStore({len(self.gate_cols)} gate cols, "
            f"{len(self.succ_cols)} succ cols, "
            f"{self.gate_fills}+{self.succ_fills} fills)"
        )


_STORE = ColumnarStore()
register_reset_hook(_STORE.clear)


def columnar_store() -> ColumnarStore:
    """The process's column store (forked children share it COW)."""
    return _STORE


def columnar_active() -> bool:
    """True when the columnar fast path applies: not explicitly disabled,
    shared caching on (the uncached baseline must stay uncached), and
    interning on (columns key by intern ids)."""
    return (
        not _DISABLED_DEPTH
        and interning_active()
        and active_cache() is not None
    )


class columnar_disabled:
    """Force the dict-shaped oracle path (re-entrant).

    The differential suite runs verification once under this switch and
    once without to compare the two representations; benchmarks use it to
    attribute the interning and batching layers separately.
    """

    def __enter__(self):
        global _DISABLED_DEPTH
        _DISABLED_DEPTH += 1
        return self

    def __exit__(self, *exc_info):
        global _DISABLED_DEPTH
        _DISABLED_DEPTH -= 1


# ---------------------------------------------------------------------- #
# Columnar left-mover conditions (order-exact oracle replacements)
# ---------------------------------------------------------------------- #


def _universe_ids(universe, globals_subset):
    itn = store_interner()
    if globals_subset is None:
        # The whole-universe gids list is interned once per epoch and
        # cached on the universe; its object identity doubles as the
        # batch-fill marker for gate columns and admissibility prefills.
        universe._fresh_memo_keys()
        gids = universe._gids_cache
        if gids is None:
            intern = itn.intern
            gids = [intern(g) for g in universe.globals_]
            universe._gids_cache = gids
        return itn, universe.globals_, gids
    intern = itn.intern
    return itn, globals_subset, [intern(g) for g in globals_subset]


def _locals_ids(itn, universe, name):
    locals_ = universe.locals_for(name)
    intern = itn.intern
    return locals_, [intern(l) for l in locals_]


def _adm_row_ix(row, ck, ctx_pair, reps, name_l, ll, name_x):
    """Indices of right-locals admissible with ``ll`` under class ``ck``.

    The pair-admissibility of (ll, lx) depends only on the context's
    cache_key class of the global, so the whole inner probe collapses to
    one tuple per (left-local, class) that every global in the class —
    and every successor entry — reuses.  Ascending index order matches
    the oracle's enumeration of right-locals.
    """
    out = []
    rep = None
    left = None
    for ix, (cell, lx) in enumerate(row):
        ok = cell.get(ck)
        if ok is None:
            if rep is None:
                rep = reps[ck]
                left = PendingAsync(name_l, ll)
            ok = ctx_pair(rep, left, PendingAsync(name_x, lx))
            cell[ck] = ok
        if ok:
            out.append(ix)
    return tuple(out)


def _gate_forward_preserved(l, x, universe, fail_fast, globals_subset):
    result = CheckResult(f"gate of {l.name} forward-preserved by {x.name}", True)
    cs = _STORE
    itn, globals_pool, gids = _universe_ids(universe, globals_subset)
    locals_l, lids_l = _locals_ids(itn, universe, l.name)
    locals_x, lids_x = _locals_ids(itn, universe, x.name)
    adm = cs.admissibility(universe, globals_pool, gids)
    lcols = [cs.gate_column(l, lid, gids) for lid in lids_l]
    xcols = [cs.gate_column_lazy(x, lid) for lid in lids_x]
    xsucc = [cs.succ_column(x, lid) for lid in lids_x]
    pair_rows = [
        adm.pair_row(l.name, lid_l, x.name, locals_x, lids_x) for lid_l in lids_l
    ]
    ck_col = adm.ck_col
    ctx_pair = adm.context.pair
    reps = adm.reps
    name_l, name_x = l.name, x.name
    n_l, n_x = len(locals_l), len(locals_x)
    checked = 0
    fill_gate, fill_succ = cs.fill_gate, cs.fill_succ
    lids_x_key = tuple(lids_x)
    adm_memos = [
        adm.row_memo(name_l, lid_l, name_x, lids_x_key) for lid_l in lids_l
    ]
    for gi in range(len(gids)):
        gid = gids[gi]
        ck = ck_col[gid]
        for il in range(n_l):
            lcol = lcols[il]
            if not lcol[gid]:
                continue
            ll = locals_l[il]
            lid_l = lids_l[il]
            memo = adm_memos[il]
            adm_ix = memo.get(ck)
            if adm_ix is None:
                adm_ix = _adm_row_ix(
                    pair_rows[il], ck, ctx_pair, reps, name_l, ll, name_x
                )
                memo[ck] = adm_ix
            for ix in adm_ix:
                xcol = xcols[ix]
                xg = xcol[gid]
                if xg is None:
                    xg = fill_gate(xcol, x, lids_x[ix], gid)
                if not xg:
                    continue
                lx = locals_x[ix]
                succs = xsucc[ix][gid]
                if succs is None:
                    succs = fill_succ(xsucc[ix], x, lids_x[ix], gid)
                for entry in succs:
                    checked += 1
                    ngid = entry[1]
                    after = lcol[ngid] if ngid < len(lcol) else None
                    if after is None:
                        after = fill_gate(lcol, l, lid_l, ngid)
                    if not after:
                        _fail(
                            result,
                            CommutationWitness(
                                reason="gate lost",
                                check="forward-preservation",
                                actors=(name_l, name_x),
                                global_store=globals_pool[gi],
                                left_locals=ll,
                                right_locals=lx,
                                first_transition=entry[0],
                            ),
                        )
                        if fail_fast:
                            result.checked = checked
                            return result
    result.checked = checked
    return result


def _gate_backward_preserved(l, x, universe, fail_fast, globals_subset):
    result = CheckResult(f"gate of {x.name} backward-preserved by {l.name}", True)
    cs = _STORE
    itn, globals_pool, gids = _universe_ids(universe, globals_subset)
    locals_l, lids_l = _locals_ids(itn, universe, l.name)
    locals_x, lids_x = _locals_ids(itn, universe, x.name)
    adm = cs.admissibility(universe, globals_pool, gids)
    lcols = [cs.gate_column(l, lid, gids) for lid in lids_l]
    xcols = [cs.gate_column_lazy(x, lid) for lid in lids_x]
    lsucc = [cs.succ_column(l, lid) for lid in lids_l]
    pair_rows = [
        adm.pair_row(l.name, lid_l, x.name, locals_x, lids_x) for lid_l in lids_l
    ]
    ck_col = adm.ck_col
    ctx_pair = adm.context.pair
    reps = adm.reps
    name_l, name_x = l.name, x.name
    n_l, n_x = len(locals_l), len(locals_x)
    checked = 0
    fill_gate, fill_succ = cs.fill_gate, cs.fill_succ
    lids_x_key = tuple(lids_x)
    adm_memos = [
        adm.row_memo(name_l, lid_l, name_x, lids_x_key) for lid_l in lids_l
    ]
    for gi in range(len(gids)):
        gid = gids[gi]
        ck = ck_col[gid]
        for il in range(n_l):
            if not lcols[il][gid]:
                continue
            ll = locals_l[il]
            # Admissibility before the successor fill: when no right-hand
            # local is admissible under this class, the (often expensive)
            # transition evaluation is never needed.
            memo = adm_memos[il]
            adm_ix = memo.get(ck)
            if adm_ix is None:
                adm_ix = _adm_row_ix(
                    pair_rows[il], ck, ctx_pair, reps, name_l, ll, name_x
                )
                memo[ck] = adm_ix
            if not adm_ix:
                continue
            succs = lsucc[il][gid]
            if succs is None:
                succs = fill_succ(lsucc[il], l, lids_l[il], gid)
            for entry in succs:
                ngid = entry[1]
                for ix in adm_ix:
                    checked += 1
                    xcol = xcols[ix]
                    after = xcol[ngid] if ngid < len(xcol) else None
                    if after is None:
                        after = fill_gate(xcol, x, lids_x[ix], ngid)
                    if not after:
                        continue
                    before = xcol[gid]
                    if before is None:
                        before = fill_gate(xcol, x, lids_x[ix], gid)
                    if not before:
                        _fail(
                            result,
                            CommutationWitness(
                                reason="gate introduced",
                                check="backward-preservation",
                                actors=(name_l, name_x),
                                global_store=globals_pool[gi],
                                left_locals=ll,
                                right_locals=locals_x[ix],
                                first_transition=entry[0],
                            ),
                        )
                        if fail_fast:
                            result.checked = checked
                            return result
    result.checked = checked
    return result


def _commutes_left(l, x, universe, fail_fast, globals_subset):
    result = CheckResult(f"{l.name} commutes to the left of {x.name}", True)
    cs = _STORE
    itn, globals_pool, gids = _universe_ids(universe, globals_subset)
    locals_l, lids_l = _locals_ids(itn, universe, l.name)
    locals_x, lids_x = _locals_ids(itn, universe, x.name)
    adm = cs.admissibility(universe, globals_pool, gids)
    lcols = [cs.gate_column(l, lid, gids) for lid in lids_l]
    xcols = [cs.gate_column_lazy(x, lid) for lid in lids_x]
    xsucc = [cs.succ_column(x, lid) for lid in lids_x]
    lsucc = [cs.succ_column(l, lid) for lid in lids_l]
    pair_rows = [
        adm.pair_row(l.name, lid_l, x.name, locals_x, lids_x) for lid_l in lids_l
    ]
    ck_col = adm.ck_col
    ctx_pair = adm.context.pair
    reps = adm.reps
    name_l, name_x = l.name, x.name
    n_l, n_x = len(locals_l), len(locals_x)
    checked = 0
    fill_gate, fill_succ = cs.fill_gate, cs.fill_succ
    lids_x_key = tuple(lids_x)
    adm_memos = [
        adm.row_memo(name_l, lid_l, name_x, lids_x_key) for lid_l in lids_l
    ]
    for gi in range(len(gids)):
        gid = gids[gi]
        ck = ck_col[gid]
        for il in range(n_l):
            if not lcols[il][gid]:
                continue
            ll = locals_l[il]
            lid_l = lids_l[il]
            lsucc_il = lsucc[il]
            memo = adm_memos[il]
            adm_ix = memo.get(ck)
            if adm_ix is None:
                adm_ix = _adm_row_ix(
                    pair_rows[il], ck, ctx_pair, reps, name_l, ll, name_x
                )
                memo[ck] = adm_ix
            for ix in adm_ix:
                xcol = xcols[ix]
                xg = xcol[gid]
                if xg is None:
                    xg = fill_gate(xcol, x, lids_x[ix], gid)
                if not xg:
                    continue
                lx = locals_x[ix]
                xsucc_ix = xsucc[ix]
                succs_x = xsucc_ix[gid]
                if succs_x is None:
                    succs_x = fill_succ(xsucc_ix, x, lids_x[ix], gid)
                for entry_x in succs_x:
                    mid_gid = entry_x[1]
                    cid_x = entry_x[2]
                    succs_mid = (
                        lsucc_il[mid_gid] if mid_gid < len(lsucc_il) else None
                    )
                    if succs_mid is None:
                        succs_mid = fill_succ(lsucc_il, l, lid_l, mid_gid)
                    for entry_l in succs_mid:
                        checked += 1
                        # ∃ĝ: l from g reaches ĝ with entry_l's PAs, then x
                        # from ĝ reaches the same final global with
                        # entry_x's PAs — the oracle's ``_has_swapped``
                        # on interned ids.
                        cid_l = entry_l[2]
                        ngid_l = entry_l[1]
                        swapped = False
                        succs_l0 = lsucc_il[gid]
                        if succs_l0 is None:
                            succs_l0 = fill_succ(lsucc_il, l, lid_l, gid)
                        for e2 in succs_l0:
                            if e2[2] != cid_l:
                                continue
                            xsucc2 = (
                                xsucc_ix[e2[1]] if e2[1] < len(xsucc_ix) else None
                            )
                            if xsucc2 is None:
                                xsucc2 = fill_succ(xsucc_ix, x, lids_x[ix], e2[1])
                            for e3 in xsucc2:
                                if e3[2] == cid_x and e3[1] == ngid_l:
                                    swapped = True
                                    break
                            if swapped:
                                break
                        if not swapped:
                            _fail(
                                result,
                                CommutationWitness(
                                    reason="no matching l-then-x execution",
                                    check="commutation",
                                    actors=(name_l, name_x),
                                    global_store=globals_pool[gi],
                                    left_locals=ll,
                                    right_locals=lx,
                                    first_transition=entry_x[0],
                                    second_transition=entry_l[0],
                                ),
                            )
                            if fail_fast:
                                result.checked = checked
                                return result
    result.checked = checked
    return result


def _non_blocking(l, x, universe, fail_fast, globals_subset):
    result = CheckResult(f"{l.name} non-blocking", True)
    cs = _STORE
    itn, globals_pool, gids = _universe_ids(universe, globals_subset)
    locals_l, lids_l = _locals_ids(itn, universe, l.name)
    adm = cs.admissibility(universe, globals_pool, gids)
    lcols = [cs.gate_column(l, lid, gids) for lid in lids_l]
    lsucc = [cs.succ_column(l, lid) for lid in lids_l]
    cells = [adm.single_cell(l.name, lid) for lid in lids_l]
    ck_col = adm.ck_col
    ctx_single = adm.context.single
    reps = adm.reps
    name_l = l.name
    n_l = len(locals_l)
    checked = 0
    fill_succ = cs.fill_succ
    for gi in range(len(gids)):
        gid = gids[gi]
        ck = ck_col[gid]
        for il in range(n_l):
            cell = cells[il]
            ok = cell.get(ck)
            if ok is None:
                ok = ctx_single(reps[ck], PendingAsync(name_l, locals_l[il]))
                cell[ck] = ok
            if not ok:
                continue
            if not lcols[il][gid]:
                continue
            checked += 1
            succs = lsucc[il][gid]
            if succs is None:
                succs = fill_succ(lsucc[il], l, lids_l[il], gid)
            if not succs:
                _fail(
                    result,
                    GateWitness(
                        reason="blocks in gate-satisfying store",
                        check="non-blocking",
                        actors=(name_l,),
                        state=itn.combine_ids(gid, lids_l[il]),
                    ),
                )
                if fail_fast:
                    result.checked = checked
                    return result
    result.checked = checked
    return result


_FNS = {
    "forward_preservation": _gate_forward_preserved,
    "backward_preservation": _gate_backward_preserved,
    "commutation": _commutes_left,
    "non_blocking": _non_blocking,
}


def left_mover_condition_columnar(
    condition: str, l, x, universe, fail_fast: bool = False, globals_subset=None
) -> Optional[CheckResult]:
    """Columnar evaluation of one left-mover condition, or ``None`` when
    the fast path does not apply (disabled, interning off, caching off, or
    an uncachable PA context) — the caller then runs the dict oracle."""
    if not columnar_active():
        return None
    try:
        return _FNS[condition](l, x, universe, fail_fast, globals_subset)
    except _Uncachable:
        return None


# ---------------------------------------------------------------------- #
# I3 fast path
# ---------------------------------------------------------------------- #


class I3Fast:
    """Column-backed predicate lookups for ``ISApplication.check_i3``.

    Serves the I3 inner loop's three hot predicates from columns — the
    single-PA admissibility of M's candidates, the invariant's gate, and
    the abstractions' gates on post-transition stores — while the
    composition chase itself stays object-level (it is not the hot part).
    """

    __slots__ = (
        "gids",
        "_itn",
        "_adm",
        "_m_name",
        "_locals",
        "_lids",
        "_inv_cols",
        "_single",
        "_abs_cols",
        "_store",
    )

    def __init__(self, universe, globals_pool, gids, m_name, locals_pool, invariant):
        cs = _STORE
        itn = store_interner()
        self.gids = gids
        self._store = cs
        self._itn = itn
        self._m_name = m_name
        self._locals = locals_pool
        self._lids = [itn.intern(l) for l in locals_pool]
        self._adm = cs.admissibility(universe, globals_pool, gids)
        self._inv_cols = [
            cs.gate_column(invariant, lid, gids) for lid in self._lids
        ]
        self._single = [
            self._adm.single_cell(m_name, lid) for lid in self._lids
        ]
        self._abs_cols: Dict[Tuple, list] = {}

    def single_ok(self, li: int, gid: int) -> bool:
        adm = self._adm
        ck = adm.ck_col[gid]
        cell = self._single[li]
        ok = cell.get(ck)
        if ok is None:
            ok = adm.context.single(
                adm.reps[ck], PendingAsync(self._m_name, self._locals[li])
            )
            cell[ck] = ok
        return ok

    def invariant_gate(self, li: int, gid: int) -> bool:
        return self._inv_cols[li][gid]

    def abstraction_gate(self, view, locals_store: Store, new_global: Store) -> bool:
        itn = self._itn
        lid = itn.intern(locals_store)
        key = (_view_key(view), lid)
        col = self._abs_cols.get(key)
        if col is None:
            col = self._store._column(self._store.gate_cols, view, lid, len(itn))
            self._abs_cols[key] = col
        gid = itn.intern(new_global)
        value = col[gid] if gid < len(col) else None
        if value is None:
            value = self._store.fill_gate(col, view, lid, gid)
        return value


def i3_fast_path(
    universe, globals_pool, m_name, locals_pool, invariant
) -> Optional[I3Fast]:
    """An :class:`I3Fast` for this I3 shard, or ``None`` when the columnar
    path does not apply."""
    if not columnar_active():
        return None
    itn = store_interner()
    intern = itn.intern
    gids = [intern(g) for g in globals_pool]
    try:
        return I3Fast(universe, globals_pool, gids, m_name, locals_pool, invariant)
    except _Uncachable:
        return None
