"""Gated atomic actions and pending asyncs.

The paper (Section 3) models programs as finite maps from *action names* to
*gated atomic actions*. An action is a pair :math:`(\\rho, \\tau)` where

* the **gate** :math:`\\rho` is a set of stores from which the action does
  not fail (an assertion: executing the action from a store outside the gate
  drives the program to the failure configuration :math:`\\lightning`), and
* the **transition relation** :math:`\\tau` is a set of transitions
  :math:`(\\sigma, g', \\Omega')` — from combined store :math:`\\sigma` the
  action may atomically update the global store to :math:`g'` and create the
  finite multiset :math:`\\Omega'` of **pending asyncs** (PAs).

A pending async is a pair :math:`(\\ell, A)` of a local store (parameter
values) and an action name; it denotes a spawned computation whose effect is
*not* part of the spawning action.

This module represents gates and transition relations extensionally as
Python callables: ``gate(state) -> bool`` and
``transitions(state) -> Iterable[Transition]``. The separation of gate and
transition relation distinguishes *failure* (gate false) from *blocking*
(gate true but no transitions), exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

from .multiset import EMPTY, Multiset
from .store import EMPTY_STORE, Store

__all__ = [
    "PendingAsync",
    "Transition",
    "Action",
    "pa",
    "pas",
    "transition",
    "havoc_action",
    "assert_action",
    "skip_action",
]


@dataclass(frozen=True)
class PendingAsync:
    """A pending async :math:`(\\ell, A)`: an action name plus its parameters."""

    action: str
    locals: Store = EMPTY_STORE

    def __repr__(self) -> str:
        if len(self.locals) == 0:
            return f"{self.action}()"
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.locals.items()))
        return f"{self.action}({args})"


@dataclass(frozen=True)
class Transition:
    """One outcome of executing an action: new global store + created PAs.

    The initial store :math:`\\sigma` is implicit (it is the store the
    transition was enumerated from); bundling only the *effect* keeps
    transition objects small and hashable.
    """

    new_global: Store
    created: Multiset = EMPTY

    def __repr__(self) -> str:
        if self.created:
            return f"Transition({self.new_global!r}, +{self.created!r})"
        return f"Transition({self.new_global!r})"


def pa(action: str, **params) -> PendingAsync:
    """Convenience constructor: ``pa("Broadcast", i=3)``."""
    return PendingAsync(action, Store(params))


def pas(*pending: PendingAsync) -> Multiset:
    """Build a multiset of pending asyncs from individual PAs."""
    return Multiset(pending)


def transition(new_global: Store, *pending: PendingAsync) -> Transition:
    """Convenience constructor for a transition creating the given PAs."""
    return Transition(new_global, Multiset(pending))


GateFn = Callable[[Store], bool]
TransitionsFn = Callable[[Store], Iterable[Transition]]


@dataclass(frozen=True)
class Action:
    """A gated atomic action :math:`(\\rho, \\tau)` given by callables.

    Parameters
    ----------
    name:
        Human-readable name, used in diagnostics (the authoritative name of
        an action within a program is its key in the program mapping).
    gate:
        Predicate over the combined store :math:`g \\cdot \\ell`.
    transitions:
        Enumerator of :class:`Transition` outcomes from a combined store.
        It is only meaningful on states satisfying the gate; an action that
        *blocks* simply enumerates no transitions.
    params:
        Names of the action's local variables (parameters). Used by store
        universes to enumerate parameter values and by pretty-printers.
    """

    name: str
    gate: GateFn
    transitions: TransitionsFn
    params: Tuple[str, ...] = ()

    def enabled(self, state: Store) -> bool:
        """True if the gate holds and at least one transition exists."""
        return self.gate(state) and any(True for _ in self.transitions(state))

    def outcomes(self, state: Store) -> List[Transition]:
        """All transitions from ``state`` as a list (gate not consulted)."""
        return list(self.transitions(state))

    def __repr__(self) -> str:
        return f"Action({self.name})"


def havoc_action(
    name: str,
    choices: Callable[[Store], Iterable[Store]],
    params: Sequence[str] = (),
) -> Action:
    """An always-enabled action that nondeterministically picks a new global
    store from ``choices(state)`` and creates no PAs."""

    def transitions_fn(state: Store) -> Iterable[Transition]:
        for new_global in choices(state):
            yield Transition(new_global)

    return Action(name, lambda _s: True, transitions_fn, tuple(params))


def assert_action(
    name: str,
    gate: GateFn,
    globals_of: Callable[[Store], Store],
    params: Sequence[str] = (),
) -> Action:
    """An action that asserts ``gate`` and otherwise does nothing.

    ``globals_of`` projects the combined store back to the global store
    (the action leaves it unchanged).
    """

    def transitions_fn(state: Store) -> Iterable[Transition]:
        yield Transition(globals_of(state))

    return Action(name, gate, transitions_fn, tuple(params))


def skip_action(
    name: str,
    globals_of: Callable[[Store], Store],
    params: Sequence[str] = (),
) -> Action:
    """A no-op action (gate true, single stuttering transition)."""
    return assert_action(name, lambda _s: True, globals_of, params)
