"""The Inductive Sequentialization proof rule (Figure 3).

Given a program :math:`\\mathcal{P}`, a target action name :math:`M`, and a
set of action names :math:`E` to eliminate, together with the user-invented
artifacts

* an **invariant action** :math:`I = (\\rho_I, \\tau_I)` summarizing all
  prefixes of the chosen sequentialization,
* a **choice function** :math:`f` selecting, from every transition of
  :math:`I` that still creates PAs to :math:`E`, the single PA to
  sequentialize next,
* an **abstraction function** :math:`\\alpha` supplying a left-moving
  abstraction for every action in :math:`E` (identity by default), and
* a **well-founded order** :math:`\\gg` (a lexicographic measure),

the rule concludes :math:`\\mathcal{P} \\preccurlyeq \\mathcal{P}[M \\mapsto
M']`, where :math:`M'` is :math:`I` restricted to transitions with no
remaining PAs to :math:`E`. The verification conditions are:

* *(abs)* :math:`\\mathcal{P}(A) \\preccurlyeq \\alpha(A)` for all
  :math:`A \\in E`;
* *(I1)* :math:`M \\preccurlyeq I` — base case;
* *(I2)* :math:`(\\rho_I, \\{t \\in \\tau_I \\mid PA_E(t) = \\emptyset\\})
  \\preccurlyeq M'` — the completed sequentializations are summarized by
  :math:`M'`;
* *(I3)* — induction step: after any :math:`I`-transition, the gate of the
  chosen PA's abstraction holds, and composing the transition with any step
  of that abstraction stays inside :math:`\\tau_I`;
* *(LM)* every :math:`\\alpha(A)` is a left mover w.r.t. the program;
* *(CO)* cooperation: every abstraction can execute while strictly
  decreasing the measure.

All conditions are discharged by enumeration over a
:class:`~repro.core.universe.StoreUniverse`; see DESIGN.md for the scope of
this substitution for CIVL's SMT backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..diagnose.witness import GateWitness, MissingTransitionWitness
from .action import Action, PendingAsync, Transition
from .cache import active_cache
from .columnar import columnar_active, columnar_store, i3_fast_path
from .movers import is_left_mover, is_left_mover_wrt_program
from .multiset import Multiset
from .program import Program
from .refinement import CheckResult, _fail, check_action_refinement
from .semantics import Config
from .store import Store, combine, store_interner
from .universe import StoreUniverse
from .wellfounded import LexicographicMeasure

__all__ = [
    "ChoiceFn",
    "choice_by_priority",
    "ISApplication",
    "ISResult",
    "pas_to",
    "derive_m_prime",
]

#: A choice function: given the initial combined store of an I-transition
#: and the transition itself, select one of its created PAs to E.
ChoiceFn = Callable[[Store, Transition], PendingAsync]


def pas_to(created: Multiset, eliminated: Iterable[str]) -> List[PendingAsync]:
    """The paper's :math:`PA_E(t)`: PAs of a transition targeting ``E``."""
    names = set(eliminated)
    return [p for p in created for _ in [0] if p.action in names]


def choice_by_priority(
    eliminated: Sequence[str],
    key: Optional[Callable[[PendingAsync], object]] = None,
) -> ChoiceFn:
    """A choice function selecting PAs by action priority, then by ``key``.

    Actions earlier in ``eliminated`` are selected first; ties among PAs of
    the same action are broken by ``key`` (default: sorted repr of the local
    store). This captures the common pattern "eliminate all Broadcasts in
    index order, then all Collects in index order".
    """
    priority = {name: i for i, name in enumerate(eliminated)}

    def default_key(pending: PendingAsync) -> object:
        return sorted(pending.locals.items())

    tie_break = key or default_key

    def choose(_sigma: Store, t: Transition) -> PendingAsync:
        candidates = [p for p in t.created.support() if p.action in priority]
        if not candidates:
            raise ValueError("choice function called on transition without PAs to E")
        return min(candidates, key=lambda p: (priority[p.action], tie_break(p)))

    return choose


def derive_m_prime(
    invariant: Action,
    eliminated: Sequence[str],
    name: str = "M'",
) -> Action:
    """The canonical :math:`M'`: the invariant action restricted to
    transitions that create no PAs to ``E``."""
    names = set(eliminated)

    def transitions_fn(state: Store):
        for t in invariant.transitions(state):
            if not any(p.action in names for p in t.created.support()):
                yield t

    return Action(name, invariant.gate, transitions_fn, invariant.params)


@dataclass
class ISResult:
    """Outcome of checking all IS conditions; per-condition results.

    ``timings`` and ``obligation_checked`` carry per-obligation wall-clock
    and enumeration counts when the result was produced by the obligation
    engine (``repro.engine.obligations``); ``worker_cache_stats`` carries,
    per discharging PID, the worker's final evaluation-cache snapshot and
    obligation count (the serial backend contributes a single entry);
    ``warmup_seconds`` is the parent's cache warm-up time when a pool
    backend pre-warmed.

    The resilience fields record how a fault-tolerant run went:
    ``interrupted`` marks a run stopped by ``KeyboardInterrupt`` (the
    condition map is a salvaged partial); ``resumed_keys`` are obligations
    satisfied from a checkpoint journal rather than re-executed;
    ``timeout_keys``/``crashed_keys`` are obligations that hit their
    deadline or crashed past the retry budget; ``retries`` counts extra
    execution attempts; ``resilience_events`` is the scheduler's recovery
    log. ``cached_keys`` are obligations satisfied from the persistent
    result cache (``repro.engine.rcache``) instead of executed, and
    ``rcache_stats`` the cache's hit/miss/invalidation counter delta for
    this discharge. All are bookkeeping only and excluded from equality,
    which compares the condition map alone.
    """

    conditions: Dict[str, CheckResult] = field(default_factory=dict)
    timings: Dict[str, float] = field(
        default_factory=dict, compare=False, repr=False
    )
    obligation_checked: Dict[str, int] = field(
        default_factory=dict, compare=False, repr=False
    )
    worker_cache_stats: Dict[int, dict] = field(
        default_factory=dict, compare=False, repr=False
    )
    warmup_seconds: float = field(default=0.0, compare=False, repr=False)
    interrupted: bool = field(default=False, compare=False, repr=False)
    resumed_keys: List[str] = field(
        default_factory=list, compare=False, repr=False
    )
    timeout_keys: List[str] = field(
        default_factory=list, compare=False, repr=False
    )
    crashed_keys: List[str] = field(
        default_factory=list, compare=False, repr=False
    )
    retries: int = field(default=0, compare=False, repr=False)
    resilience_events: List = field(
        default_factory=list, compare=False, repr=False
    )
    cached_keys: List[str] = field(
        default_factory=list, compare=False, repr=False
    )
    rcache_stats: Optional[Dict[str, int]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def holds(self) -> bool:
        return all(result.holds for result in self.conditions.values())

    @property
    def timed_out(self) -> bool:
        """True when some condition is disrupted (``TIMEOUT`` verdict)
        but none genuinely failed — the run is inconclusive, not
        refuted."""
        verdicts = {r.verdict for r in self.conditions.values()}
        return "TIMEOUT" in verdicts and "FAIL" not in verdicts

    def failed(self) -> List[CheckResult]:
        return [r for r in self.conditions.values() if not r.holds]

    @property
    def total_checked(self) -> int:
        """Total enumeration count across all conditions."""
        return sum(result.checked for result in self.conditions.values())

    @property
    def num_obligations(self) -> int:
        """Number of engine obligations discharged (0 for inline checks)."""
        return len(self.timings)

    def report(self) -> str:
        lines = []
        for name, result in self.conditions.items():
            lines.append(
                f"  [{result.verdict}] {name} ({result.checked} checks)"
            )
            for description, witness in result.counterexamples:
                lines.append(f"         counterexample: {description}: {witness!r}")
        verdict = "IS conditions hold" if self.holds else "IS conditions FAILED"
        return verdict + "\n" + "\n".join(lines)

    def obligation_report(self, top: int = 10) -> str:
        """The slowest obligations with wall-clock and enumeration counts."""
        if not self.timings:
            return "(no obligation stats: result produced by inline checks)"
        ranked = sorted(self.timings.items(), key=lambda kv: -kv[1])[:top]
        lines = [
            f"  {key:<40} {seconds * 1000:>9.1f} ms "
            f"{self.obligation_checked.get(key, 0):>10} checks"
            for key, seconds in ranked
        ]
        total = sum(self.timings.values())
        header = (
            f"{self.num_obligations} obligations, {self.total_checked} checks, "
            f"{total:.2f}s total obligation time"
        )
        if self.warmup_seconds:
            header += f" (+{self.warmup_seconds * 1000:.0f} ms cache warm-up)"
        for pid, entry in sorted(self.worker_cache_stats.items()):
            stats = entry.get("stats", {})
            rates = ", ".join(
                f"{kind} {100 * stats[kind].get('hit_rate', 0.0):.1f}% hit"
                for kind in ("gate", "transitions")
                if kind in stats
            )
            lines.append(
                f"  worker {pid}: {entry.get('obligations', 0)} obligations"
                + (f", {rates}" if rates else "")
            )
        return header + "\n" + "\n".join(lines)

    def __bool__(self) -> bool:
        return self.holds

    def __repr__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        return f"ISResult({status}, {len(self.conditions)} conditions)"


@dataclass
class ISApplication:
    """One application of the IS rule: frame (P, M, E) plus proof artifacts.

    Parameters
    ----------
    program:
        The program :math:`\\mathcal{P}` being transformed.
    m_name:
        The action name :math:`M` whose PAs to ``E`` are eliminated
        (not necessarily ``Main``).
    eliminated:
        The set :math:`E` of action names to eliminate, in *choice priority
        order* when the default choice function is used.
    invariant:
        The invariant action :math:`I`, sharing :math:`M`'s parameters.
    choice:
        The choice function :math:`f`; defaults to
        :func:`choice_by_priority` over ``eliminated``.
    abstractions:
        The abstraction function :math:`\\alpha` as a partial mapping;
        actions of ``E`` not listed are not abstracted
        (:math:`\\alpha(A) = \\mathcal{P}(A)`).
    measure:
        The well-founded order :math:`\\gg` as a lexicographic measure.
    m_prime:
        Optional user-supplied :math:`M'`; when omitted, the canonical
        :math:`M'` (invariant minus transitions with PAs to ``E``) is used
        and condition I2 holds by construction (still checked).
    """

    program: Program
    m_name: str
    eliminated: Tuple[str, ...]
    invariant: Action
    measure: LexicographicMeasure
    choice: Optional[ChoiceFn] = None
    abstractions: Mapping[str, Action] = field(default_factory=dict)
    m_prime: Optional[Action] = None

    def __post_init__(self) -> None:
        self.eliminated = tuple(self.eliminated)
        missing = [a for a in self.eliminated if a not in self.program]
        if missing:
            raise ValueError(f"eliminated actions not in program: {missing}")
        if self.m_name not in self.program:
            raise ValueError(f"action {self.m_name!r} not in program")
        unknown = [a for a in self.abstractions if a not in self.eliminated]
        if unknown:
            raise ValueError(f"abstractions for actions outside E: {unknown}")
        if self.choice is None:
            self.choice = choice_by_priority(self.eliminated)
        self._m_prime_canonical = self.m_prime is None
        if self.m_prime is None:
            self.m_prime = derive_m_prime(
                self.invariant, self.eliminated, name=f"{self.m_name}'"
            )

    def abstraction_of(self, action_name: str) -> Action:
        """:math:`\\alpha(A)` (identity on unlisted actions)."""
        return self.abstractions.get(action_name, self.program[action_name])

    @staticmethod
    def _view(action):
        """A memoized evaluation view of ``action`` (see ``repro.core.cache``);
        the action itself when shared caching is disabled."""
        cache = active_cache()
        return cache.cached(action) if cache is not None else action

    # ------------------------------------------------------------------ #
    # Cache warm-up
    # ------------------------------------------------------------------ #

    def _warm_views(self, universe: StoreUniverse):
        """The (memoized action view, candidate locals) pairs every
        obligation family re-enumerates: all program actions (the LM
        right-hand sides), the invariant (enumerated by I1, I2 and I3
        alike), and the abstractions (I3's composition step, the LM
        left-hand sides, CO)."""
        pairs = []
        for name, action in self.program.actions():
            pairs.append((self._view(action), universe.locals_for(name)))
        invariant_locals = list(
            dict.fromkeys(
                [
                    *universe.locals_for(self.m_name),
                    *universe.locals_for(self.invariant.name),
                ]
            )
        )
        pairs.append((self._view(self.invariant), invariant_locals))
        for name in self.eliminated:
            # Unabstracted actions of E are program actions, warmed above.
            if name in self.abstractions:
                pairs.append(
                    (self._view(self.abstractions[name]), universe.locals_for(name))
                )
        return pairs

    def warm_evaluation_cache(
        self, universe: StoreUniverse, successors: bool = True
    ) -> int:
        """Pre-populate the process evaluation cache with the gate and
        transition memos the IS obligations share.

        Evaluates every relevant action (program actions, invariant,
        abstractions) over the universe grid — and, when ``successors`` is
        true, over the global stores reachable in one transition from the
        grid, which is where the mover checks evaluate gates and
        transitions after a commuted step. Returns the number of stores
        evaluated. A no-op (returning 0) while caching is disabled.

        Sound by purity: a memo entry is a function of the store alone, so
        warm entries are indistinguishable from recomputed ones. The
        process-pool scheduler runs this in the parent before forking so
        every worker inherits the warm memos copy-on-write (see
        ``repro.core.cache``).
        """
        if active_cache() is None:
            return 0
        pairs = self._warm_views(universe)
        evaluated = 0
        successor_globals: set = set()
        known = set(universe.globals_)
        for view, locals_pool in pairs:
            for g in universe.globals_:
                for l in locals_pool:
                    state = combine(g, l)
                    evaluated += 1
                    if view.gate(state):
                        for tr in view.transitions(state):
                            if tr.new_global not in known:
                                successor_globals.add(tr.new_global)
        if successors and successor_globals:
            frontier = sorted(successor_globals, key=repr)
            for view, locals_pool in pairs:
                for g in frontier:
                    for l in locals_pool:
                        state = combine(g, l)
                        evaluated += 1
                        if view.gate(state):
                            view.transitions(state)
        return evaluated

    def warm_columns(self, universe: StoreUniverse) -> int:
        """Pre-fill the columnar gate and successor tables for the same
        (view, locals) pairs as :meth:`warm_evaluation_cache`.

        The process-pool scheduler runs this in the parent before forking,
        so workers inherit filled columns copy-on-write instead of
        re-deriving them per shard (see ``repro.core.columnar``). Returns
        the number of column entries filled; 0 when the columnar path is
        inactive.
        """
        if not columnar_active():
            return 0
        cs = columnar_store()
        itn = store_interner()
        gids = [itn.intern(g) for g in universe.globals_]
        before = cs.gate_fills + cs.succ_fills
        for view, locals_pool in self._warm_views(universe):
            for l in locals_pool:
                lid = itn.intern(l)
                gate_col = cs.gate_column(view, lid, gids)
                cs.succ_column(view, lid, gids, where=gate_col)
        return cs.gate_fills + cs.succ_fills - before

    # ------------------------------------------------------------------ #
    # Condition checks
    # ------------------------------------------------------------------ #

    def check_abstractions(
        self, universe: StoreUniverse, names: Optional[Iterable[str]] = None
    ) -> Dict[str, CheckResult]:
        """:math:`\\mathcal{P}(A) \\preccurlyeq \\alpha(A)` for all A ∈ E.

        ``names`` restricts the check to a subset of ``E`` (the obligation
        engine discharges one action per obligation).
        """
        results = {}
        pool = self.eliminated if names is None else tuple(names)
        for name in pool:
            if name in self.abstractions:
                results[f"abs[{name}]"] = check_action_refinement(
                    self._view(self.program[name]),
                    self._view(self.abstractions[name]),
                    universe,
                    name=f"{name} ≼ α({name})",
                    pa_name=name,
                )
        return results

    def check_i1(self, universe: StoreUniverse) -> CheckResult:
        """(I1): :math:`M \\preccurlyeq I`."""
        # M and I share M's parameter signature; reuse M's locals.
        universe_for_m = universe.extended(
            extra_locals={self.invariant.name: universe.locals_for(self.m_name)}
        )
        invariant = self._view(self.invariant)
        return check_action_refinement(
            self._view(self.program[self.m_name]),
            Action(
                self.m_name,  # compare on M's locals
                invariant.gate,
                invariant.transitions,
                self.invariant.params,
            ),
            universe_for_m,
            name="I1: M ≼ I",
            pa_name=self.m_name,
        )

    def check_i2(self, universe: StoreUniverse) -> CheckResult:
        """(I2): I restricted to E-free transitions refines :math:`M'`."""
        invariant = self._view(self.invariant)
        restricted = derive_m_prime(invariant, self.eliminated, name="I|E-free")
        if self._m_prime_canonical:
            # Rebuild the canonical M' over the memoized invariant so both
            # sides of the refinement share one enumeration per store.
            m_prime = derive_m_prime(invariant, self.eliminated, name="M'")
        else:
            m_prime = self.m_prime
        return check_action_refinement(
            Action(self.m_name, restricted.gate, restricted.transitions),
            Action(self.m_name, m_prime.gate, m_prime.transitions),
            universe,
            name="I2: I without E-PAs ≼ M'",
            pa_name=self.m_name,
        )

    def check_i3(
        self,
        universe: StoreUniverse,
        globals_subset: Optional[Sequence[Store]] = None,
    ) -> CheckResult:
        """(I3): the induction step.

        For every gate-satisfying store :math:`\\sigma` and transition
        :math:`t \\in \\tau_I` with PAs to E, let :math:`(\\ell, A) = f(t)`
        and :math:`A^* = \\alpha(A)`:

        1. the gate of :math:`A^*` holds on :math:`g_t \\cdot \\ell`, and
        2. composing :math:`t` with any :math:`A^*`-transition yields a
           transition in :math:`\\tau_I` from :math:`\\sigma`.

        ``globals_subset`` restricts the outer quantifier to a slice of the
        universe's globals; the obligation engine shards I3 along it (the
        full check is the concatenation of the shards, in order).
        """
        result = CheckResult("I3: inductive step", True)
        names = set(self.eliminated)
        invariant = self._view(self.invariant)
        abstraction_views = {
            name: self._view(self.abstraction_of(name)) for name in self.eliminated
        }
        globals_pool = (
            universe.globals_ if globals_subset is None else globals_subset
        )
        locals_pool = universe.locals_for(self.m_name)
        # Column-backed lookups for the three hot predicates (admissibility,
        # invariant gate, abstraction gates); None -> dict-shaped oracle.
        # Both sides enumerate in the same order and count the same checks.
        fast = i3_fast_path(
            universe, globals_pool, self.m_name, locals_pool, invariant
        )
        for gi, g in enumerate(globals_pool):
            for li, l in enumerate(locals_pool):
                if fast is not None:
                    gid = fast.gids[gi]
                    if not fast.single_ok(li, gid):
                        continue
                    if not fast.invariant_gate(li, gid):
                        continue
                    sigma = combine(g, l)
                else:
                    sigma = combine(g, l)
                    if not universe.single_ok(g, self.m_name, l):
                        continue
                    if not invariant.gate(sigma):
                        continue
                outcomes = list(invariant.transitions(sigma))
                outcome_set = set(outcomes)
                for t in outcomes:
                    if not any(p.action in names for p in t.created.support()):
                        continue
                    chosen = self.choice(sigma, t)
                    if chosen.action not in names or chosen not in t.created:
                        _fail(
                            result,
                            GateWitness(
                                reason="choice function selected an invalid PA",
                                check="choice",
                                actors=(chosen.action,),
                                state=sigma,
                                context=(t, chosen),
                            ),
                        )
                        continue
                    abstraction = abstraction_views[chosen.action]
                    state_a = combine(t.new_global, chosen.locals)
                    result.checked += 1
                    if fast is not None:
                        gate_a = fast.abstraction_gate(
                            abstraction, chosen.locals, t.new_global
                        )
                    else:
                        gate_a = abstraction.gate(state_a)
                    if not gate_a:
                        _fail(
                            result,
                            GateWitness(
                                reason=f"gate of α({chosen.action}) fails "
                                "after I-transition",
                                check="i3-gate",
                                actors=(chosen.action,),
                                state=sigma,
                                context=(t, chosen),
                            ),
                        )
                        continue
                    remaining = t.created.remove(chosen)
                    for tr_a in abstraction.transitions(state_a):
                        composed = Transition(
                            tr_a.new_global, remaining.union(tr_a.created)
                        )
                        result.checked += 1
                        if composed not in outcome_set:
                            _fail(
                                result,
                                MissingTransitionWitness(
                                    reason="composition of I with "
                                    f"α({chosen.action}) escapes τ_I",
                                    check="i3-composition",
                                    actors=(chosen.action,),
                                    state=sigma,
                                    transition=tr_a,
                                    context=(t, chosen),
                                ),
                            )
        return result

    def check_lm(
        self,
        universe: StoreUniverse,
        skip: Iterable[str] = (),
        names: Optional[Iterable[str]] = None,
    ) -> Dict[str, CheckResult]:
        """(LM): every abstraction is a left mover w.r.t. the program.

        ``names`` restricts to a subset of ``E``; the obligation engine goes
        one granularity finer and discharges :meth:`check_lm_pair` per
        (abstraction, program action) pair.
        """
        results = {}
        pool = self.eliminated if names is None else tuple(names)
        for name in pool:
            abstraction = self.abstraction_of(name)
            universe_for_abs = universe.extended(
                extra_locals={abstraction.name: universe.locals_for(name)}
            )
            check = is_left_mover_wrt_program(
                Action(name, abstraction.gate, abstraction.transitions, abstraction.params),
                self.program,
                universe_for_abs,
                skip=skip,
            )
            check.name = f"LM: α({name}) left mover wrt P"
            results[f"LM[{name}]"] = check
        return results

    def lm_universe(self, universe: StoreUniverse, name: str) -> StoreUniverse:
        """The universe the LM condition for ``name`` is checked over: the
        abstraction borrows ``name``'s candidate locals."""
        abstraction = self.abstraction_of(name)
        return universe.extended(
            extra_locals={abstraction.name: universe.locals_for(name)}
        )

    def check_lm_pair(
        self,
        universe: StoreUniverse,
        name: str,
        other: str,
        universe_for_abs: Optional[StoreUniverse] = None,
    ) -> CheckResult:
        """One cell of the LM matrix: is :math:`\\alpha(name)` a left mover
        w.r.t. the single program action ``other``? The union of these
        cells over all non-skipped program actions equals
        ``check_lm(universe)[f"LM[{name}]"]`` (the engine merges them).

        ``universe_for_abs`` lets callers reuse one :meth:`lm_universe`
        across all pairs of the same ``name`` (its pair-admissibility cache
        is per-instance).
        """
        abstraction = self.abstraction_of(name)
        if universe_for_abs is None:
            universe_for_abs = self.lm_universe(universe, name)
        return is_left_mover(
            self._view(
                Action(name, abstraction.gate, abstraction.transitions, abstraction.params)
            ),
            self._view(self.program[other]),
            universe_for_abs,
        )

    def check_co(
        self, universe: StoreUniverse, names: Optional[Iterable[str]] = None
    ) -> CheckResult:
        """(CO): cooperation, checked locally thanks to monotonicity.

        For every A ∈ E and gate-satisfying store of :math:`\\alpha(A)`,
        some transition strictly decreases the lexicographic measure from
        :math:`(g, \\{(\\ell, A)\\})` to :math:`(g', \\Omega')`.

        ``names`` restricts to a subset of ``E`` (one engine obligation per
        eliminated action); the full condition is the in-order merge.
        """
        result = CheckResult("CO: cooperation", True)
        pool = self.eliminated if names is None else tuple(names)
        for name in pool:
            abstraction = self._view(self.abstraction_of(name))
            for g in universe.globals_:
                for l in universe.locals_for(name):
                    if not universe.single_ok(g, name, l):
                        continue
                    state = combine(g, l)
                    if not abstraction.gate(state):
                        continue
                    result.checked += 1
                    before = Config(g, Multiset([PendingAsync(name, l)]))
                    decreasing = False
                    for tr in abstraction.transitions(state):
                        after = Config(tr.new_global, tr.created)
                        if self.measure.decreases(before, after):
                            decreasing = True
                            break
                    if not decreasing:
                        _fail(
                            result,
                            GateWitness(
                                reason=f"α({name}) cannot decrease the measure",
                                check="cooperation",
                                actors=(name,),
                                context=(g, l),
                            ),
                        )
        return result

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #

    def check(
        self,
        universe: StoreUniverse,
        lm_skip: Iterable[str] = (),
        jobs: Optional[int] = None,
        scheduler=None,
        fail_fast: bool = False,
        tracer=None,
        resilience=None,
        checkpoint_label: Optional[str] = None,
        cache=None,
        symmetry=None,
    ) -> ISResult:
        """Check all IS conditions over a store universe.

        ``lm_skip`` excludes action names from the left-mover pool, used
        for iterated IS where previously eliminated actions have already
        disappeared from the program (Section 5.3).

        The conditions are decomposed into an obligation DAG and discharged
        by ``repro.engine.obligations`` — serially by default, or across
        ``jobs`` worker processes (an explicit ``scheduler`` overrides
        ``jobs``). ``fail_fast=True`` skips obligations whose dependencies
        already failed; the default runs everything, matching
        :meth:`check_inline`. The resulting condition map is identical for
        every backend.

        ``tracer`` (a :class:`repro.obs.Tracer`) records one span per
        discharged obligation; it observes the outcomes the scheduler
        already returns and cannot change the result (``tracer=None``
        output is identical, byte for byte).

        ``resilience`` (a
        :class:`~repro.engine.resilience.ResilienceConfig`) arms
        per-obligation deadlines, crash retries, and checkpoint/resume;
        ``checkpoint_label`` names this application's journal file. See
        ``repro.engine.obligations.discharge``.

        ``cache`` (an :class:`~repro.engine.rcache.ObligationCache` or a
        directory path) reuses persisted results for obligations whose
        dependency fingerprints are unchanged — they are seeded, not
        executed — and stores every freshly completed obligation back.

        ``symmetry`` (a :class:`~repro.core.symmetry.SymmetrySpec`) folds
        the universe onto orbit representatives before discharging — a
        no-op when the universe was already built quotiented
        (``StoreUniverse.from_reachable(..., symmetry=...)``). Verdicts
        are preserved for equivariant protocols (see DESIGN.md, "Symmetry
        quotients"); the quotient's fingerprints carry the group identity
        so its cache entries never alias the unquotiented ones.
        """
        from ..engine.obligations import discharge

        if symmetry is not None:
            universe = universe.quotiented(symmetry)
        return discharge(
            self,
            universe,
            lm_skip=lm_skip,
            jobs=jobs,
            scheduler=scheduler,
            fail_fast=fail_fast,
            tracer=tracer,
            resilience=resilience,
            checkpoint_label=checkpoint_label,
            cache=cache,
        )

    def check_inline(
        self, universe: StoreUniverse, lm_skip: Iterable[str] = ()
    ) -> ISResult:
        """The pre-engine monolithic check: every condition in order, in
        this process, with no obligation bookkeeping. Retained as the
        regression oracle the engine's condition maps are compared against
        (``tests/engine``)."""
        result = ISResult()
        result.conditions.update(self.check_abstractions(universe))
        result.conditions["I1"] = self.check_i1(universe)
        result.conditions["I2"] = self.check_i2(universe)
        result.conditions["I3"] = self.check_i3(universe)
        result.conditions.update(self.check_lm(universe, skip=lm_skip))
        result.conditions["CO"] = self.check_co(universe)
        return result

    def apply(self) -> Program:
        """The transformed program :math:`\\mathcal{P}[M \\mapsto M']`.

        Sound only if :meth:`check` passed; callers are expected to check
        first (the protocol pipelines in ``repro.protocols`` do).
        """
        return self.program.with_action(self.m_name, self.m_prime)

    def apply_and_drop(self) -> Program:
        """Like :meth:`apply`, but also drop the eliminated actions if no
        remaining action can spawn them (convenience for iterated IS)."""
        return self.apply().without_actions(self.eliminated)
