"""Symmetry reduction: quotient store universes by value-permutation groups.

The case-study protocols are symmetric in node identity (and Paxos also in
the proposed values): permuting the node ids of a reachable configuration
yields another reachable configuration, and every gate, transition
relation, abstraction, and termination measure commutes with the renaming.
The IS proof obligations are universally quantified over harvested store
universes, so it suffices to check **one representative per orbit** of the
permutation group — the classic symmetry reduction of explicit-state model
checking, applied here to the enumeration universes that substitute for
the paper's SMT backend (see DESIGN.md, "Symmetry quotients").

A protocol *declares* its symmetry as a :class:`SymmetrySpec`: named
**sorts** (finite value domains acted on by their full symmetric group,
e.g. ``node -> (1, 2, 3)``), a **rename rule** per global variable saying
where sort values sit inside the variable's shape, and a rule per action
parameter. The ghost ``pendingAsyncs`` bag is renamed automatically from
the action-parameter rules, so a configuration's global store and its
pending multiset are always renamed **jointly** by one permutation —
that joint consistency is what keeps the ghost admissibility filtering
(:class:`~repro.core.context.GhostContext`) exact on the quotient.

:class:`Canonicalizer` picks the lexicographically least orbit element
under :func:`~repro.core.hashing.structural_key` — a deterministic,
cross-process total order — so canonical representatives agree between
runs, processes, and ``PYTHONHASHSEED`` values, and the interner, the
columnar columns, the evaluation memos, and the rcache fingerprints all
operate on the quotient without any further changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations, product
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from .action import PendingAsync
from .hashing import structural_key
from .mapping import FrozenDict
from .multiset import Multiset
from .semantics import Config
from .store import Store

__all__ = [
    "Perm",
    "RenameRule",
    "ID",
    "atom",
    "opt",
    "tup",
    "seq",
    "fset",
    "fmap",
    "bag",
    "SymmetrySpec",
    "Canonicalizer",
]

#: One group element: per sort, a bijection on that sort's domain.
Perm = Mapping[str, Mapping[Hashable, Hashable]]

#: A rename rule: apply a group element to one value shape.
RenameRule = Callable[[Perm, Hashable], Hashable]


# --------------------------------------------------------------------- #
# Rename-rule combinators
# --------------------------------------------------------------------- #


def ID(perm: Perm, value: Hashable) -> Hashable:
    """Leave the value untouched (counters, rounds, payload data)."""
    return value


def atom(sort: str) -> RenameRule:
    """A bare value of ``sort``: map it through the permutation.

    Lenient on values outside the declared domain (they pass through
    unchanged), so boundary stores with out-of-range ids stay legal.
    """

    def rule(perm: Perm, value: Hashable) -> Hashable:
        mapping = perm.get(sort)
        if mapping is None:
            return value
        return mapping.get(value, value)

    return rule


def opt(inner: RenameRule) -> RenameRule:
    """``Optional``: ``None`` passes through, anything else is renamed."""

    def rule(perm: Perm, value: Hashable) -> Hashable:
        if value is None:
            return None
        return inner(perm, value)

    return rule


def tup(*rules: RenameRule) -> RenameRule:
    """A fixed-arity tuple, one rule per position."""

    def rule(perm: Perm, value: Hashable) -> Hashable:
        return tuple(r(perm, v) for r, v in zip(rules, value))

    return rule


def seq(inner: RenameRule) -> RenameRule:
    """A variable-length tuple of uniform elements (order preserved)."""

    def rule(perm: Perm, value: Hashable) -> Hashable:
        return tuple(inner(perm, v) for v in value)

    return rule


def fset(inner: RenameRule) -> RenameRule:
    """A ``frozenset`` of renamed elements."""

    def rule(perm: Perm, value: Hashable) -> Hashable:
        return frozenset(inner(perm, v) for v in value)

    return rule


def fmap(key_rule: RenameRule, value_rule: RenameRule) -> RenameRule:
    """A :class:`~repro.core.mapping.FrozenDict`, keys and values renamed.

    Key renaming is a bijection on the declared domain, so distinct keys
    stay distinct and the map shape is preserved.
    """

    def rule(perm: Perm, value: Hashable) -> Hashable:
        return FrozenDict(
            {key_rule(perm, k): value_rule(perm, v) for k, v in value.items()}
        )

    return rule


def bag(inner: RenameRule) -> RenameRule:
    """A :class:`~repro.core.multiset.Multiset` of renamed elements.

    Multiplicities of elements that happen to collide after a lenient
    rename accumulate rather than overwrite.
    """

    def rule(perm: Perm, value: Hashable) -> Hashable:
        counts: Dict[Hashable, int] = {}
        for element, count in value.counts():
            renamed = inner(perm, element)
            counts[renamed] = counts.get(renamed, 0) + count
        return Multiset.from_counts(counts)

    return rule


# --------------------------------------------------------------------- #
# The declared symmetry of a protocol instance
# --------------------------------------------------------------------- #


@dataclass
class SymmetrySpec:
    """A protocol instance's declared permutation symmetry.

    * ``sorts`` maps a sort name to its finite domain; the acting group is
      the direct product of the full symmetric groups on each domain.
    * ``global_rules`` maps a global variable name to the rule renaming
      its value; undeclared globals are left untouched (sound only if
      they genuinely contain no sort values — the soundness suite in
      ``tests/engine/test_symmetry_differential.py`` holds every declared
      spec to verdict identity against the unquotiented oracle).
    * ``local_rules`` maps an action name to per-parameter rules; actions
      or parameters without rules are untouched.
    * ``ghost_var`` names the ghost pending-async bag, renamed
      automatically by renaming each :class:`PendingAsync` through
      ``local_rules`` — jointly with the rest of the store, under the
      same permutation.

    Declaring a spec is a **soundness obligation**: every gate,
    transition relation, abstraction, measure, and spec predicate of the
    protocol must commute with the renaming (equivariance). The repo's
    protocols keep node ids opaque — membership tests, set updates,
    counting — so this holds by inspection and is pinned by test.
    """

    name: str
    sorts: Dict[str, Tuple[Hashable, ...]]
    global_rules: Dict[str, RenameRule] = field(default_factory=dict)
    local_rules: Dict[str, Dict[str, RenameRule]] = field(default_factory=dict)
    ghost_var: Optional[str] = None

    def group(self) -> List[Perm]:
        """All group elements, the identity first.

        The group order is :math:`\\prod_s |dom(s)|!` — tiny for the
        instance sizes enumeration can reach (e.g. 12 for Paxos with 3
        nodes and 2 values), and the canonicalizer memoizes per-value
        renames, so the factor is paid per *distinct* value, not per
        store visit.
        """
        sort_names = sorted(self.sorts)
        per_sort: List[List[Dict[Hashable, Hashable]]] = []
        for sort in sort_names:
            domain = tuple(self.sorts[sort])
            per_sort.append(
                [dict(zip(domain, image)) for image in permutations(domain)]
            )
        return [
            dict(zip(sort_names, combo)) for combo in product(*per_sort)
        ]

    def order(self) -> int:
        """The group order (without materializing the group)."""
        total = 1
        for domain in self.sorts.values():
            for k in range(2, len(domain) + 1):
                total *= k
        return total

    def token(self) -> str:
        """A deterministic identity string for warm-state keys and
        progress reporting. Persistent cache fingerprints go further and
        digest the rule closures themselves (``repro.engine.rcache``)."""
        sorts = ",".join(
            f"{s}:{structural_key(tuple(dom))}"
            for s, dom in sorted(self.sorts.items())
        )
        rules = ",".join(sorted(self.global_rules))
        locals_ = ",".join(
            f"{a}({','.join(sorted(params))})"
            for a, params in sorted(self.local_rules.items())
        )
        return f"sym[{self.name}|{sorts}|{rules}|{locals_}|{self.ghost_var}]"

    def fingerprint_parts(self):
        """Everything a content-addressed fingerprint must cover: the
        domains and the rule functions (digested by closure bytecode in
        ``repro.engine.rcache``), so two specs with equal names but
        different rules can never alias a cache entry."""
        return (
            "symmetry-spec",
            self.name,
            tuple(sorted((s, tuple(d)) for s, d in self.sorts.items())),
            tuple(sorted(self.global_rules.items())),
            tuple(
                (action, tuple(sorted(rules.items())))
                for action, rules in sorted(self.local_rules.items())
            ),
            self.ghost_var,
        )


# --------------------------------------------------------------------- #
# Canonicalization
# --------------------------------------------------------------------- #


class Canonicalizer:
    """Maps stores and configurations to lexicographic-least orbit
    representatives under a :class:`SymmetrySpec`.

    All renames are memoized at the value level — keyed by
    ``(perm index, variable, value)`` — because protocol stores share a
    small vocabulary of container values; the per-store group sweep then
    mostly re-assembles cached pieces. Canonical results are additionally
    memoized per store / per config, which makes repeated canonicalization
    during BFS (every successor, every parent) cheap.
    """

    def __init__(self, spec: SymmetrySpec):
        self.spec = spec
        self.perms: List[Perm] = spec.group()
        self._globals_memo: Dict[Store, Store] = {}
        self._config_memo: Dict[Config, Config] = {}
        self._gval_memo: Dict[Tuple[int, str, Hashable], Hashable] = {}
        self._pa_memo: Dict[Tuple[int, PendingAsync], PendingAsync] = {}
        self._key_memo: Dict[Hashable, str] = {}

    @classmethod
    def of(cls, symmetry) -> "Canonicalizer":
        """Accept either a spec or an existing canonicalizer."""
        if isinstance(symmetry, Canonicalizer):
            return symmetry
        return cls(symmetry)

    # -- renaming ------------------------------------------------------ #

    def _key(self, value: Hashable) -> str:
        cached = self._key_memo.get(value)
        if cached is None:
            cached = structural_key(value)
            self._key_memo[value] = cached
        return cached

    def rename_pa(self, pending: PendingAsync, pi: int) -> PendingAsync:
        """Rename one pending async's parameters (action names are never
        sort values)."""
        memo_key = (pi, pending)
        cached = self._pa_memo.get(memo_key)
        if cached is not None:
            return cached
        rules = self.spec.local_rules.get(pending.action)
        if not rules or not len(pending.locals):
            renamed = pending
        else:
            perm = self.perms[pi]
            data = pending.locals.as_dict()
            changed = False
            for param, rule in rules.items():
                if param in data:
                    new = rule(perm, data[param])
                    if new is not data[param]:
                        data[param] = new
                        changed = True
            renamed = PendingAsync(pending.action, Store(data)) if changed else pending
        self._pa_memo[memo_key] = renamed
        return renamed

    def rename_pending(self, pending: Multiset, pi: int) -> Multiset:
        """Rename a pending-async multiset element by element."""
        counts: Dict[Hashable, int] = {}
        for element, count in pending.counts():
            renamed = self.rename_pa(element, pi)
            counts[renamed] = counts.get(renamed, 0) + count
        return Multiset.from_counts(counts)

    def rename_global(self, store: Store, pi: int) -> Store:
        """Rename one global store under group element ``pi`` (ghost bag
        included, via the action-parameter rules)."""
        perm = self.perms[pi]
        data = store.as_dict()
        for var, value in data.items():
            memo_key = (pi, var, value)
            cached = self._gval_memo.get(memo_key)
            if cached is None:
                rule = self.spec.global_rules.get(var)
                if rule is not None:
                    cached = rule(perm, value)
                elif var == self.spec.ghost_var and isinstance(value, Multiset):
                    cached = self.rename_pending(value, pi)
                else:
                    cached = value
                self._gval_memo[memo_key] = cached
            data[var] = cached
        return Store(data)

    def rename_local(self, action: str, locals_: Store, pi: int) -> Store:
        """Rename one action's local (parameter) store."""
        return self.rename_pa(PendingAsync(action, locals_), pi).locals

    # -- canonical representatives ------------------------------------- #

    def store(self, store: Store) -> Store:
        """The orbit representative of a global store: structural-key
        minimum over the group."""
        cached = self._globals_memo.get(store)
        if cached is not None:
            return cached
        best = store
        best_key = self._key(store)
        for pi in range(1, len(self.perms)):
            candidate = self.rename_global(store, pi)
            key = self._key(candidate)
            if key < best_key:
                best, best_key = candidate, key
        self._globals_memo[store] = best
        return best

    def config(self, config: Config) -> Config:
        """The orbit representative of a configuration, renamed
        **jointly**: one permutation is applied to the global store and
        the pending multiset, so the ghost bag inside the canonical
        global still mirrors the canonical pending multiset exactly."""
        cached = self._config_memo.get(config)
        if cached is not None:
            return cached
        best_pi = 0
        best_glob = config.glob
        best_key = (self._key(config.glob), None)
        for pi in range(1, len(self.perms)):
            glob = self.rename_global(config.glob, pi)
            key = (self._key(glob), None)
            if key[0] < best_key[0]:
                best_pi, best_glob, best_key = pi, glob, key
            elif key[0] == best_key[0] and pi != best_pi:
                # Global-store tie: break on the renamed pending bag so
                # the joint representative stays deterministic even for
                # configurations without a ghost mirror.
                if best_key[1] is None:
                    best_key = (
                        best_key[0],
                        self._key(self.rename_pending(config.pending, best_pi)),
                    )
                pending_key = self._key(self.rename_pending(config.pending, pi))
                if pending_key < best_key[1]:
                    best_pi, best_glob = pi, glob
                    best_key = (key[0], pending_key)
        if best_pi == 0:
            canonical = config
        else:
            canonical = Config(
                best_glob, self.rename_pending(config.pending, best_pi)
            )
        self._config_memo[config] = canonical
        return canonical

    def local_orbit(self, action: str, locals_: Store) -> List[Store]:
        """The full orbit of one action's local store (used to close
        sampled or extended locals pools under the group)."""
        seen: Dict[Store, None] = {}
        for pi in range(len(self.perms)):
            seen.setdefault(self.rename_local(action, locals_, pi))
        return list(seen)

    def orbit(self, store: Store) -> List[Store]:
        """The full orbit of a global store (distinct elements)."""
        seen: Dict[Store, None] = {}
        for pi in range(len(self.perms)):
            seen.setdefault(self.rename_global(store, pi))
        return list(seen)

    def __repr__(self) -> str:
        return (
            f"Canonicalizer({self.spec.name}, |G|={len(self.perms)}, "
            f"{len(self._globals_memo)} globals memoized)"
        )
