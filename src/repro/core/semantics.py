"""Operational semantics: configurations, steps, and executions.

Implements the transition relation :math:`\\xrightarrow{\\mathcal{P}}` of
Section 3. A configuration is a pair :math:`(g, \\Omega)` of a global store
and a finite multiset of pending asyncs, or the unique failure configuration
:math:`\\lightning`. In a configuration, any pending async
:math:`(\\ell, A) \\in \\Omega` may be scheduled next: if the gate of ``A``
fails on :math:`g \\cdot \\ell` the program *fails*; otherwise a transition
of ``A`` atomically updates the global store and adds the newly created PAs.

An execution is a sequence of configurations connected by steps. It is

* **initialized** if it starts in :math:`(g, \\{(\\ell, \\mathtt{Main})\\})`,
* **terminating** if it ends in :math:`(g, \\emptyset)`, and
* **failing** if it ends in :math:`\\lightning`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

from .action import PendingAsync, Transition
from .multiset import Multiset
from .program import MAIN, Program
from .store import Store, combine

__all__ = [
    "Config",
    "FAILURE",
    "Failure",
    "Step",
    "Execution",
    "initial_config",
    "enabled_pending",
    "steps_from",
    "step_successors",
]


class Failure:
    """The unique failure configuration :math:`\\lightning`."""

    _instance: Optional["Failure"] = None

    def __new__(cls) -> "Failure":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "FAILURE"


#: Singleton failure configuration.
FAILURE = Failure()


@dataclass(frozen=True)
class Config:
    """A non-failure configuration :math:`(g, \\Omega)`."""

    glob: Store
    pending: Multiset

    @property
    def terminated(self) -> bool:
        """True if no pending asyncs remain."""
        return len(self.pending) == 0

    def __repr__(self) -> str:
        return f"Config({self.glob!r}, {self.pending!r})"


ConfigOrFailure = Union[Config, Failure]


@dataclass(frozen=True)
class Step:
    """One step of the transition relation.

    ``executed`` is the scheduled pending async; ``transition`` is the
    action transition taken (``None`` when the step is a gate failure);
    ``target`` is the successor configuration (:data:`FAILURE` on failure).
    """

    executed: PendingAsync
    transition: Optional[Transition]
    target: ConfigOrFailure

    @property
    def failing(self) -> bool:
        return self.transition is None

    def __repr__(self) -> str:
        if self.failing:
            return f"Step({self.executed!r} -> FAILURE)"
        return f"Step({self.executed!r})"


def initial_config(global_store: Store, main_locals: Store = Store()) -> Config:
    """The initialized configuration with a single PA to ``Main``."""
    return Config(global_store, Multiset([PendingAsync(MAIN, main_locals)]))


def enabled_pending(program: Program, config: Config) -> Iterator[PendingAsync]:
    """Distinct pending asyncs that may be scheduled in ``config``."""
    return config.pending.support()


def steps_from(program: Program, config: Config) -> Iterator[Step]:
    """Enumerate all steps of the transition relation from ``config``.

    Scheduling a PA whose action gate fails yields a failing step; otherwise
    one step per transition of the action. A PA whose action is enabled but
    has no transitions (blocking) contributes no steps.
    """
    for pending in config.pending.support():
        action = program[pending.action]
        state = combine(config.glob, pending.locals)
        if not action.gate(state):
            yield Step(pending, None, FAILURE)
            continue
        remaining = config.pending.remove(pending)
        for tr in action.transitions(state):
            target = Config(tr.new_global, remaining.union(tr.created))
            yield Step(pending, tr, target)


def step_successors(program: Program, config: Config) -> List[ConfigOrFailure]:
    """Successor configurations (deduplicated order-preserving)."""
    seen = set()
    result: List[ConfigOrFailure] = []
    for step in steps_from(program, config):
        key = step.target if isinstance(step.target, Config) else FAILURE
        if key not in seen:
            seen.add(key)
            result.append(step.target)
    return result


@dataclass
class Execution:
    """A finite execution: an initial configuration plus a list of steps.

    The i-th step leads from :meth:`config_at(i) <config_at>` to
    ``config_at(i+1)``. Provides the paper's classification predicates.
    """

    initial: Config
    steps: List[Step]

    def config_at(self, index: int) -> ConfigOrFailure:
        """Configuration after ``index`` steps (0 = initial)."""
        if index == 0:
            return self.initial
        return self.steps[index - 1].target

    @property
    def final(self) -> ConfigOrFailure:
        return self.config_at(len(self.steps))

    @property
    def failing(self) -> bool:
        return isinstance(self.final, Failure)

    @property
    def terminating(self) -> bool:
        final = self.final
        return isinstance(final, Config) and final.terminated

    @property
    def initialized(self) -> bool:
        pending = list(self.initial.pending)
        return len(pending) == 1 and pending[0].action == MAIN

    def configs(self) -> Iterator[ConfigOrFailure]:
        yield self.initial
        for step in self.steps:
            yield step.target

    def validate(self, program: Program) -> None:
        """Check the execution is well-formed w.r.t. ``program``.

        Raises :class:`ValueError` on the first ill-formed step. Used by
        tests and by the execution-rewriting engine to certify its output.
        """
        current: ConfigOrFailure = self.initial
        for i, step in enumerate(self.steps):
            if isinstance(current, Failure):
                raise ValueError(f"step {i} follows the failure configuration")
            if step.executed not in current.pending:
                raise ValueError(
                    f"step {i} executes {step.executed!r} not pending in {current!r}"
                )
            action = program[step.executed.action]
            state = combine(current.glob, step.executed.locals)
            if step.failing:
                if action.gate(state):
                    raise ValueError(f"step {i} fails although the gate holds")
                current = FAILURE
                continue
            if not action.gate(state):
                raise ValueError(f"step {i} executes {step.executed!r} with false gate")
            tr = step.transition
            if tr not in action.outcomes(state):
                raise ValueError(
                    f"step {i}: {tr!r} is not a transition of {step.executed.action}"
                )
            expected = Config(
                tr.new_global,
                current.pending.remove(step.executed).union(tr.created),
            )
            if step.target != expected:
                raise ValueError(f"step {i} target mismatch: {step.target!r}")
            current = expected

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        kinds = []
        if self.initialized:
            kinds.append("initialized")
        if self.terminating:
            kinds.append("terminating")
        if self.failing:
            kinds.append("failing")
        tag = " ".join(kinds) or "partial"
        return f"Execution(<{tag}, {len(self.steps)} steps>)"
