"""Shared memoization for obligation discharge.

Every IS obligation (I1, I2, I3, LM, CO — see Figure 3) is discharged by
enumerating ``action.transitions(store)`` and ``action.gate(store)`` over a
finite universe, and the same ``(action, store)`` evaluations recur across
obligations: the invariant's transitions are enumerated by I1, I2 and I3
alike, and every left-mover pair check re-evaluates the gates and outcomes
of both actions. CIVL leans on Z3's aggressive term caching for the same
effect; this module is the explicit-state analogue.

:class:`EvaluationCache` memoizes gate and transition evaluations *per
underlying callable pair*, so distinct :class:`~repro.core.action.Action`
wrappers around the same gate/transition functions (the IS checks build
several such views of the invariant) share one memo. Memoization is safe
because actions are pure: their gates and transition enumerators depend
only on the store argument.

The per-process singleton (:func:`process_cache`) is keyed by PID: a
process-pool worker never shares a *live* cache with its parent. What a
forked child starts from depends on the parent cache's ``inheritable``
flag. By default (flag unset) the child lazily rebuilds an empty cache of
its own, and the parent's memo dicts become unreachable copy-on-write
pages. When the parent marked its cache inheritable — the process-pool
scheduler does so after its warm-up pass — the child instead *adopts* the
parent's memo tables through fork copy-on-write: same gate/transition
memos (warm), fresh hit/miss counters (honest per-worker accounting).
Adoption is sound because memos are pure functions of the store — a warm
entry is indistinguishable from one the child would recompute — and safe
because the child's mutations land on its own copy-on-write pages, never
in the parent. :func:`caching_disabled` switches the layer off for
baseline measurements.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .action import Action, Transition
from .store import Store, memo_key, reset_store_interner

__all__ = [
    "CacheStats",
    "CachedAction",
    "EvaluationCache",
    "process_cache",
    "active_cache",
    "caching_disabled",
    "reset_process_cache",
    "register_reset_hook",
    "counts_snapshot",
    "snapshot_delta",
]


@dataclass
class CacheStats:
    """Monotone hit/miss counters for one cache (or an aggregate of them)."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.total if self.total else 0.0

    def merged(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.hits + other.hits, self.misses + other.misses)

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


class _Memo:
    """Shared memo tables for one (gate, transitions) callable pair.

    Keyed by :func:`repro.core.store.memo_key` — the store's intern id,
    an int, so lookups hash a machine word instead of a frozen item set.
    (While interning is disabled for baseline measurements the key is the
    store itself; int and Store keys never compare equal, so the modes
    cannot alias.) Int keys are only meaningful against the intern table
    that minted them, which is why :func:`reset_process_cache` clears the
    interner and these memos together.
    """

    __slots__ = ("gates", "outcomes", "gate_stats", "transition_stats")

    def __init__(self) -> None:
        self.gates: Dict[object, bool] = {}
        self.outcomes: Dict[object, List[Transition]] = {}
        self.gate_stats = CacheStats()
        self.transition_stats = CacheStats()

    def adopted(self) -> "_Memo":
        """A view with the same memo tables but fresh counters.

        Used when a forked child inherits a warm parent cache: the tables
        are shared Python objects in the child's copy-on-write image (so
        mutations stay process-local), while the counters restart at zero
        so per-worker hit rates reflect only the child's own lookups.
        """
        memo = _Memo.__new__(_Memo)
        memo.gates = self.gates
        memo.outcomes = self.outcomes
        memo.gate_stats = CacheStats()
        memo.transition_stats = CacheStats()
        return memo


class CachedAction:
    """A memoizing view of an action.

    Presents the same evaluation surface as :class:`~repro.core.action.Action`
    (``name``, ``params``, ``gate``, ``transitions``, ``outcomes``) while
    routing every evaluation through a :class:`_Memo`, which may be shared
    with other views of the same underlying callables.
    """

    __slots__ = ("action", "name", "params", "_memo")

    def __init__(self, action: Action, memo: Optional[_Memo] = None):
        self.action = action
        self.name = action.name
        self.params = action.params
        self._memo = memo if memo is not None else _Memo()

    def gate(self, state: Store) -> bool:
        memo = self._memo
        key = memo_key(state)
        cached = memo.gates.get(key)
        if cached is None:
            memo.gate_stats.misses += 1
            cached = bool(self.action.gate(state))
            memo.gates[key] = cached
        else:
            memo.gate_stats.hits += 1
        return cached

    def transitions(self, state: Store) -> List[Transition]:
        memo = self._memo
        key = memo_key(state)
        cached = memo.outcomes.get(key)
        if cached is None:
            memo.transition_stats.misses += 1
            cached = list(self.action.transitions(state))
            memo.outcomes[key] = cached
        else:
            memo.transition_stats.hits += 1
        return cached

    def outcomes(self, state: Store) -> List[Transition]:
        """Alias matching :meth:`Action.outcomes` (already a list here)."""
        return self.transitions(state)

    def __repr__(self) -> str:
        return f"CachedAction({self.name})"


class EvaluationCache:
    """Per-process registry of shared action memos.

    Keyed by the ``(gate, transitions)`` callable pair, so the many
    :class:`Action` views the IS checks construct around one invariant all
    hit the same memo. Holding the callables as keys also keeps them alive,
    ruling out id-reuse aliasing.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.inheritable = False
        self._memos: Dict[Tuple[object, object], _Memo] = {}

    def mark_inheritable(self) -> None:
        """Allow forked children to adopt this cache's memo tables.

        The process-pool scheduler calls this after warming the cache, so
        workers start from the warm memos instead of empty tables. Without
        the mark, a fork boundary discards everything (the historical
        behaviour, kept as the default so unrelated forks stay isolated).
        """
        self.inheritable = True

    def adopted(self) -> "EvaluationCache":
        """This cache rebound to the calling process: shared memo tables,
        fresh counters, PID updated. Called from a forked child via
        :func:`process_cache`."""
        child = EvaluationCache()
        child.inheritable = self.inheritable
        child._memos = {key: memo.adopted() for key, memo in self._memos.items()}
        return child

    def cached(self, action) -> CachedAction:
        """A memoized view of ``action`` (idempotent on cached views)."""
        if isinstance(action, CachedAction):
            return action
        key = (action.gate, action.transitions)
        memo = self._memos.get(key)
        if memo is None:
            memo = _Memo()
            self._memos[key] = memo
        return CachedAction(action, memo)

    def stats_by_kind(self) -> Dict[str, CacheStats]:
        gate = CacheStats()
        transitions = CacheStats()
        for memo in self._memos.values():
            gate = gate.merged(memo.gate_stats)
            transitions = transitions.merged(memo.transition_stats)
        return {"gate": gate, "transitions": transitions}

    def stats(self) -> CacheStats:
        by_kind = self.stats_by_kind()
        return by_kind["gate"].merged(by_kind["transitions"])

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {kind: s.as_dict() for kind, s in self.stats_by_kind().items()}

    def counts_snapshot(self) -> Dict[str, Tuple[int, int]]:
        """Raw ``{kind: (hits, misses)}`` counters, cheap enough to take
        around every obligation (a handful of integer reads — the number
        of distinct memos, not the number of cached stores). Pair two
        snapshots with :func:`snapshot_delta` to attribute cache activity
        to one span of work."""
        return {
            kind: (stats.hits, stats.misses)
            for kind, stats in self.stats_by_kind().items()
        }

    def clear(self) -> None:
        self._memos.clear()

    def __len__(self) -> int:
        return len(self._memos)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"EvaluationCache(pid={self.pid}, {len(self._memos)} actions, "
            f"{s.hits} hits / {s.misses} misses)"
        )


_PROCESS_CACHE: Optional[EvaluationCache] = None
_DISABLED_DEPTH = 0


def process_cache() -> EvaluationCache:
    """The calling process's evaluation cache.

    Lazily constructed. When the PID changed (the caller is a forked
    child), the inherited singleton is either *adopted* — same warm memo
    tables, fresh counters — if the parent marked it inheritable (see
    :meth:`EvaluationCache.mark_inheritable`), or rebuilt empty otherwise.
    Either way the child never mutates the parent's live cache: after a
    fork the two processes only share copy-on-write pages.
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = EvaluationCache()
    elif _PROCESS_CACHE.pid != os.getpid():
        if _PROCESS_CACHE.inheritable:
            _PROCESS_CACHE = _PROCESS_CACHE.adopted()
        else:
            _PROCESS_CACHE = EvaluationCache()
    return _PROCESS_CACHE


#: Reset hooks for caches whose keys are minted from the intern table
#: (``repro.core.columnar`` registers its column store here). Running them
#: from :func:`reset_process_cache` keeps every int-keyed layer coherent
#: with the table that minted its keys.
_RESET_HOOKS: List = []


def register_reset_hook(hook) -> None:
    """Run ``hook()`` whenever :func:`reset_process_cache` fires."""
    _RESET_HOOKS.append(hook)


def reset_process_cache() -> None:
    """Drop the process cache (tests and benchmarks use this for cold runs).

    Also clears the store interner and every registered dependent cache:
    evaluation memos and columnar tables key by intern ids, so the three
    layers must reset as one — a cleared interner would otherwise re-mint
    ids that alias stale memo entries.
    """
    global _PROCESS_CACHE
    _PROCESS_CACHE = None
    reset_store_interner()
    for hook in _RESET_HOOKS:
        hook()


def active_cache() -> Optional[EvaluationCache]:
    """The process cache, or ``None`` while caching is disabled."""
    if _DISABLED_DEPTH:
        return None
    return process_cache()


def counts_snapshot() -> Dict[str, Tuple[int, int]]:
    """The process cache's raw counters right now (see
    :meth:`EvaluationCache.counts_snapshot`). Always reads the live
    process cache — while caching is disabled the counters simply do not
    move, so deltas come out zero, which is the honest report."""
    return process_cache().counts_snapshot()


def snapshot_delta(
    before: Dict[str, Tuple[int, int]], after: Dict[str, Tuple[int, int]]
) -> Dict[str, Dict[str, int]]:
    """Per-kind hit/miss increments between two counter snapshots.

    The schedulers bracket every obligation with snapshots and ship the
    delta back with the result, giving the tracing layer per-span cache
    attribution without a second accounting path. Counters are monotone
    within a process, so the delta is non-negative; kinds absent from
    ``before`` (memos created inside the span) count from zero.
    """
    delta: Dict[str, Dict[str, int]] = {}
    for kind, (hits_after, misses_after) in after.items():
        hits_before, misses_before = before.get(kind, (0, 0))
        delta[kind] = {
            "hits": max(0, hits_after - hits_before),
            "misses": max(0, misses_after - misses_before),
        }
    return delta


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Disable shared memoization in this process (re-entrant).

    Used by benchmarks to measure the uncached baseline, and by tests to
    cross-check that cached and uncached discharge agree.
    """
    global _DISABLED_DEPTH
    _DISABLED_DEPTH += 1
    try:
        yield
    finally:
        _DISABLED_DEPTH -= 1
