"""Pending-async contexts: CIVL's linear-permission discipline, reproduced.

The paper's mover and IS conditions quantify over stores, but in CIVL they
are discharged under a *linear permission* discipline which guarantees that
(1) an action only executes when its pending async is actually present in
the configuration, and (2) two actions being commuted correspond to two
*distinct* pending asyncs. The case studies rely on this: their actions and
abstractions assert facts about a ghost global ``pendingAsyncs`` mirroring
the PA multiset :math:`\\Omega` (Figure 4(b), line 14), and without the
distinctness guarantee even a plain send action would fail gate forward
preservation against a second copy of itself.

This module reproduces that discipline as an explicit *PA context* attached
to a :class:`~repro.core.universe.StoreUniverse`:

* :meth:`PAContext.single` — may PA ``(ℓ, A)`` execute from global ``g``?
* :meth:`PAContext.pair` — may the two PAs coexist in one configuration?

:class:`NoContext` imposes nothing (the fully general check);
:class:`GhostContext` reads a ghost multiset variable and requires joint
multiset membership, exactly matching a program that keeps ``pendingAsyncs``
in sync with :math:`\\Omega`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .action import PendingAsync
from .multiset import Multiset
from .store import Store

__all__ = ["PAContext", "NoContext", "GhostContext", "InstanceContext"]


class PAContext:
    """Interface for constraining which (global, PA) combinations to check."""

    #: False when the constraint ignores the global store (enables caching
    #: of pair decisions across the whole universe).
    state_dependent: bool = True

    def cache_key(self, global_store: Store):
        """The part of ``global_store`` this context's decisions depend on.

        Returning a hashable key lets a :class:`~repro.core.universe.
        StoreUniverse` memoize ``single``/``pair`` decisions under that key
        (many globals share one key: e.g. all stores with the same ghost
        multiset). Return ``None`` to declare the decision uncachable.
        State-independent contexts depend on nothing, hence the constant.
        """
        return None if self.state_dependent else ()

    def single(self, global_store: Store, pending: PendingAsync) -> bool:
        """True if ``pending`` may be scheduled from ``global_store``."""
        raise NotImplementedError

    def pair(
        self,
        global_store: Store,
        first: PendingAsync,
        second: PendingAsync,
    ) -> bool:
        """True if both PAs may be simultaneously pending in a configuration
        with global store ``global_store`` (distinct PAs: an identical pair
        requires multiplicity two)."""
        raise NotImplementedError


class NoContext(PAContext):
    """The unconstrained context: check every store/PA combination."""

    state_dependent = False

    def single(self, global_store: Store, pending: PendingAsync) -> bool:
        return True

    def pair(
        self, global_store: Store, first: PendingAsync, second: PendingAsync
    ) -> bool:
        return True


class InstanceContext(PAContext):
    """Context for instruction-level programs: per-instance linearity.

    In the fine-grained layer, every pending async is a continuation
    ``proc#pc`` of some procedure *instance* identified by the procedure
    name plus its parameter values. A single instance has exactly one
    program counter, so two PAs belonging to the same instance can never
    coexist — the instruction-level analogue of CIVL's linear thread
    identifiers. (This presumes the module never spawns two instances of
    the same procedure with equal arguments;
    ``repro.reduction`` validates that on the explored instance.)

    ``instance_of`` maps an action name to ``(procedure, params)`` where
    ``params`` are the parameter names identifying the instance, or to
    ``None`` for multi-instance procedures (no exclusion applies: several
    identical PAs may be live at once).
    """

    state_dependent = False

    def __init__(self, instance_of):
        self._instance_of = instance_of

    def _identity(self, pending: PendingAsync):
        resolved = self._instance_of(pending.action)
        if resolved is None:
            return None
        proc, params = resolved
        return proc, tuple((p, pending.locals.get(p)) for p in params)

    def single(self, global_store: Store, pending: PendingAsync) -> bool:
        return True

    def pair(
        self, global_store: Store, first: PendingAsync, second: PendingAsync
    ) -> bool:
        a, b = self._identity(first), self._identity(second)
        if a is None or b is None:
            return True
        return a != b


@dataclass(frozen=True)
class GhostContext(PAContext):
    """Context induced by a ghost ``pendingAsyncs`` multiset variable.

    ``ghost_var`` names a global variable holding a
    :class:`~repro.core.multiset.Multiset` of
    :class:`~repro.core.action.PendingAsync` values that the program keeps
    equal to the configuration's :math:`\\Omega`.
    """

    ghost_var: str = "pendingAsyncs"

    def _ghost(self, global_store: Store) -> Multiset:
        value = global_store.get(self.ghost_var)
        if not isinstance(value, Multiset):
            raise TypeError(
                f"ghost variable {self.ghost_var!r} does not hold a Multiset"
            )
        return value

    def cache_key(self, global_store: Store):
        # Decisions depend only on the ghost multiset, so all globals
        # sharing a ghost value share one cache entry.
        return self._ghost(global_store)

    def single(self, global_store: Store, pending: PendingAsync) -> bool:
        return pending in self._ghost(global_store)

    def pair(
        self, global_store: Store, first: PendingAsync, second: PendingAsync
    ) -> bool:
        ghost = self._ghost(global_store)
        if first == second:
            return ghost.count(first) >= 2
        return first in ghost and second in ghost
