"""Store universes: finite quantifier domains for checking conditions.

Every proof obligation of the paper — action refinement (Definition 3.1),
the four left-mover conditions (Section 3), and the IS conditions I1/I2/I3/
LM/CO (Figure 3) — is a universally quantified statement over stores. CIVL
discharges them with an SMT solver; this reproduction discharges them by
*enumeration over a finite universe of stores* (see DESIGN.md).

A :class:`StoreUniverse` provides

* a set of candidate **global stores**, and
* per action name, a set of candidate **local stores** (parameter values).

The canonical construction is :meth:`StoreUniverse.from_reachable`, which
explores a program instance and harvests every global store of a reachable
configuration and every local store of a pending async observed during the
exploration. Protocols typically extend this with boundary stores (e.g.
perturbed channels) via :meth:`extended` so the checks also cover the
intermediate stores produced while commuting actions during rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .action import PendingAsync
from .cache import CacheStats
from .context import NoContext, PAContext
from .explore import explore
from .hashing import structural_key
from .program import Program
from .semantics import Config
from .store import EMPTY_STORE, Store, combine, intern_epoch, memo_key

__all__ = ["StoreUniverse"]


@dataclass
class StoreUniverse:
    """A finite quantifier domain: global stores + per-action local stores.

    The optional :class:`~repro.core.context.PAContext` restricts which
    (store, pending-async) combinations the conditions are checked on,
    reproducing CIVL's linear-permission discipline (see
    ``repro.core.context``).
    """

    globals_: List[Store]
    locals_by_action: Dict[str, List[Store]] = field(default_factory=dict)
    context: PAContext = field(default_factory=NoContext)
    #: The :class:`~repro.core.symmetry.SymmetrySpec` this universe is
    #: quotiented under, or ``None`` for an unquotiented universe. Hashed
    #: into ``universe_fingerprint`` (``repro.engine.rcache``) so
    #: quotiented and unquotiented caches can never alias.
    symmetry: Optional[object] = None
    _pair_cache: Dict[tuple, bool] = field(
        default_factory=dict, repr=False, compare=False
    )
    _single_cache: Dict[tuple, bool] = field(
        default_factory=dict, repr=False, compare=False
    )
    context_cache_stats: CacheStats = field(
        default_factory=CacheStats, repr=False, compare=False
    )
    _memo_epoch: object = field(default=None, repr=False, compare=False)
    _gids_cache: object = field(default=None, repr=False, compare=False)
    _g_ck: Dict[object, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _ck_ids: Dict[object, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _fresh_memo_keys(self) -> None:
        """Admissibility memos key locals by intern id, but this object may
        outlive an intern-table reset (``reset_process_cache`` cannot reach
        per-universe state) — so drop the memos whenever the table's epoch
        moved, before a stale id can alias a different store."""
        epoch = intern_epoch()
        if self._memo_epoch is not epoch:
            self._pair_cache.clear()
            self._single_cache.clear()
            self._gids_cache = None
            self._g_ck.clear()
            self._ck_ids.clear()
            self._memo_epoch = epoch

    def _class_of(self, global_store: Store) -> int:
        """The dense index of the global's context ``cache_key`` class, or
        -1 when the context declares its decisions uncachable.  Keying the
        admissibility memos by this small int (instead of the cache_key
        object itself, typically a ghost multiset) keeps probe hashing off
        the multisets."""
        gk = memo_key(global_store)
        ck = self._g_ck.get(gk)
        if ck is None:
            ckey = self.context.cache_key(global_store)
            if ckey is None:
                ck = -1
            else:
                ck = self._ck_ids.get(ckey)
                if ck is None:
                    ck = len(self._ck_ids)
                    self._ck_ids[ckey] = ck
            self._g_ck[gk] = ck
        return ck

    @classmethod
    def from_reachable(
        cls,
        program: Program,
        initials: Iterable[Config],
        max_configs: Optional[int] = None,
        symmetry=None,
    ) -> "StoreUniverse":
        """Harvest globals and PA locals from the reachable state space.

        With a ``symmetry`` (a :class:`~repro.core.symmetry.SymmetrySpec`),
        the exploration itself runs on the orbit quotient — every visited
        configuration is canonicalized before deduplication — so both the
        search frontier *and* the harvested universe shrink by up to the
        group order. Locals are harvested from the canonical
        configurations' pending multisets — and then **closed under the
        group**: a canonical representative fixes one permutation per
        configuration, so the raw harvest holds one orbit member per
        (config, PA) pair, while the discharge pairs every canonical
        global with every pool element and needs the member *matching
        that global's ghost* to be present. Closure restores exactly the
        locals the unquotiented harvest would contain (reachability is
        equivariant), so a failing (global, locals) pair in the full
        product always has a failing image in the quotient product —
        counterexamples cannot be quotiented away.

        Stores are ordered by :func:`~repro.core.hashing.structural_key`
        (not ``repr``): address-bearing reprs of exotic values made
        universe order — and therefore sampler output and fingerprints —
        nondeterministic across processes.
        """
        canonicalize = None
        canon = None
        if symmetry is not None:
            from .symmetry import Canonicalizer

            canon = Canonicalizer.of(symmetry)
            symmetry = canon.spec
            canonicalize = canon.config
        result = explore(
            program, initials, max_configs=max_configs, canonicalize=canonicalize
        )
        globals_seen: Set[Store] = set()
        locals_seen: Dict[str, Set[Store]] = {}
        for config in result.reachable:
            globals_seen.add(config.glob)
            for pending in config.pending.support():
                locals_seen.setdefault(pending.action, set()).add(pending.locals)
        if canon is not None:
            for name, stores in locals_seen.items():
                locals_seen[name] = {
                    member
                    for store in stores
                    for member in canon.local_orbit(name, store)
                }
        return cls(
            sorted(globals_seen, key=structural_key),
            {
                name: sorted(stores, key=structural_key)
                for name, stores in locals_seen.items()
            },
            symmetry=symmetry,
        )

    @classmethod
    def from_random_walks(
        cls,
        program: Program,
        initials: Iterable[Config],
        walks: int = 200,
        max_steps: int = 10_000,
        seed: int = 0,
        symmetry=None,
    ) -> "StoreUniverse":
        """Harvest a universe from random-scheduler walks instead of full
        BFS — the bounded-checking fallback for instances whose reachable
        state space is too large to enumerate (e.g. Paxos at R=2, N=3).
        A PASS over such a universe is a bounded check, not an exhaustive
        one; protocols document which instances use it (and reports carry
        ``bounded=True``). ``symmetry`` canonicalizes every sampled
        configuration before harvesting, folding the sample onto orbit
        representatives (locals pools group-closed, as in
        :meth:`from_reachable`)."""
        import random

        from .explore import random_execution

        canonicalize = None
        canon = None
        if symmetry is not None:
            from .symmetry import Canonicalizer

            canon = Canonicalizer.of(symmetry)
            symmetry = canon.spec
            canonicalize = canon.config
        rng = random.Random(seed)
        globals_seen: Set[Store] = set()
        locals_seen: Dict[str, Set[Store]] = {}
        initials = list(initials)
        for _ in range(walks):
            init = rng.choice(initials)
            execution = random_execution(program, init, rng, max_steps=max_steps)
            for config in execution.configs():
                if not isinstance(config, Config):
                    continue
                if canonicalize is not None:
                    config = canonicalize(config)
                globals_seen.add(config.glob)
                for pending in config.pending.support():
                    locals_seen.setdefault(pending.action, set()).add(pending.locals)
        if canon is not None:
            for name, stores in locals_seen.items():
                locals_seen[name] = {
                    member
                    for store in stores
                    for member in canon.local_orbit(name, store)
                }
        return cls(
            sorted(globals_seen, key=structural_key),
            {
                name: sorted(stores, key=structural_key)
                for name, stores in locals_seen.items()
            },
            symmetry=symmetry,
        )

    def sampled(self, limit: int, keep=None) -> "StoreUniverse":
        """A deterministic stratified subsample of the globals (every k-th
        after ordering by structural key), always retaining globals for
        which ``keep`` holds. Locals are kept in full.

        The result has exactly ``min(limit, len(globals_))`` globals when
        the keep-set fits within the limit, and the keep-set verbatim
        otherwise — never more than ``max(limit, len(retained))`` (the
        old floor-division stride silently blew the caller's budget).
        The stratified part picks evenly spaced positions over the
        ordered rest. Ordering by structural key makes the sample
        independent of the universe's construction order.
        """
        if len(self.globals_) <= limit:
            return self
        ordered = sorted(self.globals_, key=structural_key)
        if keep is None:
            retained: List[Store] = []
            rest = ordered
        else:
            retained = [g for g in ordered if keep(g)]
            retained_set = set(retained)
            rest = [g for g in ordered if g not in retained_set]
        room = limit - len(retained)
        if room <= 0:
            sample = retained
        elif len(rest) <= room:
            sample = retained + rest
        else:
            # Exactly ``room`` evenly spaced positions; the first and the
            # last of the ordered rest are always included.
            last = len(rest) - 1
            positions = sorted(
                {(j * last) // (room - 1) for j in range(room)}
                if room > 1
                else {0}
            )
            sample = retained + [rest[p] for p in positions]
        return StoreUniverse(
            sample, self.locals_by_action, self.context, self.symmetry
        )

    def quotiented(self, symmetry) -> "StoreUniverse":
        """This universe folded onto orbit representatives.

        Globals map to their canonical orbit elements (deduplicated);
        locals pools are closed under the group and deduplicated — a
        no-op for pools harvested from a full exploration (those are
        group-closed already by equivariance of reachability), but it
        keeps hand-extended boundary pools covering every orbit a
        canonical global's ghost can mention. Already-quotiented
        universes and ``symmetry=None`` pass through unchanged.
        """
        if symmetry is None or self.symmetry is not None:
            return self
        from .symmetry import Canonicalizer

        canon = Canonicalizer.of(symmetry)
        globals_ = sorted(
            {canon.store(g) for g in self.globals_}, key=structural_key
        )
        locals_by_action: Dict[str, List[Store]] = {}
        for name, pool in self.locals_by_action.items():
            closed: Dict[Store, None] = {}
            for locals_ in pool:
                for member in canon.local_orbit(name, locals_):
                    closed.setdefault(member)
            locals_by_action[name] = sorted(closed, key=structural_key)
        return StoreUniverse(
            globals_, locals_by_action, self.context, canon.spec
        )

    @classmethod
    def of_stores(
        cls,
        globals_: Iterable[Store],
        locals_by_action: Mapping[str, Iterable[Store]] = (),
    ) -> "StoreUniverse":
        return cls(
            list(dict.fromkeys(globals_)),
            {name: list(dict.fromkeys(ls)) for name, ls in dict(locals_by_action).items()},
        )

    def locals_for(self, action_name: str) -> List[Store]:
        """Candidate local stores for an action (default: the empty store)."""
        return self.locals_by_action.get(action_name, [EMPTY_STORE])

    def combined(self, action_name: str) -> Iterator[Tuple[Store, Store, Store]]:
        """Iterate ``(global, local, combined)`` triples for an action."""
        for g in self.globals_:
            for l in self.locals_for(action_name):
                yield g, l, combine(g, l)

    def single_ok(self, global_store: Store, action_name: str, locals_: Store) -> bool:
        """May PA ``(locals_, action_name)`` be scheduled from this global?"""
        self._fresh_memo_keys()
        ck = self._class_of(global_store)
        if ck < 0:
            return self.context.single(global_store, PendingAsync(action_name, locals_))
        key = (ck, action_name, memo_key(locals_))
        cached = self._single_cache.get(key)
        if cached is None:
            self.context_cache_stats.misses += 1
            cached = self.context.single(
                global_store, PendingAsync(action_name, locals_)
            )
            self._single_cache[key] = cached
        else:
            self.context_cache_stats.hits += 1
        return cached

    def pair_ok(
        self,
        global_store: Store,
        name1: str,
        locals1: Store,
        name2: str,
        locals2: Store,
    ) -> bool:
        """May the two PAs coexist (as distinct PAs) in one configuration?

        Decisions are memoized under the context's
        :meth:`~repro.core.context.PAContext.cache_key` — the fragment of
        the global store the context actually reads (e.g. the ghost
        multiset), under which many globals collapse to one entry.
        """
        self._fresh_memo_keys()
        ck = self._class_of(global_store)
        if ck < 0:
            return self.context.pair(
                global_store,
                PendingAsync(name1, locals1),
                PendingAsync(name2, locals2),
            )
        key = (ck, name1, memo_key(locals1), name2, memo_key(locals2))
        cached = self._pair_cache.get(key)
        if cached is None:
            self.context_cache_stats.misses += 1
            cached = self.context.pair(
                global_store,
                PendingAsync(name1, locals1),
                PendingAsync(name2, locals2),
            )
            self._pair_cache[key] = cached
        else:
            self.context_cache_stats.hits += 1
        return cached

    def with_context(self, context: PAContext) -> "StoreUniverse":
        """A copy of this universe under a different PA context."""
        return StoreUniverse(
            self.globals_, self.locals_by_action, context, self.symmetry
        )

    def extended(
        self,
        extra_globals: Iterable[Store] = (),
        extra_locals: Mapping[str, Iterable[Store]] = (),
    ) -> "StoreUniverse":
        """A new universe with additional globals / locals."""
        globals_ = list(dict.fromkeys([*self.globals_, *extra_globals]))
        locals_by_action = {k: list(v) for k, v in self.locals_by_action.items()}
        for name, stores in dict(extra_locals).items():
            merged = locals_by_action.get(name, []) + list(stores)
            locals_by_action[name] = list(dict.fromkeys(merged))
        return StoreUniverse(
            globals_, locals_by_action, self.context, self.symmetry
        )

    def merge(self, other: "StoreUniverse") -> "StoreUniverse":
        """Union of two universes (keeps this universe's PA context)."""
        return self.extended(other.globals_, other.locals_by_action)

    def __repr__(self) -> str:
        locals_desc = {k: len(v) for k, v in self.locals_by_action.items()}
        quotient = (
            f", quotient={self.symmetry.name}" if self.symmetry is not None else ""
        )
        return (
            f"StoreUniverse({len(self.globals_)} globals, "
            f"locals={locals_desc}{quotient})"
        )
