"""Explicit-state exploration of asynchronous programs.

This module is the workhorse that substitutes for the SMT backend of the
paper's CIVL implementation: on a finite protocol instance it computes the
exact sets used in Definition 3.2,

* :math:`Good(\\mathcal{P})` — initial stores from which the program cannot
  fail, and
* :math:`Trans(\\mathcal{P})` — the input/output summary relating initial
  stores to final global stores of terminating executions,

by exhaustive breadth-first search over configurations. It also provides
execution sampling and bounded enumeration of terminating executions, used
by the refinement tests and the execution-rewriting engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from .program import Program
from .semantics import (
    Config,
    Execution,
    Failure,
    Step,
    initial_config,
    steps_from,
)
from .store import Store, combine

__all__ = [
    "ExplorationResult",
    "ExplorationBudgetExceeded",
    "explore",
    "instance_summary",
    "InstanceSummary",
    "good_and_trans",
    "reachable_globals",
    "random_execution",
    "terminating_executions",
]


class ExplorationBudgetExceeded(RuntimeError):
    """Raised when exploration exceeds its configuration budget.

    Carries what the aborted search had already learned: ``explored`` is
    the number of distinct configurations reached before the budget blew
    (always ``limit + 1`` — the overflowing configuration is counted) and
    ``limit`` is the budget itself. Callers report this as a BUDGET
    verdict (see ``repro.protocols.common`` and ``repro.analysis.table1``)
    rather than letting the traceback discard the partial count.
    """

    def __init__(self, explored: int, limit: int):
        super().__init__(
            f"exploration budget exceeded: {explored} reachable "
            f"configurations (limit {limit})"
        )
        self.explored = explored
        self.limit = limit


@dataclass
class ExplorationResult:
    """Result of exploring a program from a set of initial configurations."""

    reachable: Set[Config]
    can_fail: bool
    final_globals: Set[Store]
    #: Reachable configurations that are deadlocked: not terminated, yet no
    #: enabled step exists (every pending action is blocking).
    deadlocks: Set[Config] = field(default_factory=set)

    @property
    def num_configs(self) -> int:
        return len(self.reachable)


def explore(
    program: Program,
    initials: Iterable[Config],
    max_configs: Optional[int] = None,
    canonicalize=None,
) -> ExplorationResult:
    """Breadth-first exploration of all configurations reachable from
    ``initials``. Collects terminating global stores, whether a failure is
    reachable, and deadlocked configurations.

    ``canonicalize`` (a ``Config -> Config`` map, e.g.
    :meth:`repro.core.symmetry.Canonicalizer.config`) folds every visited
    configuration to its orbit representative *before* deduplication, so
    the search explores the quotient state space: ``reachable`` then holds
    one configuration per orbit. Sound when the program is equivariant
    under the underlying permutation group — each representative's
    successors are representatives of the original successors' orbits —
    which is exactly what a protocol asserts by declaring a
    :class:`~repro.core.symmetry.SymmetrySpec`.
    """
    frontier: List[Config] = []
    reachable: Set[Config] = set()
    final_globals: Set[Store] = set()
    deadlocks: Set[Config] = set()
    can_fail = False

    for config in initials:
        if canonicalize is not None:
            config = canonicalize(config)
        if config not in reachable:
            reachable.add(config)
            frontier.append(config)

    while frontier:
        config = frontier.pop()
        if config.terminated:
            final_globals.add(config.glob)
            continue
        progressed = False
        for step in steps_from(program, config):
            progressed = True
            if isinstance(step.target, Failure):
                can_fail = True
                continue
            target = step.target
            if canonicalize is not None:
                target = canonicalize(target)
            if target not in reachable:
                reachable.add(target)
                if max_configs is not None and len(reachable) > max_configs:
                    raise ExplorationBudgetExceeded(len(reachable), max_configs)
                frontier.append(target)
        if not progressed:
            deadlocks.add(config)

    return ExplorationResult(reachable, can_fail, final_globals, deadlocks)


@dataclass
class InstanceSummary:
    """Summary of one initialized instance: failure possibility + outputs."""

    initial: Config
    can_fail: bool
    final_globals: Set[Store]
    #: Distinct configurations the exhaustive search visited — the honest
    #: work measure program-level refinement checks report as ``checked``.
    num_configs: int = 0


def instance_summary(
    program: Program,
    global_store: Store,
    main_locals: Store = Store(),
    max_configs: Optional[int] = None,
) -> InstanceSummary:
    """Explore a single initialized instance ``(g, {(ℓ, Main)})``."""
    init = initial_config(global_store, main_locals)
    result = explore(program, [init], max_configs=max_configs)
    return InstanceSummary(
        init, result.can_fail, result.final_globals, result.num_configs
    )


def good_and_trans(
    program: Program,
    initial_stores: Iterable[Tuple[Store, Store]],
    max_configs: Optional[int] = None,
) -> Tuple[Set[Store], Set[Tuple[Store, Store]]]:
    """Compute :math:`Good(\\mathcal{P})` and :math:`Trans(\\mathcal{P})`
    restricted to the given initial ``(global, main-local)`` store pairs.

    Returns ``(good, trans)`` where ``good`` contains the combined initial
    stores :math:`g \\cdot \\ell` without reachable failure and ``trans``
    contains pairs :math:`(g \\cdot \\ell, g')` for terminating executions.
    """
    good: Set[Store] = set()
    trans: Set[Tuple[Store, Store]] = set()
    for global_store, main_locals in initial_stores:
        summary = instance_summary(program, global_store, main_locals, max_configs)
        sigma = combine(global_store, main_locals)
        if not summary.can_fail:
            good.add(sigma)
        for final in summary.final_globals:
            trans.add((sigma, final))
    return good, trans


def reachable_globals(
    program: Program,
    initials: Iterable[Config],
    max_configs: Optional[int] = None,
) -> Set[Store]:
    """All global stores occurring in reachable configurations.

    The primary source of store universes for discharging mover and IS
    conditions on an instance (see ``repro.core.universe``).
    """
    result = explore(program, initials, max_configs=max_configs)
    return {config.glob for config in result.reachable}


def random_execution(
    program: Program,
    init: Config,
    rng: random.Random,
    max_steps: int = 10_000,
) -> Execution:
    """Sample one execution under a uniformly random scheduler.

    Runs until termination, failure, deadlock, or the step bound. Used by
    randomized refinement tests and as input to the rewriting engine.
    """
    steps: List[Step] = []
    current = init
    for _ in range(max_steps):
        if current.terminated:
            break
        options = list(steps_from(program, current))
        if not options:
            break
        step = rng.choice(options)
        steps.append(step)
        if isinstance(step.target, Failure):
            break
        current = step.target
    return Execution(init, steps)


def terminating_executions(
    program: Program,
    init: Config,
    limit: Optional[int] = None,
    max_depth: int = 10_000,
) -> Iterator[Execution]:
    """Enumerate terminating executions from ``init`` by depth-first search.

    Intended for small instances only (the number of interleavings grows
    factorially); ``limit`` caps the number of executions yielded.
    """
    count = 0
    stack: List[Tuple[Config, List[Step]]] = [(init, [])]
    while stack:
        config, prefix = stack.pop()
        if config.terminated:
            yield Execution(init, list(prefix))
            count += 1
            if limit is not None and count >= limit:
                return
            continue
        if len(prefix) >= max_depth:
            continue
        for step in steps_from(program, config):
            if isinstance(step.target, Failure):
                continue
            stack.append((step.target, prefix + [step]))
