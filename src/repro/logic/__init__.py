"""Enumerative first-order logic over finite domains (the baseline's
invariant language)."""

from .formulas import (
    And,
    Atom,
    Exists,
    FALSE,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    TRUE,
    check_validity,
    count_atoms,
    count_conjuncts,
)

__all__ = [
    "And",
    "Atom",
    "Exists",
    "FALSE",
    "Forall",
    "Formula",
    "Implies",
    "Not",
    "Or",
    "TRUE",
    "check_validity",
    "count_atoms",
    "count_conjuncts",
]
