"""First-order formulas over finite domains, with enumerative checking.

The baseline methodology the paper compares against (Section 5.2,
"Invariant complexity") states flat "asynchrony-aware" inductive invariants
as first-order formulas — e.g. invariant (2) of Section 2.1 or the Ivy
invariants of "Paxos made EPR" [39]. This module provides a formula AST,
evaluation against program states, enumerative validity checking over
finite domains (the offline substitute for an SMT/EPR solver), and conjunct
counting — the complexity metric used in the comparison benchmark.

Formulas evaluate against an *environment*: a mapping from names to values,
typically a :class:`~repro.core.store.Store` combined with bound variables.
Atoms are arbitrary Python predicates over the environment, so protocol
state of any shape can be inspected.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Formula",
    "Atom",
    "Not",
    "And",
    "Or",
    "Implies",
    "Forall",
    "Exists",
    "TRUE",
    "FALSE",
    "count_conjuncts",
    "check_validity",
]


class _Env:
    """A chain-map of bindings over a base mapping."""

    __slots__ = ("base", "bindings")

    def __init__(self, base, bindings: Optional[Dict[str, object]] = None):
        self.base = base
        self.bindings = bindings or {}

    def bind(self, name: str, value: object) -> "_Env":
        bindings = dict(self.bindings)
        bindings[name] = value
        return _Env(self.base, bindings)

    def __getitem__(self, name: str) -> object:
        if name in self.bindings:
            return self.bindings[name]
        return self.base[name]

    def get(self, name: str, default=None):
        if name in self.bindings:
            return self.bindings[name]
        try:
            return self.base[name]
        except KeyError:
            return default


class Formula:
    """Base class of formulas."""

    def holds(self, env) -> bool:
        """Evaluate against an environment (store or mapping)."""
        return self._eval(env if isinstance(env, _Env) else _Env(env))

    def _eval(self, env: _Env) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``p >> q`` is implication."""
        return Implies(self, other)


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic predicate: a named Python function of the environment.

    Bound quantifier variables are visible through the environment, e.g.
    ``Atom("decided", lambda e: e["decision"][e["r"]] is not None)``.
    """

    name: str
    predicate: Callable

    def _eval(self, env: _Env) -> bool:
        return bool(self.predicate(env))

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def _eval(self, env: _Env) -> bool:
        return not self.operand._eval(env)

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


@dataclass(frozen=True)
class And(Formula):
    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]):
        object.__setattr__(self, "operands", tuple(operands))

    def _eval(self, env: _Env) -> bool:
        return all(op._eval(env) for op in self.operands)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]):
        object.__setattr__(self, "operands", tuple(operands))

    def _eval(self, env: _Env) -> bool:
        return any(op._eval(env) for op in self.operands)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def _eval(self, env: _Env) -> bool:
        return (not self.antecedent._eval(env)) or self.consequent._eval(env)

    def __repr__(self) -> str:
        return f"({self.antecedent!r} ⇒ {self.consequent!r})"


def _domain_of(domain, env: _Env):
    return domain(env) if callable(domain) else domain


@dataclass(frozen=True)
class Forall(Formula):
    """``∀ vars ∈ domain. body``; the domain may depend on the state."""

    variables: Tuple[str, ...]
    domain: object  # iterable or callable(env) -> iterable
    body: Formula

    def __init__(self, variables, domain, body: Formula):
        if isinstance(variables, str):
            variables = (variables,)
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "domain", domain)
        object.__setattr__(self, "body", body)

    def _eval(self, env: _Env) -> bool:
        values = list(_domain_of(self.domain, env))
        for assignment in itertools.product(values, repeat=len(self.variables)):
            bound = env
            for name, value in zip(self.variables, assignment):
                bound = bound.bind(name, value)
            if not self.body._eval(bound):
                return False
        return True

    def __repr__(self) -> str:
        return f"∀{','.join(self.variables)}. {self.body!r}"


@dataclass(frozen=True)
class Exists(Formula):
    """``∃ vars ∈ domain. body``."""

    variables: Tuple[str, ...]
    domain: object
    body: Formula

    def __init__(self, variables, domain, body: Formula):
        if isinstance(variables, str):
            variables = (variables,)
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "domain", domain)
        object.__setattr__(self, "body", body)

    def _eval(self, env: _Env) -> bool:
        values = list(_domain_of(self.domain, env))
        for assignment in itertools.product(values, repeat=len(self.variables)):
            bound = env
            for name, value in zip(self.variables, assignment):
                bound = bound.bind(name, value)
            if self.body._eval(bound):
                return True
        return False

    def __repr__(self) -> str:
        return f"∃{','.join(self.variables)}. {self.body!r}"


TRUE = Atom("true", lambda _e: True)
FALSE = Atom("false", lambda _e: False)


def count_conjuncts(formula: Formula) -> int:
    """The invariant-complexity metric: number of top-level conjuncts,
    looking through quantifiers (matching how the Ivy invariants of [39]
    are counted as a list of formulas)."""
    if isinstance(formula, And):
        return sum(count_conjuncts(op) for op in formula.operands)
    if isinstance(formula, (Forall, Exists)):
        return count_conjuncts(formula.body)
    return 1


def count_atoms(formula: Formula) -> int:
    """Number of atomic predicates anywhere in the formula — the size
    metric for disjunctive invariants like invariant (2), whose complexity
    lives in its per-phase disjuncts rather than top-level conjuncts."""
    if isinstance(formula, Atom):
        return 1
    if isinstance(formula, Not):
        return count_atoms(formula.operand)
    if isinstance(formula, (And, Or)):
        return sum(count_atoms(op) for op in formula.operands)
    if isinstance(formula, Implies):
        return count_atoms(formula.antecedent) + count_atoms(formula.consequent)
    if isinstance(formula, (Forall, Exists)):
        return count_atoms(formula.body)
    raise TypeError(f"unknown formula {formula!r}")


def check_validity(
    formula: Formula, states: Iterable, limit: int = 5
) -> Tuple[bool, List[object]]:
    """Evaluate a closed formula over a set of states; returns whether it
    holds everywhere plus up to ``limit`` counterexample states."""
    counterexamples: List[object] = []
    for state in states:
        if not formula.holds(state):
            counterexamples.append(state)
            if len(counterexamples) >= limit:
                break
    return not counterexamples, counterexamples
