"""Span recording for obligation discharge.

One :class:`Span` is recorded per unit of traced work: every obligation
(including each I3 shard and LM condition slice — the scheduler's real
units), every pipeline phase (``IS[label]``, ``sequential spec``, ``ground
truth``), and the pool backend's cache warm-up pass. A span carries wall
time, the discharging process's PID, the scheduler backend, the verdict,
the enumeration count, and the evaluation-cache hit/miss *delta* attributable
to that unit — the per-obligation visibility CIVL gets for free from Z3's
statistics and our explicit-state engine previously lacked.

The tracer is strictly an *observer*: schedulers compute span ingredients
(start stamp, cache-counter snapshots) unconditionally — they are a handful
of integer reads per obligation — and the tracer only turns outcomes the
engine already returns into records. No code path branches on whether a
tracer is attached before the merged result exists, which is what makes the
no-perturbation guarantee (``check(tracer=None)`` and ``check(tracer=t)``
produce equal condition maps) hold by construction rather than by testing
alone — though ``tests/obs`` tests it anyway.

Timestamps are ``time.perf_counter()`` values. On platforms with a
``fork`` start method (the only place the pool backend runs) the monotonic
clock is shared between parent and forked workers, so spans from different
PIDs live on one timeline and the Chrome trace shows true overlap.

Workers never touch a tracer object: they ship span ingredients back to the
parent inside their :class:`~repro.engine.scheduler.ObligationOutcome`
tuples, and the parent materializes the spans. A tracer is therefore
single-process state and needs no locking.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One traced unit of work.

    ``category`` is ``"obligation"`` for scheduler units, ``"phase"`` for
    pipeline stages, and ``"warmup"`` for the pool's pre-fork cache warming.
    ``start`` is a raw ``perf_counter`` stamp (exporters normalize to the
    trace origin); ``duration`` is in seconds. ``cache_delta`` is the
    evaluation-cache hit/miss increment observed by the discharging process
    across this span (``None`` for spans that do not evaluate actions).
    ``holds`` is ``None`` for non-verdict spans and for skipped obligations.

    Resilience: ``category == "resilience"`` spans are zero-duration
    markers of recovery actions (``kind`` is the event kind — timeout,
    crash, retry, pool-rebuild, ... — and ``condition`` the obligation
    key). Obligation spans additionally carry ``attempts`` (execution
    attempts; >1 means the obligation was retried), ``timed_out`` (its
    deadline expired), ``resumed`` (satisfied from a checkpoint
    journal, not executed), and ``cached`` (satisfied from the
    content-addressed result cache, not executed). ``category ==
    "rcache"`` spans are zero-duration markers of result-cache decisions
    (``kind`` is hit/miss/invalidation/store/uncacheable and
    ``condition`` the obligation key).
    """

    name: str
    category: str
    start: float
    duration: float
    pid: int
    backend: str = ""
    scope: str = ""
    kind: str = ""
    condition: str = ""
    checked: int = 0
    holds: Optional[bool] = None
    skipped: bool = False
    cache_delta: Optional[Dict[str, Dict[str, int]]] = None
    attempts: int = 0
    timed_out: bool = False
    resumed: bool = False
    cached: bool = False

    @property
    def end(self) -> float:
        return self.start + self.duration

    def as_dict(self) -> dict:
        """Flat JSON-ready rendering (used by the metrics exporter)."""
        record = {
            "name": self.name,
            "category": self.category,
            "scope": self.scope,
            "seconds": round(self.duration, 6),
            "pid": self.pid,
            "backend": self.backend,
        }
        if self.kind:
            record["kind"] = self.kind
        if self.condition:
            record["condition"] = self.condition
        if self.category == "obligation":
            record["checked"] = self.checked
            record["holds"] = self.holds
            record["skipped"] = self.skipped
            if self.attempts > 1:
                record["attempts"] = self.attempts
            if self.timed_out:
                record["timed_out"] = True
            if self.resumed:
                record["resumed"] = True
            if self.cached:
                record["cached"] = True
        if self.category == "resilience":
            record["attempts"] = self.attempts
        if self.cache_delta is not None:
            record["cache_delta"] = self.cache_delta
        return record


@dataclass
class Tracer:
    """Collects spans across one or more verification pipelines.

    A tracer can be attached to a single ``ISApplication.check`` call, a
    protocol ``verify()`` pipeline, or a whole ``build_table1`` sweep; the
    *scope* stack (``scope("paxos")``, nested ``scope("IS[Paxos]")``)
    labels spans with where in the pipeline they were recorded, so the
    exporters can aggregate per protocol and per IS application.
    """

    spans: List[Span] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.root_pid = os.getpid()
        self._scopes: List[str] = []

    # ------------------------------------------------------------------ #
    # Scopes and recording
    # ------------------------------------------------------------------ #

    @property
    def current_scope(self) -> str:
        return "/".join(self._scopes)

    @contextmanager
    def scope(self, label: str) -> Iterator[None]:
        """Label spans recorded inside the block with ``label`` (nested
        scopes join with ``/``)."""
        self._scopes.append(str(label))
        try:
            yield
        finally:
            self._scopes.pop()

    def add(self, span: Span) -> Span:
        """Record a fully-built span (scope defaults to the current one)."""
        if not span.scope:
            span.scope = self.current_scope
        self.spans.append(span)
        return span

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Record a ``phase`` span around a block of pipeline work."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(
                Span(
                    name=name,
                    category="phase",
                    start=started,
                    duration=time.perf_counter() - started,
                    pid=os.getpid(),
                )
            )

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def obligation_spans(self) -> List[Span]:
        return [s for s in self.spans if s.category == "obligation"]

    def phase_spans(self) -> List[Span]:
        return [s for s in self.spans if s.category == "phase"]

    @property
    def origin(self) -> float:
        """Earliest recorded start stamp (0.0 on an empty tracer);
        exporters subtract it so traces begin at t=0."""
        return min((s.start for s in self.spans), default=0.0)

    def total_checked(self) -> int:
        """Total enumeration count across all obligation spans. For a
        single traced ``check`` this equals ``ISResult.total_checked``."""
        return sum(s.checked for s in self.obligation_spans())

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        obligations = len(self.obligation_spans())
        return (
            f"Tracer({len(self.spans)} spans, {obligations} obligations, "
            f"scope={self.current_scope!r})"
        )
