"""Observability for the obligation-discharge engine.

``repro.obs`` is the engine's flight recorder: a :class:`~repro.obs.tracer.Tracer`
attached to :meth:`ISApplication.check <repro.core.sequentialize.ISApplication.check>`,
a protocol ``verify()`` pipeline, or a whole ``build_table1`` sweep records
one span per discharged obligation (and per shard/slice, per pipeline
phase, and per pool warm-up pass), and the exporters in
:mod:`repro.obs.export` turn the spans into a Chrome ``trace_event`` file,
a flat metrics JSON, or a terminal summary table.

The subsystem is opt-in and observation-only: with no tracer attached the
engine's outputs are identical, byte for byte, to a build without this
package (see DESIGN.md, "Observability" — the no-perturbation guarantee).
"""

from .export import (
    chrome_trace,
    failure_payload,
    metrics_payload,
    render_summary,
    write_chrome_trace,
    write_failure_report,
    write_metrics,
)
from .stream import StreamingTracer, sse_event
from .tracer import Span, Tracer

__all__ = [
    "Span",
    "StreamingTracer",
    "Tracer",
    "sse_event",
    "chrome_trace",
    "failure_payload",
    "metrics_payload",
    "render_summary",
    "write_chrome_trace",
    "write_failure_report",
    "write_metrics",
]
