"""Exporters for recorded traces: Chrome ``trace_event`` JSON, a flat
metrics JSON, a terminal summary table, and a failure-report JSON.

Chrome trace
    :func:`chrome_trace` renders complete (``"ph": "X"``) events, one per
    span, on one track per discharging PID — load the file in
    ``chrome://tracing`` or https://ui.perfetto.dev to see obligations
    laid out over wall time, worker by worker. Timestamps are normalized
    to the tracer's origin and expressed in integer microseconds, as the
    trace-event spec requires.

Metrics JSON
    :func:`metrics_payload` aggregates spans into per-obligation rows and
    per-condition / per-scope / whole-run totals. The totals are exact:
    ``totals["checked"]`` equals the sum of the merged condition map's
    ``checked`` counters for the traced checks (tested in ``tests/obs``),
    so the file diffs cleanly against ``BENCH_obligations.json``'s
    enumeration counts.

Terminal summary
    :func:`render_summary` is the ``--trace``/``--metrics`` CLI footer: a
    per-condition table (spans, wall time, checks, cache hit rate) plus
    worker occupancy, readable without leaving the terminal.

Failure report
    :func:`failure_payload` serializes a ``repro.diagnose`` explanation —
    per-condition verdicts plus, for every counterexample, the original
    and minimized witnesses (tagged values, see
    :func:`repro.diagnose.render.witness_to_json`), the accepted shrink
    steps, and the replay-confirmation bit. This is the machine-readable
    twin of the ``repro explain`` terminal report, written by
    ``repro explain --json`` and uploaded as a CI artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from .tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "failure_payload",
    "metrics_payload",
    "render_summary",
    "write_chrome_trace",
    "write_failure_report",
    "write_metrics",
]

#: Schema tags written into the exported files, bumped on layout changes.
TRACE_SCHEMA = "repro.obs/chrome-trace/v1"
METRICS_SCHEMA = "repro.obs/metrics/v1"
FAILURE_SCHEMA = "repro.obs/failure/v1"


def _micros(seconds: float) -> int:
    return max(0, int(round(seconds * 1_000_000)))


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's spans as a Chrome ``trace_event`` document.

    Every span becomes one complete event; obligation spans carry their
    verdict, enumeration count, and cache delta in ``args``. A pair of
    metadata events per PID names the parent process ``repro (main)`` and
    each pool worker ``worker``, so Perfetto's track labels read sensibly.
    """
    origin = tracer.origin
    events: List[dict] = []
    pids = sorted({span.pid for span in tracer.spans})
    for pid in pids:
        role = "repro (main)" if pid == tracer.root_pid else "worker"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{role} pid={pid}"},
            }
        )
    for span in tracer.spans:
        args: Dict[str, object] = {"scope": span.scope}
        if span.backend:
            args["backend"] = span.backend
        if span.category == "obligation":
            args.update(
                {
                    "condition": span.condition,
                    "kind": span.kind,
                    "checked": span.checked,
                    "holds": span.holds,
                    "skipped": span.skipped,
                }
            )
            if span.attempts > 1:
                args["attempts"] = span.attempts
            if span.timed_out:
                args["timed_out"] = True
            if span.resumed:
                args["resumed"] = True
            if span.cached:
                args["cached"] = True
        if span.cache_delta is not None:
            args["cache_delta"] = span.cache_delta
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": _micros(span.start - origin),
                "dur": _micros(span.duration),
                "pid": span.pid,
                "tid": 0,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "spans": len(tracer.spans)},
    }


def _merge_delta(
    total: Dict[str, Dict[str, int]], delta: Dict[str, Dict[str, int]]
) -> None:
    for kind, counters in delta.items():
        bucket = total.setdefault(kind, {"hits": 0, "misses": 0})
        bucket["hits"] += int(counters.get("hits", 0))
        bucket["misses"] += int(counters.get("misses", 0))


def _aggregate(spans: Iterable[Span]) -> dict:
    """Totals over a group of obligation spans."""
    group = {
        "obligations": 0,
        "skipped": 0,
        "failed": 0,
        "checked": 0,
        "seconds": 0.0,
        "cache_delta": {},
        "timeouts": 0,
        "retried": 0,
        "resumed": 0,
        "cached": 0,
    }
    for span in spans:
        group["obligations"] += 1
        group["checked"] += span.checked
        group["seconds"] += span.duration
        if span.timed_out:
            group["timeouts"] += 1
        elif span.skipped:
            group["skipped"] += 1
        elif span.holds is False:
            group["failed"] += 1
        if span.attempts > 1:
            group["retried"] += 1
        if span.resumed:
            group["resumed"] += 1
        if span.cached:
            group["cached"] += 1
        if span.cache_delta:
            _merge_delta(group["cache_delta"], span.cache_delta)
    group["seconds"] = round(group["seconds"], 6)
    return group


def _grouped(spans: List[Span], key) -> Dict[str, dict]:
    buckets: Dict[str, List[Span]] = {}
    for span in spans:
        buckets.setdefault(key(span), []).append(span)
    return {label: _aggregate(group) for label, group in buckets.items()}


def _top_scope(span: Span) -> str:
    return span.scope.split("/", 1)[0] if span.scope else ""


def metrics_payload(tracer: Tracer) -> dict:
    """Flat, diffable metrics: per-obligation rows plus aggregates.

    ``per_condition`` groups by ``(scope, condition)`` — the granularity
    of the merged condition map — and ``per_scope`` by the top-level scope
    segment (one protocol per entry when the tracer wrapped a
    ``build_table1`` run). ``totals["checked"]`` is exactly the sum of the
    traced checks' ``ISResult.total_checked``.
    """
    obligations = tracer.obligation_spans()
    origin = tracer.origin
    per_obligation = []
    for span in sorted(obligations, key=lambda s: (s.start, s.name)):
        row = span.as_dict()
        row["start_seconds"] = round(span.start - origin, 6)
        per_obligation.append(row)
    payload = {
        "schema": METRICS_SCHEMA,
        "meta": dict(tracer.meta),
        "totals": _aggregate(obligations),
        "backends": sorted({s.backend for s in obligations if s.backend}),
        "workers": sorted({s.pid for s in obligations}),
        "per_condition": _grouped(
            obligations,
            lambda s: f"{s.scope}::{s.condition}" if s.scope else s.condition,
        ),
        "per_scope": _grouped(obligations, _top_scope),
        "per_obligation": per_obligation,
        "phases": [
            {
                "name": span.name,
                "scope": span.scope,
                "seconds": round(span.duration, 6),
                "start_seconds": round(span.start - origin, 6),
            }
            for span in tracer.phase_spans()
        ],
        "resilience_events": [
            {
                "kind": span.kind,
                "key": span.condition,
                "attempt": span.attempts,
                "scope": span.scope,
                "at_seconds": round(span.start - origin, 6),
            }
            for span in tracer.spans
            if span.category == "resilience"
        ],
    }
    payload["totals"]["spans"] = len(tracer.spans)
    return payload


def _hit_rate(delta: Dict[str, Dict[str, int]]) -> str:
    hits = sum(kind.get("hits", 0) for kind in delta.values())
    total = hits + sum(kind.get("misses", 0) for kind in delta.values())
    if not total:
        return "-"
    return f"{hits / total:6.1%}"


def render_summary(tracer: Tracer) -> str:
    """Per-condition terminal table over the recorded obligation spans."""
    obligations = tracer.obligation_spans()
    if not obligations:
        return "(no obligation spans recorded)"
    header = (
        f"{'Scope :: Condition':<46} {'#Obl':>5} {'ms':>9} "
        f"{'#Checks':>9} {'Cache':>7}  {'Status':<7}"
    )
    lines = [header, "-" * len(header)]
    groups = _grouped(
        obligations,
        lambda s: f"{s.scope}::{s.condition}" if s.scope else s.condition,
    )
    for label, group in groups.items():
        if group["failed"]:
            status = "FAIL"
        elif group["timeouts"]:
            status = "TIMEOUT"
        elif group["skipped"] == group["obligations"]:
            status = "SKIP"
        else:
            status = "OK"
        lines.append(
            f"{label:<46} {group['obligations']:>5} "
            f"{group['seconds'] * 1000:>9.1f} {group['checked']:>9} "
            f"{_hit_rate(group['cache_delta']):>7}  {status:<7}"
        )
    totals = _aggregate(obligations)
    workers = {s.pid for s in obligations}
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<46} {totals['obligations']:>5} "
        f"{totals['seconds'] * 1000:>9.1f} {totals['checked']:>9} "
        f"{_hit_rate(totals['cache_delta']):>7}  "
        f"{len(workers)} worker(s)"
    )
    return "\n".join(lines)


def failure_payload(explanation) -> dict:
    """A ``repro.diagnose`` explanation as a self-describing JSON document.

    ``explanation`` is a :class:`repro.diagnose.explain.Explanation`. Every
    witness appears twice — as found and as minimized — so downstream
    tooling can diff what the shrinker removed; ``replay_confirmed`` is the
    bit CI gates on (a report with unconfirmed witnesses is itself a bug).
    """
    from ..diagnose.render import witness_to_json

    witnesses = []
    for report in explanation.witnesses:
        witnesses.append(
            {
                "condition": report.condition,
                "skipped": report.skipped,
                "replay_confirmed": report.replay_confirmed,
                "original_size": report.original_size,
                "minimized_size": report.minimized_size,
                "shrink_steps": [list(step) for step in report.steps],
                "original": witness_to_json(report.original),
                "minimized": witness_to_json(report.minimized),
            }
        )
    return {
        "schema": FAILURE_SCHEMA,
        "target": explanation.target,
        "holds": explanation.holds,
        "conditions": dict(explanation.conditions),
        "all_confirmed": explanation.all_confirmed,
        "witnesses": witnesses,
    }


def write_failure_report(explanation, path) -> Path:
    """Serialize :func:`failure_payload` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(failure_payload(explanation), indent=2) + "\n")
    return path


def write_chrome_trace(tracer: Tracer, path) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer), indent=2) + "\n")
    return path


def write_metrics(tracer: Tracer, path) -> Path:
    """Serialize :func:`metrics_payload` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(metrics_payload(tracer), indent=2) + "\n")
    return path
