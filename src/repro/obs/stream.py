"""Streaming span export: the bridge from the tracer to server-sent events.

The exporters in :mod:`repro.obs.export` run *after* a pipeline finishes;
a verification daemon needs the opposite — progress while the job runs.
:class:`StreamingTracer` is a :class:`~repro.obs.tracer.Tracer` that
additionally hands every recorded span to a ``publish`` callable the
moment it is added. The no-perturbation guarantee is untouched: spans are
still derived from outcomes the engine computes anyway, the subclass only
*forwards* them; a publisher that raises is detached (never propagated
into the engine), so a slow or dead SSE client cannot fail a
verification.

Granularity: the engine materializes obligation spans when each
``discharge()`` (one IS application) merges, and phase spans as each
pipeline stage closes — so a streaming consumer sees per-obligation
events in stage-sized bursts plus live phase boundaries, not a
per-obligation live tick. That is the honest granularity of a tracer
that cannot perturb scheduling.

:func:`sse_event` formats one event in the ``text/event-stream`` wire
format (https://html.spec.whatwg.org/multipage/server-sent-events.html):
an ``event:`` line, one ``data:`` line per payload line, a blank
terminator. ``id:`` carries a monotonically increasing sequence number so
clients can detect gaps after a reconnect.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from .tracer import Span, Tracer

__all__ = ["StreamingTracer", "sse_event"]


def sse_event(event: str, data: dict, event_id: Optional[int] = None) -> bytes:
    """One server-sent event, wire-formatted.

    ``data`` is JSON-encoded onto a single ``data:`` line (JSON never
    contains raw newlines), so the event is exactly
    ``[id:N] event:NAME data:JSON`` followed by the blank terminator.
    """
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event}")
    lines.append(f"data: {json.dumps(data)}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


class StreamingTracer(Tracer):
    """A tracer that forwards every span to a publisher as it lands.

    ``publish`` receives one JSON-ready dict per span: the span's
    :meth:`~repro.obs.tracer.Span.as_dict` rendering plus the scope it
    was recorded under and its index in the tracer's span list (a stable
    per-job sequence number). All the base-class views — exporters,
    consistency checks — keep working on the accumulated spans, so a
    daemon job can both stream progress *and* serve the full trace
    afterwards.
    """

    def __init__(self, publish: Callable[[dict], None]):
        super().__init__()
        self._publish: Optional[Callable[[dict], None]] = publish

    def add(self, span: Span) -> Span:
        span = super().add(span)
        if self._publish is not None:
            record = span.as_dict()
            record["seq"] = len(self.spans) - 1
            try:
                self._publish(record)
            except Exception:
                # A broken consumer must never fail the engine; stop
                # publishing, keep recording.
                self._publish = None
        return span
