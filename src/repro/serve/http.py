"""A minimal stdlib-only asyncio HTTP/1.1 server with SSE responses.

``http.server`` is thread-per-connection and cannot interleave a
long-lived ``text/event-stream`` with cheap status probes;
``aiohttp``-class frameworks are out of bounds (no new dependencies).
This module is the small slice of HTTP the daemon actually needs:

* request parsing over ``asyncio`` streams — request line, headers,
  ``Content-Length``-framed body, with hard caps (16 KiB of headers,
  1 MiB of body) and a read deadline so a stalled client cannot wedge
  the acceptor (it holds one connection, not the loop);
* pattern routing (``/jobs/<id>/events``) onto async handlers returning
  either a :class:`Response` (JSON in one write, ``Connection: close``)
  or an :class:`EventStreamResponse` whose async iterator yields
  pre-formatted SSE frames, flushed as they come;
* tiny, explicit status handling — the daemon speaks 200/202/400/404/
  405/413/429/500/503 and nothing else.

Protocol scope is deliberate: every response closes the connection
(keep-alive buys nothing on a localhost control plane and costs parser
state), and TLS/auth are a reverse proxy's job.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from typing import AsyncIterator, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HttpError",
    "EventStreamResponse",
    "Request",
    "Response",
    "Router",
    "json_response",
]

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024
READ_TIMEOUT = 30.0

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A client-presentable failure; handlers raise it, the server turns
    it into a JSON error response with the right status."""

    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, List[str]]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        if not self.body:
            raise HttpError(400, "empty request body (expected JSON)")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class EventStreamResponse:
    """A ``text/event-stream`` response: ``events`` yields wire-ready
    SSE frames (see :func:`repro.obs.stream.sse_event`)."""

    events: AsyncIterator[bytes]
    status: int = 200


def json_response(payload: object, status: int = 200, **headers: str) -> Response:
    body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=dict(headers))


def _compile(pattern: str) -> re.Pattern:
    regex = re.sub(r"<([a-zA-Z_]+)>", r"(?P<\1>[^/]+)", pattern)
    return re.compile(f"^{regex}$")


class Router:
    """Method+pattern routing table and the per-connection driver."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, re.Pattern, Callable]] = []

    def route(self, method: str, pattern: str) -> Callable:
        def register(handler: Callable) -> Callable:
            self._routes.append((method.upper(), _compile(pattern), handler))
            return handler

        return register

    def _resolve(self, method: str, path: str) -> Tuple[Callable, Dict[str, str]]:
        path_matched = False
        for route_method, regex, handler in self._routes:
            match = regex.match(path)
            if match is None:
                continue
            path_matched = True
            if route_method == method:
                return handler, match.groupdict()
        if path_matched:
            raise HttpError(405, f"method {method} not allowed for {path}")
        raise HttpError(404, f"no such endpoint: {path}")

    # -------------------------------------------------------------- #
    # Connection handling
    # -------------------------------------------------------------- #

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            try:
                handler, params = self._resolve(request.method, request.path)
                result = await handler(request, **params)
            except HttpError as exc:
                result = json_response(
                    {"error": exc.message}, status=exc.status, **exc.headers
                )
            except Exception as exc:  # a handler bug must not kill the loop
                result = json_response(
                    {"error": f"internal error: {type(exc).__name__}: {exc}"},
                    status=500,
                )
            if isinstance(result, EventStreamResponse):
                await self._write_stream(writer, result)
            else:
                await self._write_response(writer, result)
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass  # slow, gone, or rude client: drop the connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Request]:
        header_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=READ_TIMEOUT
        )
        if len(header_blob) > MAX_HEADER_BYTES:
            raise HttpError(413, "headers too large")
        try:
            head = header_blob.decode("latin-1")
        except UnicodeDecodeError:
            return None
        request_line, *header_lines = head.split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=READ_TIMEOUT
            )
        split = urlsplit(target)
        return Request(
            method=method.upper(),
            path=split.path,
            query=parse_qs(split.query),
            headers=headers,
            body=body,
        )

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        reason = REASONS.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            "Connection: close",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(response.body)
        await writer.drain()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, response: EventStreamResponse
    ) -> None:
        reason = REASONS.get(response.status, "Unknown")
        writer.write(
            (
                f"HTTP/1.1 {response.status} {reason}\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-store\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        async for frame in response.events:
            writer.write(frame)
            await writer.drain()
