"""Daemon configuration: CLI flags over ``REPRO_SERVE_*`` environment.

The precedence convention mirrors ``REPRO_CACHE``/``REPRO_FAULTS``:
an explicit CLI flag wins, then the environment variable, then the
built-in default. The environment surface is deliberately small — the
three knobs an operator sets per deployment:

``REPRO_SERVE_HOST``
    Bind address (default ``127.0.0.1``; the daemon is an internal
    service, binding wide is an explicit opt-in).
``REPRO_SERVE_PORT``
    TCP port (default ``7717``; ``0`` asks the kernel for a free port —
    the daemon announces the bound one on stdout).
``REPRO_SERVE_QUEUE_DEPTH``
    Bounded admission-queue depth (default ``16``). A POST arriving with
    the queue full is refused with ``429`` and a ``Retry-After`` hint —
    backpressure instead of unbounded buffering.
``REPRO_SERVE_SANDBOX``
    ``1``/``true``/``yes`` runs every job in the supervised subprocess
    sandbox (:mod:`repro.serve.executor`) instead of on the in-process
    worker thread. Off by default: in-process is faster and is what
    embedded tests (which install process-global fault injectors) need;
    the sandbox is the production posture.

Everything else (state directory, default budgets, scheduler jobs,
sandbox limits) is flag-only; see ``repro serve --help``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["ServeConfig", "DEFAULT_HOST", "DEFAULT_PORT", "DEFAULT_QUEUE_DEPTH"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7717
DEFAULT_QUEUE_DEPTH = 16


def _env_int(environ: Mapping[str, str], key: str) -> Optional[int]:
    raw = environ.get(key)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{key} must be an integer, got {raw!r}") from exc


@dataclass(frozen=True)
class ServeConfig:
    """One immutable value carrying every daemon knob.

    ``state_dir`` roots all persistence: the job journal
    (``jobs.jsonl``), the per-job checkpoint journals (``ckpt/``), and
    the resident result cache (``rcache/``). ``None`` runs fully
    in-memory — still warm across requests, but nothing survives a
    restart. ``max_configs``/``timeout_per_obligation`` are *caps*: a
    job asking for more is clamped, a job asking for nothing gets the
    default — per-job budgets with an operator ceiling.
    ``drain_grace`` bounds how long a SIGTERM waits for the in-flight
    job to salvage itself before the process exits anyway.

    The ``sandbox_*`` fields configure the crash-isolation layer
    (:mod:`repro.serve.executor`): subprocess rlimits, the heartbeat
    watchdog, respawn/breaker bounds, and the optional in-process
    fallback. They only apply when ``sandbox`` is on.
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    state_dir: Optional[str] = None
    max_configs: Optional[int] = None
    timeout_per_obligation: Optional[float] = None
    jobs: Optional[int] = None
    drain_grace: float = 5.0
    sandbox: bool = False
    sandbox_max_rss_mb: Optional[int] = None
    sandbox_cpu_seconds: Optional[int] = None
    sandbox_recycle_after: int = 64
    sandbox_heartbeat_grace: float = 20.0
    sandbox_max_respawns: int = 2
    sandbox_breaker_threshold: int = 2
    sandbox_fallback: bool = False

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.sandbox_recycle_after < 1:
            raise ValueError(
                f"sandbox_recycle_after must be >= 1, "
                f"got {self.sandbox_recycle_after}"
            )
        if self.sandbox_max_respawns < 0:
            raise ValueError(
                f"sandbox_max_respawns must be >= 0, "
                f"got {self.sandbox_max_respawns}"
            )
        if self.sandbox_breaker_threshold < 1:
            raise ValueError(
                f"sandbox_breaker_threshold must be >= 1, "
                f"got {self.sandbox_breaker_threshold}"
            )

    @classmethod
    def from_env(
        cls,
        environ: Optional[Mapping[str, str]] = None,
        **overrides,
    ) -> "ServeConfig":
        """Resolve flag > environment > default, per field.

        ``overrides`` are the CLI flags; a ``None`` override means "not
        given on the command line" and falls through to the
        environment."""
        environ = os.environ if environ is None else environ
        resolved = dict(overrides)
        if resolved.get("host") is None:
            resolved["host"] = environ.get("REPRO_SERVE_HOST") or DEFAULT_HOST
        if resolved.get("port") is None:
            env_port = _env_int(environ, "REPRO_SERVE_PORT")
            resolved["port"] = DEFAULT_PORT if env_port is None else env_port
        if resolved.get("queue_depth") is None:
            env_depth = _env_int(environ, "REPRO_SERVE_QUEUE_DEPTH")
            resolved["queue_depth"] = (
                DEFAULT_QUEUE_DEPTH if env_depth is None else env_depth
            )
        if resolved.get("sandbox") is None:
            raw = environ.get("REPRO_SERVE_SANDBOX", "")
            resolved["sandbox"] = raw.strip().lower() in ("1", "true", "yes")
        resolved = {k: v for k, v in resolved.items() if v is not None}
        return cls(**resolved)
