"""Crash-isolated job execution: the ``repro serve`` sandbox.

PR 8's daemon ran every job on an in-process worker *thread* — perfect
for warm-state reuse, fatal for fault isolation: one segfaulting C
extension, one OOM kill, one stray ``os._exit`` inside engine code takes
the whole service down. This module splits execution from supervision:

* :func:`run_request` is the request-to-payload execution path itself,
  shared verbatim by the in-process daemon thread and the sandbox
  worker — one code path, two isolation levels.
* :class:`SandboxExecutor` (parent side) owns a supervised worker
  subprocess: spawn, ready handshake, JSONL command/result protocol over
  the worker's stdin/stdout, a heartbeat watchdog (``SIGKILL`` after
  ``heartbeat_grace`` without a pulse), recycle-after-N-jobs, and the
  degradation ladder below.
* :func:`worker_main` (child side) applies its own ``resource`` rlimits
  (RSS/CPU ceilings — self-applied after ``exec``, so no thread-unsafe
  ``preexec_fn``), builds its own :class:`~repro.engine.warm.WarmState`
  (the result cache is shared with the parent through the state
  directory, warm memos are per-process), heartbeats from a daemon
  thread, and executes jobs one at a time.

Degradation ladder — each rung bounds the blast radius of the rung
above failing:

1. **Crash → respawn + retry.** A worker that exits, segfaults, is
   OOM-killed, or stops heartbeating is killed and respawned, and the
   job retried, up to ``max_respawns`` times per job. The retry attempt
   number is forwarded to the worker, so ``REPRO_FAULTS``
   ``sandbox.job=exit:1`` deterministically models "crash once, succeed
   on retry" across the process boundary.
2. **Repeat crasher → circuit breaker.** When one request fingerprint
   accumulates ``breaker_threshold`` consecutive sandbox crashes, the
   breaker opens *for that instance only*: further identical requests
   get an immediate typed ``CRASHED`` verdict (:func:`crashed_payload`)
   instead of a respawn loop. Other instances are unaffected — the unit
   of suspicion is the question, not the service.
3. **Optional in-process fallback.** With ``sandbox_fallback`` enabled
   the daemon runs the crashing job on its own thread as a last resort,
   and the payload is flagged (``sandbox.mode = "inprocess-fallback"``)
   so a report produced without isolation is never mistaken for one
   produced with it.

The daemon stays up through all of it: ``SIGKILL`` of the sandbox is
rung 1, and a daemon restart re-enqueues from the job journal as before
(the worker journals engine checkpoints to the same state directory, so
the re-run resumes).

Protocol (one JSON object per line):

* parent → worker: ``{"op": "job", "job_id", "request", "budgets",
  "resilience", "attempt"}`` and ``{"op": "exit"}``;
* worker → parent: ``{"type": "ready", "pid", "limits"}``,
  ``{"type": "heartbeat"}``, ``{"type": "span", "job_id", "record"}``
  (live tracer forwarding), ``{"type": "result", "job_id", "payload"}``,
  ``{"type": "error", "job_id", "error"}`` (the job raised; the worker
  itself is fine).

The worker's real stdout is reserved for the protocol: ``worker_main``
dups it away and repoints ``sys.stdout`` (and fd 1) at stderr, so a
``print`` inside a protocol module can never corrupt a frame.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Set

from .jobs import JobRequest

__all__ = [
    "SandboxConfig",
    "SandboxCrashed",
    "SandboxExecutor",
    "SandboxJobError",
    "crashed_payload",
    "run_request",
    "worker_main",
]


class SandboxJobError(Exception):
    """The *job* raised inside a healthy worker (bad request deep in the
    engine, an unpicklable witness, ...). Maps to a ``failed`` job, never
    to a respawn — the worker is fine."""


class SandboxCrashed(Exception):
    """The sandbox ladder ran out: the worker crashed (or hung) more
    than ``max_respawns`` times for one job."""

    def __init__(self, detail: str, crashes: int, breaker_open: bool):
        super().__init__(detail)
        self.detail = detail
        self.crashes = crashes
        self.breaker_open = breaker_open


@dataclass(frozen=True)
class SandboxConfig:
    """Supervision knobs for one :class:`SandboxExecutor`."""

    #: RLIMIT_AS ceiling for the worker, in MiB (None: unlimited).
    max_rss_mb: Optional[int] = None
    #: RLIMIT_CPU ceiling for the worker, in seconds (None: unlimited).
    cpu_seconds: Optional[int] = None
    #: Jobs per worker before a graceful replacement (leak hygiene).
    recycle_after: int = 64
    #: Seconds between worker heartbeats.
    heartbeat_interval: float = 1.0
    #: Seconds without *any* worker output before the watchdog kills it.
    heartbeat_grace: float = 20.0
    #: Seconds allowed for spawn + imports + ready handshake.
    boot_timeout: float = 60.0
    #: Respawn+retry attempts per job before giving up (ladder rung 1).
    max_respawns: int = 2
    #: Consecutive crashes for one request fingerprint that open its
    #: circuit breaker (ladder rung 2).
    breaker_threshold: int = 2


#: Sentinel returned by the reader when the worker's stdout hit EOF.
_EOF = object()


# ---------------------------------------------------------------------- #
# Shared execution path (daemon thread and sandbox worker)
# ---------------------------------------------------------------------- #


def run_request(
    request: JobRequest,
    warm,
    budgets: dict,
    resilience=None,
    tracer=None,
) -> dict:
    """Execute one validated request against a warm state; returns the
    JSON-ready result payload the daemon journals and serves.

    This is the single execution path for both isolation levels: the
    daemon's in-process worker thread calls it directly, the sandbox
    worker calls it inside the subprocess. ``budgets`` comes from
    ``ServeDaemon._budgets`` (already operator-clamped); ``resilience``
    is an optional :class:`~repro.engine.resilience.ResilienceConfig`.
    """
    rcache_before = None
    if warm.rcache is not None:
        rcache_before = warm.rcache.stats.snapshot()
    started = time.perf_counter()
    if request.kind == "verify":
        payload = _execute_verify(request, warm, budgets, resilience, tracer)
    elif request.kind == "table1":
        payload = _execute_table1(request, warm, budgets, resilience, tracer)
    else:
        payload = _execute_explain(request)
    payload["seconds"] = round(time.perf_counter() - started, 6)
    if budgets.get("clamped"):
        payload["budget_clamped"] = {
            "requested_max_configs": request.max_configs,
            "applied_max_configs": budgets.get("max_configs"),
        }
    if warm.rcache is not None:
        payload["rcache"] = warm.rcache.stats.delta(rcache_before)
    payload["warm"] = warm.stats.snapshot()
    return payload


def _execute_verify(request, warm, budgets, resilience, tracer) -> dict:
    from ..protocols import ALL_PROTOCOLS

    module = ALL_PROTOCOLS[request.protocol]
    kwargs = {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in request.params
    }
    if request.ground_truth is not None:
        kwargs["ground_truth"] = request.ground_truth
    report = module.verify(
        max_configs=budgets.get("max_configs"),
        jobs=budgets.get("jobs"),
        fail_fast=request.fail_fast,
        tracer=tracer,
        resilience=resilience,
        warm=warm,
        **kwargs,
    )
    return report_payload(report)


def _execute_table1(request, warm, budgets, resilience, tracer) -> dict:
    from ..analysis.table1 import build_table1

    rows = build_table1(
        max_configs=budgets.get("max_configs"),
        jobs=budgets.get("jobs"),
        fail_fast=request.fail_fast,
        tracer=tracer,
        resilience=resilience,
        warm=warm,
    )
    reports = [row.report for row in rows if row.report is not None]
    payload = {
        "kind": "table1",
        "ok": all(row.ok for row in rows),
        "status": (
            "INTERRUPTED"
            if any(r.interrupted for r in reports)
            else ("OK" if all(row.ok for row in rows) else "FAILED")
        ),
        "rows": [
            {
                "example": row.example,
                "status": row.status,
                "ok": row.ok,
                "bounded": row.bounded,
                "num_is": row.num_is,
                "seconds": round(row.time_seconds, 6),
            }
            for row in rows
        ],
    }
    payload["obligations"] = obligation_split(reports)
    return payload


def _execute_explain(request) -> dict:
    from ..diagnose import explain_fixture
    from ..obs.export import failure_payload

    explanation = explain_fixture(request.fixture, jobs=request.jobs)
    return {
        "kind": "explain",
        "ok": explanation.all_confirmed,
        "status": "OK" if explanation.all_confirmed else "FAILED",
        "report": failure_payload(explanation),
    }


def report_payload(report) -> dict:
    """JSON-ready payload for one ``VerificationReport``."""
    payload = {
        "kind": "verify",
        "protocol": report.name,
        "parameters": dict(report.parameters),
        "ok": report.ok,
        "status": report.status,
        "bounded": report.bounded,
        "summary": report.summary(),
        "timings": {k: round(v, 6) for k, v in report.timings.items()},
        "is_checks": [
            {
                "label": label,
                "holds": result.holds,
                "checked": result.total_checked,
            }
            for label, result in report.is_results
        ],
        "obligations": obligation_split([report]),
    }
    if report.budget is not None:
        payload["budget"] = str(report.budget)
    if report.interrupted:
        payload["interrupted"] = True
    return payload


def obligation_split(reports) -> dict:
    """total/executed/cached/resumed obligation counts over reports."""
    total = cached = resumed = 0
    for report in reports:
        for _label, result in report.is_results:
            total += result.num_obligations
            cached += len(result.cached_keys)
            resumed += len(result.resumed_keys)
    return {
        "total": total,
        "executed": total - cached - resumed,
        "cached": cached,
        "resumed": resumed,
    }


def crashed_payload(request: JobRequest, crash: SandboxCrashed) -> dict:
    """The typed verdict a repeat-crashing instance gets instead of an
    unbounded respawn loop: honest (``ok: false``), distinguishable from
    both FAILED (a real counterexample) and a transport error."""
    payload: Dict[str, object] = {
        "kind": request.kind,
        "ok": False,
        "status": "CRASHED",
        "error": crash.detail,
        "sandbox": {
            "mode": "sandbox",
            "crashes": crash.crashes,
            "breaker_open": crash.breaker_open,
        },
    }
    if request.protocol is not None:
        payload["protocol"] = request.protocol
    if request.fixture is not None:
        payload["fixture"] = request.fixture
    return payload


def _resilience_to_wire(resilience) -> Optional[dict]:
    if resilience is None:
        return None
    return {
        "timeout_per_obligation": resilience.timeout_per_obligation,
        "checkpoint_dir": (
            str(resilience.checkpoint_dir)
            if resilience.checkpoint_dir is not None
            else None
        ),
        "resume": bool(resilience.resume),
    }


def _resilience_from_wire(wire: Optional[dict]):
    if not wire:
        return None
    from ..engine.resilience import ResilienceConfig

    kwargs = {}
    if wire.get("timeout_per_obligation") is not None:
        kwargs["timeout_per_obligation"] = float(wire["timeout_per_obligation"])
    if wire.get("checkpoint_dir") is not None:
        kwargs["checkpoint_dir"] = wire["checkpoint_dir"]
        kwargs["resume"] = bool(wire.get("resume", True))
    if not kwargs:
        return None
    return ResilienceConfig(**kwargs)


# ---------------------------------------------------------------------- #
# Parent side: the supervisor
# ---------------------------------------------------------------------- #


class SandboxExecutor:
    """Supervises one verify-worker subprocess (see module docstring).

    Not thread-safe by design: the daemon executes jobs one at a time on
    a single worker thread, and that thread is the only caller of
    :meth:`execute`. ``describe()`` reads plain ints/strings and is safe
    to call from the event loop for ``/healthz``.
    """

    def __init__(
        self, config: SandboxConfig, state_dir: Optional[Path] = None
    ):
        self.config = config
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.stats = {"spawns": 0, "restarts": 0, "recycles": 0, "jobs": 0}
        self.worker_pid: Optional[int] = None
        self._proc: Optional[subprocess.Popen] = None
        self._buf = b""
        self._jobs_on_worker = 0
        self._worker_limits: dict = {}
        self._stderr_handle = None
        # Ladder rung 2: consecutive sandbox crashes per request
        # fingerprint; a completed execution (success OR job error)
        # resets its instance, an open breaker short-circuits it.
        self._crash_counts: Dict[str, int] = {}
        self._breaker_open: Set[str] = set()

    # ---------------------------- public ---------------------------- #

    def execute(
        self,
        job_id: str,
        request: JobRequest,
        budgets: dict,
        resilience=None,
        publish_span=None,
    ) -> dict:
        """Run one job in the sandbox, climbing the degradation ladder.

        Returns the result payload; raises :class:`SandboxJobError` when
        the job itself raised (worker healthy), :class:`SandboxCrashed`
        when respawns are exhausted or the breaker is open.
        """
        fingerprint = request.fingerprint
        if fingerprint in self._breaker_open:
            raise SandboxCrashed(
                "circuit breaker open for this request: "
                f"{self._crash_counts.get(fingerprint, 0)} consecutive "
                "sandbox crashes",
                crashes=0,
                breaker_open=True,
            )
        crashes = 0
        while True:
            try:
                self._ensure_worker()
                payload = self._run_once(
                    job_id, request, budgets, resilience, publish_span,
                    attempt=crashes,
                )
            except SandboxJobError:
                self._note_completed(fingerprint)
                raise
            except _WorkerCrash as crash:
                self._kill_worker()
                self.stats["restarts"] += 1
                crashes += 1
                count = self._crash_counts.get(fingerprint, 0) + 1
                self._crash_counts[fingerprint] = count
                if crashes <= self.config.max_respawns:
                    continue
                breaker = count >= self.config.breaker_threshold
                if breaker:
                    self._breaker_open.add(fingerprint)
                raise SandboxCrashed(
                    str(crash), crashes=crashes, breaker_open=breaker
                ) from None
            else:
                self._note_completed(fingerprint)
                return payload

    def describe(self) -> dict:
        """Healthz-ready snapshot of the sandbox state."""
        alive = self._proc is not None and self._proc.poll() is None
        return {
            "enabled": True,
            "alive": alive,
            "worker_pid": self.worker_pid if alive else None,
            "spawns": self.stats["spawns"],
            "restarts": self.stats["restarts"],
            "recycles": self.stats["recycles"],
            "jobs": self.stats["jobs"],
            "limits": {
                "max_rss_mb": self.config.max_rss_mb,
                "cpu_seconds": self.config.cpu_seconds,
                "recycle_after": self.config.recycle_after,
                "applied": dict(self._worker_limits),
            },
            "breaker": {
                "threshold": self.config.breaker_threshold,
                "open": sorted(self._breaker_open),
            },
        }

    def shutdown(self) -> None:
        """Stop the worker (graceful exit, then kill) and close handles."""
        proc = self._proc
        if proc is not None and proc.poll() is None:
            try:
                self._send({"op": "exit"})
                proc.wait(timeout=1.0)
            except (OSError, subprocess.TimeoutExpired, ValueError):
                pass
        self._kill_worker()
        if self._stderr_handle is not None:
            try:
                self._stderr_handle.close()
            except OSError:
                pass
            self._stderr_handle = None

    # --------------------------- internals --------------------------- #

    def _note_completed(self, fingerprint: str) -> None:
        self._crash_counts.pop(fingerprint, None)
        self.stats["jobs"] += 1
        self._jobs_on_worker += 1
        if self._jobs_on_worker >= self.config.recycle_after:
            self._recycle()

    def _worker_command(self) -> list:
        wire = {
            "state_dir": str(self.state_dir) if self.state_dir else None,
            "max_rss_mb": self.config.max_rss_mb,
            "cpu_seconds": self.config.cpu_seconds,
            "heartbeat_interval": self.config.heartbeat_interval,
        }
        return [sys.executable, "-m", "repro.serve.executor", json.dumps(wire)]

    def _ensure_worker(self) -> None:
        if self._proc is not None and self._proc.poll() is None:
            return
        self._kill_worker()
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        stderr = subprocess.DEVNULL
        if self.state_dir is not None:
            if self._stderr_handle is None:
                try:
                    self.state_dir.mkdir(parents=True, exist_ok=True)
                    self._stderr_handle = open(
                        self.state_dir / "executor.stderr.log", "ab"
                    )
                except OSError:
                    self._stderr_handle = None
            if self._stderr_handle is not None:
                stderr = self._stderr_handle
        try:
            self._proc = subprocess.Popen(
                self._worker_command(),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=stderr,
                env=env,
            )
        except OSError as exc:
            raise _WorkerCrash(f"worker spawn failed: {exc}") from exc
        self._buf = b""
        self._jobs_on_worker = 0
        self.stats["spawns"] += 1
        deadline = time.monotonic() + self.config.boot_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill_worker()
                raise _WorkerCrash(
                    f"worker ready handshake timed out "
                    f"({self.config.boot_timeout}s)"
                )
            msg = self._read_message(remaining)
            if msg is None:
                continue
            if msg is _EOF:
                code = self._proc.poll() if self._proc else None
                self._kill_worker()
                raise _WorkerCrash(f"worker died during boot (rc={code})")
            if msg.get("type") == "ready":
                self.worker_pid = msg.get("pid")
                self._worker_limits = msg.get("limits") or {}
                return

    def _run_once(
        self, job_id, request, budgets, resilience, publish_span, attempt
    ) -> dict:
        self._send(
            {
                "op": "job",
                "job_id": job_id,
                "request": request.as_payload(),
                "budgets": budgets,
                "resilience": _resilience_to_wire(resilience),
                "attempt": attempt,
            }
        )
        grace = self.config.heartbeat_grace
        while True:
            msg = self._read_message(grace)
            if msg is None:
                code = self._proc.poll() if self._proc else None
                raise _WorkerCrash(
                    f"worker heartbeat lost (no output for {grace}s, "
                    f"rc={code})"
                )
            if msg is _EOF:
                code = self._proc.poll() if self._proc else None
                raise _WorkerCrash(f"worker exited mid-job (rc={code})")
            kind = msg.get("type")
            if kind == "heartbeat" or kind == "ready":
                continue
            if kind == "span":
                if publish_span is not None and msg.get("job_id") == job_id:
                    try:
                        publish_span(msg.get("record") or {})
                    except Exception:
                        publish_span = None
                continue
            if kind == "result" and msg.get("job_id") == job_id:
                payload = msg.get("payload")
                if not isinstance(payload, dict):
                    raise _WorkerCrash("worker returned a non-dict payload")
                return payload
            if kind == "error" and msg.get("job_id") == job_id:
                raise SandboxJobError(str(msg.get("error")))
            # Anything else (stale result from a pre-crash job, unknown
            # frame) is skipped; the watchdog still bounds the wait.

    def _send(self, message: dict) -> None:
        proc = self._proc
        if proc is None or proc.stdin is None:
            raise _WorkerCrash("no worker to send to")
        try:
            proc.stdin.write((json.dumps(message) + "\n").encode("utf-8"))
            proc.stdin.flush()
        except (OSError, ValueError) as exc:
            raise _WorkerCrash(f"worker pipe closed: {exc}") from exc

    def _read_message(self, timeout: float):
        """One protocol frame, ``None`` on timeout, ``_EOF`` on EOF."""
        proc = self._proc
        if proc is None or proc.stdout is None:
            return _EOF
        fd = proc.stdout.fileno()
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line, self._buf = self._buf[:newline], self._buf[newline + 1:]
                if not line.strip():
                    continue
                try:
                    return json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue  # stray bytes on the protocol fd; skip
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                ready, _, _ = select.select([fd], [], [], remaining)
            except OSError:
                return _EOF
            if not ready:
                return None
            try:
                chunk = os.read(fd, 65536)
            except OSError:
                return _EOF
            if not chunk:
                return _EOF
            self._buf += chunk

    def _kill_worker(self) -> None:
        proc, self._proc = self._proc, None
        self.worker_pid = None
        self._buf = b""
        if proc is None:
            return
        try:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=5.0)
        except (OSError, subprocess.TimeoutExpired):
            pass
        for pipe in (proc.stdin, proc.stdout):
            if pipe is not None:
                try:
                    pipe.close()
                except OSError:
                    pass

    def _recycle(self) -> None:
        """Graceful worker replacement after ``recycle_after`` jobs."""
        proc = self._proc
        if proc is not None and proc.poll() is None:
            try:
                self._send({"op": "exit"})
                proc.wait(timeout=2.0)
            except (_WorkerCrash, subprocess.TimeoutExpired):
                pass
        self._kill_worker()
        self.stats["recycles"] += 1


class _WorkerCrash(Exception):
    """Internal: one sandbox crash (ladder rung 1 input)."""


# ---------------------------------------------------------------------- #
# Child side: the worker
# ---------------------------------------------------------------------- #


def _apply_limits(
    max_rss_mb: Optional[int], cpu_seconds: Optional[int]
) -> dict:
    """Self-applied rlimits; returns what actually took effect."""
    applied: dict = {}
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return applied
    if max_rss_mb:
        limit = int(max_rss_mb) * 1024 * 1024
        try:
            _, hard = resource.getrlimit(resource.RLIMIT_AS)
            resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
            applied["rlimit_as_bytes"] = limit
        except (ValueError, OSError):
            pass
    if cpu_seconds:
        try:
            _, hard = resource.getrlimit(resource.RLIMIT_CPU)
            resource.setrlimit(resource.RLIMIT_CPU, (int(cpu_seconds), hard))
            applied["rlimit_cpu_seconds"] = int(cpu_seconds)
        except (ValueError, OSError):
            pass
    return applied


def worker_main(argv: Optional[list] = None) -> int:
    """Entry point of the sandbox worker (``python -m repro.serve.executor``)."""
    args = sys.argv[1:] if argv is None else argv
    config = json.loads(args[0]) if args else {}

    # Reserve the real stdout for the protocol; reroute everything else
    # (prints inside protocol modules, C-level fd-1 writes) to stderr.
    proto = os.fdopen(os.dup(1), "w", encoding="utf-8")
    os.dup2(2, 1)
    sys.stdout = sys.stderr

    emit_lock = threading.Lock()

    def emit(message: dict) -> None:
        with emit_lock:
            proto.write(json.dumps(message) + "\n")
            proto.flush()

    applied = _apply_limits(
        config.get("max_rss_mb"), config.get("cpu_seconds")
    )

    from ..engine.warm import WarmState

    rcache = None
    state_dir = config.get("state_dir")
    if state_dir:
        from ..engine.rcache import ObligationCache

        rcache = ObligationCache(Path(state_dir) / "rcache")
    warm = WarmState(rcache=rcache)

    stop = threading.Event()
    interval = float(config.get("heartbeat_interval", 1.0))

    def beat() -> None:
        while not stop.wait(interval):
            emit({"type": "heartbeat", "at": time.time()})

    threading.Thread(target=beat, name="heartbeat", daemon=True).start()
    emit({"type": "ready", "pid": os.getpid(), "limits": applied})

    from ..engine import faults
    from ..obs.stream import StreamingTracer

    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except ValueError:
            continue
        op = message.get("op")
        if op == "exit":
            break
        if op != "job":
            continue
        job_id = message.get("job_id")
        try:
            # Deterministic crash-testing hook: `sandbox.job=exit:1` in
            # REPRO_FAULTS kills attempt 0 of every job with the fault
            # exit code; the supervisor's retry (attempt 1) runs clean.
            injector = faults.active_injector()
            if injector is not None:
                injector.fire(
                    "sandbox.job",
                    attempt=int(message.get("attempt", 0)),
                    in_worker=True,
                )
            request = JobRequest.from_payload(message.get("request"))

            def publish(record: dict, _job_id=job_id) -> None:
                emit({"type": "span", "job_id": _job_id, "record": record})

            tracer = StreamingTracer(publish)
            tracer.meta["job"] = job_id
            payload = run_request(
                request,
                warm,
                message.get("budgets") or {},
                resilience=_resilience_from_wire(message.get("resilience")),
                tracer=tracer,
            )
            emit({"type": "result", "job_id": job_id, "payload": payload})
        except KeyboardInterrupt:
            emit(
                {
                    "type": "error",
                    "job_id": job_id,
                    "error": "KeyboardInterrupt: worker interrupted",
                }
            )
        except BaseException as exc:  # noqa: BLE001 - protocol boundary
            if isinstance(exc, SystemExit):
                raise
            emit(
                {
                    "type": "error",
                    "job_id": job_id,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
    stop.set()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(worker_main())
