"""Job model and the daemon's restart journal.

A *job* is one verification request: ``verify`` (one protocol),
``table1`` (the full sweep), or ``explain`` (a seeded diagnostic
fixture). Its lifecycle is ``queued -> running -> done`` with two
off-ramps: ``interrupted`` (the daemon was stopped mid-run — the job is
re-enqueued on restart and its obligation-level progress survives in the
engine's checkpoint journal) and ``failed`` (the request itself was
unservable: unknown protocol, bad parameters).

Persistence follows the engine journal's pattern
(:mod:`repro.engine.journal`): one append-only JSONL file,
schema-versioned header, fingerprint-guarded records, torn-tail
tolerance. The *fingerprint* here is the canonical hash of the request
payload: every record carries both the id and the fingerprint, a loaded
record whose embedded request no longer hashes to its recorded
fingerprint is dropped as corrupt, and the fingerprint also names the
job's engine checkpoint directory — so a restarted daemon resumes the
same obligation journal for the same question, and the engine's own
staleness guard (:class:`~repro.engine.journal.StaleJournalError`)
refuses it if the code changed underneath.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..engine import faults

__all__ = [
    "JOBS_SCHEMA",
    "JOB_KINDS",
    "Job",
    "JobRequest",
    "JobStore",
    "StaleJobStoreError",
]

JOBS_SCHEMA = "repro.serve/jobs/v1"
JOB_KINDS = ("verify", "table1", "explain")

#: Job parameters forwarded verbatim to ``<protocol>.verify(...)``; an
#: allowlist, so a typo'd parameter is a 400 instead of a TypeError deep
#: inside a worker thread. Protocol-specific instance parameters (rounds,
#: n, num_nodes, ...) ride in the nested ``params`` object.
REQUEST_FIELDS = ("kind", "protocol", "fixture", "params", "max_configs",
                  "jobs", "fail_fast", "ground_truth")


class StaleJobStoreError(RuntimeError):
    """A job journal that is not ours: wrong schema, unreadable header."""


@dataclass(frozen=True)
class JobRequest:
    """One validated, canonicalized job request.

    ``params`` are protocol instance parameters passed through to the
    ``verify()`` pipeline (e.g. ``{"rounds": 4}``); only JSON scalars
    and arrays are accepted, so the canonical encoding — and hence the
    fingerprint — is total.
    """

    kind: str
    protocol: Optional[str] = None
    fixture: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()
    max_configs: Optional[int] = None
    jobs: Optional[int] = None
    fail_fast: bool = False
    ground_truth: Optional[bool] = None

    @classmethod
    def from_payload(cls, payload: object) -> "JobRequest":
        """Validate a decoded POST body; raises ``ValueError`` with a
        client-presentable message on anything malformed."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        unknown = sorted(set(payload) - set(REQUEST_FIELDS))
        if unknown:
            raise ValueError(f"unknown fields: {', '.join(unknown)}")
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise ValueError(
                f"kind must be one of {', '.join(JOB_KINDS)}, got {kind!r}"
            )
        protocol = payload.get("protocol")
        fixture = payload.get("fixture")
        if kind == "verify" and not isinstance(protocol, str):
            raise ValueError("verify jobs need a 'protocol' string")
        if kind == "explain" and not isinstance(fixture, str):
            raise ValueError("explain jobs need a 'fixture' string")
        raw_params = payload.get("params") or {}
        if not isinstance(raw_params, dict):
            raise ValueError("'params' must be a JSON object")
        for key, value in raw_params.items():
            if not isinstance(value, (int, float, str, bool, list, type(None))):
                raise ValueError(f"param {key!r} must be a JSON scalar or array")
        params = tuple(
            (str(k), tuple(v) if isinstance(v, list) else v)
            for k, v in sorted(raw_params.items())
        )
        max_configs = payload.get("max_configs")
        if max_configs is not None and (
            not isinstance(max_configs, int) or max_configs < 1
        ):
            raise ValueError("'max_configs' must be a positive integer")
        jobs = payload.get("jobs")
        if jobs is not None and not isinstance(jobs, int):
            raise ValueError("'jobs' must be an integer")
        ground_truth = payload.get("ground_truth")
        if ground_truth is not None and not isinstance(ground_truth, bool):
            raise ValueError("'ground_truth' must be a boolean")
        return cls(
            kind=kind,
            protocol=protocol,
            fixture=fixture,
            params=params,
            max_configs=max_configs,
            jobs=jobs,
            fail_fast=bool(payload.get("fail_fast", False)),
            ground_truth=ground_truth,
        )

    def as_payload(self) -> dict:
        """The canonical JSON object (journal records, status endpoint)."""
        payload: Dict[str, object] = {"kind": self.kind}
        if self.protocol is not None:
            payload["protocol"] = self.protocol
        if self.fixture is not None:
            payload["fixture"] = self.fixture
        if self.params:
            payload["params"] = {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in self.params
            }
        if self.max_configs is not None:
            payload["max_configs"] = self.max_configs
        if self.jobs is not None:
            payload["jobs"] = self.jobs
        if self.fail_fast:
            payload["fail_fast"] = True
        if self.ground_truth is not None:
            payload["ground_truth"] = self.ground_truth
        return payload

    @property
    def fingerprint(self) -> str:
        """Content hash of the canonical request — the identity that
        names the checkpoint directory and guards journal records."""
        canon = json.dumps(self.as_payload(), sort_keys=True)
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        if self.kind == "verify":
            return f"verify {self.protocol}"
        if self.kind == "explain":
            return f"explain {self.fixture}"
        return "table1"


@dataclass
class Job:
    """One admitted job and everything the status endpoint reports."""

    id: str
    request: JobRequest
    status: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    attempts: int = 0

    @property
    def fingerprint(self) -> str:
        return self.request.fingerprint

    @property
    def elapsed(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def summary(self) -> dict:
        payload: Dict[str, object] = {
            "id": self.id,
            "kind": self.request.kind,
            "describe": self.request.describe(),
            "status": self.status,
            "fingerprint": self.fingerprint,
            "submitted_at": self.submitted_at,
            "attempts": self.attempts,
        }
        if self.started_at is not None:
            payload["started_at"] = self.started_at
        if self.finished_at is not None:
            payload["finished_at"] = self.finished_at
            payload["elapsed_seconds"] = round(self.elapsed or 0.0, 6)
        if self.error is not None:
            payload["error"] = self.error
        return payload

    def detail(self) -> dict:
        payload = self.summary()
        payload["request"] = self.request.as_payload()
        if self.result is not None:
            payload["result"] = self.result
        return payload


class JobStore:
    """Append-only journal of job lifecycle events.

    Layout: line 1 a schema header, then one record per event —
    ``submitted`` (carries the full request), ``started``, ``finished``
    (carries the result payload), ``interrupted``. :meth:`load` folds
    the events newest-wins into per-job state; jobs whose latest event
    is not ``finished`` are the restart backlog.

    Disk faults degrade, never abort: a failed append counts in
    ``write_errors`` and closes the handle, and the *next* record
    retries a reopen (a long-lived daemon should resume journaling once
    disk pressure clears — unlike the engine journal, which latches off
    for the remainder of its single run). Reopening repairs an
    unterminated tail (the torn half-record a failed append may have
    left) by appending a newline, so the damaged line is isolated
    instead of fusing with the next record.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle = None
        self._opened = False
        #: Failed appends, each degraded to a lost journal record (the
        #: in-memory job state is unaffected; /healthz surfaces these).
        self.write_errors = 0

    # -------------------------------------------------------------- #
    # Loading
    # -------------------------------------------------------------- #

    @classmethod
    def load(cls, path) -> Tuple[List[Job], List[dict]]:
        """Replay a journal into ``(jobs, raw_events)``, in submit order.

        Raises :class:`StaleJobStoreError` when the header is missing or
        belongs to another schema. Undecodable lines and records whose
        embedded request no longer matches their recorded fingerprint
        are dropped *individually* — every record carries its own
        fingerprint guard, so a line torn by a mid-file disk fault (or a
        hand-edit) only loses itself, never the jobs journaled after it.
        """
        path = Path(path)
        raw_lines = path.read_bytes().splitlines()
        if not raw_lines:
            raise StaleJobStoreError(f"{path}: empty job journal (no header)")
        try:
            header = json.loads(raw_lines[0].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StaleJobStoreError(f"{path}: unreadable header: {exc}") from exc
        if not isinstance(header, dict) or header.get("schema") != JOBS_SCHEMA:
            raise StaleJobStoreError(
                f"{path}: not a job journal (schema "
                f"{header.get('schema') if isinstance(header, dict) else None!r})"
            )
        jobs: Dict[str, Job] = {}
        order: List[str] = []
        events: List[dict] = []
        for raw in raw_lines[1:]:
            try:
                record = json.loads(raw.decode("utf-8"))
                event = record["event"]
                job_id = record["id"]
            except Exception:
                continue  # torn/damaged line: drop it, records are
                # individually fingerprint-guarded below
            if event == "submitted":
                try:
                    request = JobRequest.from_payload(record["request"])
                except (KeyError, ValueError):
                    continue
                if request.fingerprint != record.get("fingerprint"):
                    continue  # corrupt or tampered record: drop it
                job = Job(
                    id=job_id,
                    request=request,
                    submitted_at=float(record.get("at", 0.0)),
                )
                jobs[job_id] = job
                order.append(job_id)
            else:
                job = jobs.get(job_id)
                if job is None:
                    continue
                if record.get("fingerprint") != job.fingerprint:
                    continue
                if event == "started":
                    job.status = "running"
                    job.started_at = float(record.get("at", 0.0))
                    job.attempts = int(record.get("attempts", job.attempts + 1))
                elif event == "finished":
                    job.status = str(record.get("status", "done"))
                    job.finished_at = float(record.get("at", 0.0))
                    job.result = record.get("result")
                    job.error = record.get("error")
                elif event == "interrupted":
                    job.status = "interrupted"
            events.append(record)
        return [jobs[job_id] for job_id in order], events

    # -------------------------------------------------------------- #
    # Appending
    # -------------------------------------------------------------- #

    def open(self, fresh: bool = False) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "w" if fresh or not self.path.exists() else "a"
        if mode == "a":
            self._repair_tail()
        self._handle = open(self.path, mode, encoding="utf-8")
        self._opened = True
        if mode == "w":
            self._append({"schema": JOBS_SCHEMA})
            self.sync()

    def _repair_tail(self) -> None:
        """Terminate an unterminated final line (torn by a failed append)
        so the next record starts on its own line. Best-effort."""
        try:
            with open(self.path, "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
        except OSError:
            pass

    def record(self, event: str, job: Job, **extra) -> bool:
        """Append one lifecycle event; False when the disk refused it.

        A failed write closes the handle; the next call retries a
        reopen, so journaling resumes once transient disk pressure
        (ENOSPC, EIO) clears.
        """
        payload: Dict[str, object] = {
            "event": event,
            "id": job.id,
            "fingerprint": job.fingerprint,
            "at": time.time(),
        }
        if event == "submitted":
            payload["request"] = job.request.as_payload()
        if event == "started":
            payload["attempts"] = job.attempts
        if event == "finished":
            payload["status"] = job.status
            payload["result"] = job.result
            if job.error is not None:
                payload["error"] = job.error
        payload.update(extra)
        try:
            if self._handle is None:
                if not self._opened:
                    raise RuntimeError("job store is closed")
                self.open()
            self._append(payload)
            if event in ("finished", "interrupted"):
                self.sync()
            else:
                self._handle.flush()
        except OSError:
            self.write_errors += 1
            self._close_quietly()
            return False
        return True

    def _append(self, payload: dict) -> None:
        if self._handle is None:
            raise RuntimeError("job store is closed")
        text = json.dumps(payload) + "\n"
        mode = faults.maybe_fs_fault("jobs.append")
        if mode is not None:
            if mode == "torn":
                try:
                    self._handle.write(text[: max(1, len(text) // 2)])
                    self._handle.flush()
                except OSError:
                    pass
            raise faults.fs_error(mode, str(self.path))
        self._handle.write(text)

    def sync(self) -> None:
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _close_quietly(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.sync()
            except OSError:
                self.write_errors += 1
            self._close_quietly()
