"""Verification-as-a-service: the ``repro serve`` daemon.

One-shot ``repro verify`` pays cold start on every invocation — process
launch, imports, universe construction, interner/evaluation-cache
warm-up, result-cache open. This package keeps all of it resident: a
long-running ``asyncio`` daemon (stdlib only — no new dependencies)
accepts verify / table1 / explain jobs over HTTP/JSON, admits them
through a bounded queue with per-job budgets and backpressure (429 +
``Retry-After`` when full), discharges them one at a time on the
existing scheduler + resilience stack, and streams per-obligation
progress from the :mod:`repro.obs` tracer as server-sent events.

Module map
----------
``config``  ``ServeConfig`` — flags + ``REPRO_SERVE_*`` environment.
``jobs``    job model, bounded queue semantics, and the schema-versioned
            fingerprint-guarded job journal that makes a daemon restart
            resume in-flight runs.
``http``    minimal asyncio HTTP/1.1 server with SSE responses.
``daemon``  ``ServeDaemon`` — wiring: endpoints, the single worker,
            warm state (``repro.engine.warm``), signal-driven drain.

See README ("Serving"), DESIGN ("Verification as a service") and
EXPERIMENTS ("Warm vs cold under load") for usage and the soundness
argument for cross-request state reuse.
"""

from .config import ServeConfig
from .daemon import ServeDaemon
from .jobs import Job, JobRequest, JobStore

__all__ = ["Job", "JobRequest", "JobStore", "ServeConfig", "ServeDaemon"]
