"""The warm verification daemon behind ``repro serve``.

One process, one event loop, one worker. The asyncio side owns
admission — parse, validate, clamp budgets, enqueue or refuse with
``429`` — and stays responsive while a verification runs, because every
job executes on a single dedicated worker *thread* (``daemon=True``, so
a wedged job can never hold the process hostage past the drain grace).
Serializing jobs is not a limitation but the design: the engine's
process-level caches (interner, evaluation memos, columnar tables) and
the :class:`~repro.engine.warm.WarmState` memo maps are
single-threaded structures, and one-at-a-time execution is exactly what
keeps them coherent *and* hot.

With ``--sandbox`` the worker thread stops *executing* and starts
*supervising*: each job runs inside the subprocess sandbox of
:mod:`repro.serve.executor` (rlimits, heartbeat watchdog, respawn →
circuit breaker → optional in-process fallback), so a hard crash — a
segfault, an OOM kill, ``SIGKILL`` of the sandbox itself — costs one
worker respawn, never the daemon. Both modes share the same execution
path (:func:`~repro.serve.executor.run_request`); the trade is the
sandbox's serialization overhead against in-process memo reuse, and
the benchmark (``benchmarks/bench_serve.py --sandbox-overhead``) keeps
that trade honest.

Progress streams out live: the worker attaches a
:class:`~repro.obs.stream.StreamingTracer` whose publish callback hops
spans back onto the loop (``call_soon_threadsafe``) into a per-job
:class:`EventChannel` — buffered for late subscribers, fanned out as
SSE to current ones.

Shutdown is a protocol, not an ``exit()``: SIGTERM (or SIGINT) stops
admission (``503``), raises ``KeyboardInterrupt`` *inside* the worker
thread via ``PyThreadState_SetAsyncExc`` so the engine's salvage path
journals what it finished, waits at most ``drain_grace`` seconds, and
records ``interrupted`` for whatever remains. On the next start the job
journal's unfinished backlog is re-enqueued, and each job's engine
checkpoint journal (named by the request fingerprint) turns the re-run
into a resume.
"""

from __future__ import annotations

import asyncio
import ctypes
import inspect
import math
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..engine.warm import WarmState
from ..obs.stream import StreamingTracer, sse_event
from .config import ServeConfig
from .executor import (
    SandboxConfig,
    SandboxCrashed,
    SandboxExecutor,
    crashed_payload,
    run_request,
)
from .http import (
    EventStreamResponse,
    HttpError,
    Request,
    Router,
    json_response,
)
from .jobs import Job, JobRequest, JobStore, StaleJobStoreError

__all__ = ["EventChannel", "ServeDaemon"]

HEALTH_SCHEMA = "repro.serve/healthz/v2"

#: Fallback per-job duration estimate (seconds) before the EWMA has any
#: samples — only used to size the 429 Retry-After hint.
INITIAL_JOB_ESTIMATE = 2.0
EWMA_ALPHA = 0.3

#: Terminal job states; everything else is restart backlog. ``crashed``
#: is terminal by design: the circuit breaker already decided retrying
#: is a loop, so a restart must not resurrect the loop.
FINISHED_STATES = ("done", "failed", "crashed")


class EventChannel:
    """Per-job event fan-out: a replay buffer plus live subscribers.

    ``publish`` is loop-affine (the worker thread hops here via
    ``call_soon_threadsafe``); subscribers each get an unbounded queue —
    progress events are small and bounded by the obligation count, and a
    slow SSE consumer must never stall the worker.
    """

    def __init__(self) -> None:
        self.frames: List[bytes] = []
        self.closed = False
        self._subscribers: List[asyncio.Queue] = []

    def publish(self, event: str, payload: dict) -> None:
        frame = sse_event(event, payload, event_id=len(self.frames))
        self.frames.append(frame)
        for queue in self._subscribers:
            queue.put_nowait(frame)

    def close(self) -> None:
        self.closed = True
        for queue in self._subscribers:
            queue.put_nowait(None)
        self._subscribers = []

    async def stream(self):
        """Replay everything buffered, then follow live until closed."""
        queue: Optional[asyncio.Queue] = None
        if not self.closed:
            queue = asyncio.Queue()
            self._subscribers.append(queue)
        for frame in list(self.frames):
            yield frame
        if queue is None:
            return
        try:
            while True:
                frame = await queue.get()
                if frame is None:
                    return
                yield frame
        finally:
            if queue in self._subscribers:
                self._subscribers.remove(queue)


@dataclass
class _ActiveJob:
    """The in-flight job: what the drain path needs to interrupt it."""

    job: Job
    thread: threading.Thread
    done: asyncio.Future
    outcome: dict = field(default_factory=dict)


class ServeDaemon:
    """The resident verification service (see the module docstring)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir) if config.state_dir else None
        rcache = None
        if self.state_dir is not None:
            from ..engine.rcache import ObligationCache

            rcache = ObligationCache(self.state_dir / "rcache")
        self.warm = WarmState(rcache=rcache)
        self.executor: Optional[SandboxExecutor] = None
        if config.sandbox:
            self.executor = SandboxExecutor(
                SandboxConfig(
                    max_rss_mb=config.sandbox_max_rss_mb,
                    cpu_seconds=config.sandbox_cpu_seconds,
                    recycle_after=config.sandbox_recycle_after,
                    heartbeat_grace=config.sandbox_heartbeat_grace,
                    max_respawns=config.sandbox_max_respawns,
                    breaker_threshold=config.sandbox_breaker_threshold,
                ),
                state_dir=self.state_dir,
            )
        #: Lifetime outcome counters (jobs this process finished, by
        #: outcome — distinct from the by-status snapshot in /healthz's
        #: ``jobs``, which includes restored history and the backlog).
        self.counters: Dict[str, int] = {
            "executed": 0,
            "failed": 0,
            "crashed": 0,
            "interrupted": 0,
        }
        self.jobs: Dict[str, Job] = {}
        self.order: List[str] = []
        self.channels: Dict[str, EventChannel] = {}
        self.store: Optional[JobStore] = None
        self.bound_port: Optional[int] = None
        self.ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._draining = False
        self._stop = None
        self._active: Optional[_ActiveJob] = None
        self._seq = 0
        self._ewma = INITIAL_JOB_ESTIMATE
        self._started_at = time.time()
        self.router = self._build_router()

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #

    async def run(self) -> None:
        """Serve until a drain request, then shut down cleanly."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._stop = asyncio.Event()
        self._open_store()
        for backlog in self._restart_backlog():
            self._queue.put_nowait(backlog)
        server = await asyncio.start_server(
            self.router.handle_connection, self.config.host, self.config.port
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        self._install_signal_handlers()
        worker = asyncio.ensure_future(self._worker())
        state = str(self.state_dir) if self.state_dir else "in-memory"
        print(
            f"repro-serve: listening on http://{self.config.host}:"
            f"{self.bound_port} (queue depth {self.config.queue_depth}, "
            f"state {state})",
            flush=True,
        )
        self.ready.set()
        try:
            await self._stop.wait()
        finally:
            self._draining = True
            server.close()
            await server.wait_closed()
            await self._drain(worker)
            if self.executor is not None:
                self.executor.shutdown()
            if self.store is not None:
                self.store.close()
            print("repro-serve: drained, exiting", flush=True)

    def request_shutdown(self) -> None:
        """Begin the drain; safe to call from any thread or a signal."""
        loop = self._loop
        if loop is None or self._stop is None:
            return

        def begin() -> None:
            if not self._draining:
                self._draining = True
                self._stop.set()
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            begin()
        else:
            loop.call_soon_threadsafe(begin)

    def _install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                # Not the main thread (tests run the daemon embedded) or
                # no loop-level signal support: the embedding caller owns
                # shutdown via request_shutdown().
                return

    async def _drain(self, worker: asyncio.Future) -> None:
        active = self._active
        if active is not None and active.thread.is_alive():
            self._interrupt_active()
            try:
                await asyncio.wait_for(
                    asyncio.shield(active.done), self.config.drain_grace
                )
            except asyncio.TimeoutError:
                # The job ignored the interrupt (e.g. stuck in a C-level
                # sleep); it dies with the daemon thread. Journal the
                # fact so restart re-enqueues it.
                self._mark_interrupted(active.job)
        worker.cancel()
        try:
            await worker
        except asyncio.CancelledError:
            pass
        # Jobs still queued stay 'submitted'-only in the journal — that
        # is already the restart backlog; close their channels so SSE
        # followers terminate.
        for channel in self.channels.values():
            if not channel.closed:
                channel.close()

    def _interrupt_active(self) -> None:
        active = self._active
        if active is None or not active.thread.is_alive():
            return
        tid = active.thread.ident
        if tid is None:
            return
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(tid), ctypes.py_object(KeyboardInterrupt)
        )

    def _mark_interrupted(self, job: Job) -> None:
        job.status = "interrupted"
        job.finished_at = time.time()
        if self.store is not None:
            self.store.record("interrupted", job)
        channel = self.channels.get(job.id)
        if channel is not None:
            channel.publish("status", {"id": job.id, "status": job.status})
            channel.close()

    # -------------------------------------------------------------- #
    # Persistence
    # -------------------------------------------------------------- #

    def _store_path(self) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / "jobs.jsonl"

    def _open_store(self) -> None:
        path = self._store_path()
        if path is None:
            return
        restored: List[Job] = []
        if path.exists():
            try:
                restored, _events = JobStore.load(path)
            except StaleJobStoreError as exc:
                stale = path.with_suffix(".jsonl.stale")
                path.replace(stale)
                print(
                    f"repro-serve: set aside unreadable job journal "
                    f"({exc}) as {stale}",
                    file=sys.stderr,
                    flush=True,
                )
                restored = []
        self.store = JobStore(path)
        self.store.open()
        for job in restored:
            self.jobs[job.id] = job
            self.order.append(job.id)
            self.channels[job.id] = channel = EventChannel()
            if job.status in FINISHED_STATES:
                channel.publish(
                    "status", {"id": job.id, "status": job.status}
                )
                channel.close()
        self._seq = len(restored)

    def _restart_backlog(self) -> List[Job]:
        """Unfinished journaled jobs, re-queued in submit order."""
        backlog = []
        for job_id in self.order:
            job = self.jobs[job_id]
            if job.status not in FINISHED_STATES:
                job.status = "queued"
                backlog.append(job)
        return backlog

    # -------------------------------------------------------------- #
    # Routes
    # -------------------------------------------------------------- #

    def _build_router(self) -> Router:
        router = Router()
        router.route("GET", "/healthz")(self._handle_healthz)
        router.route("GET", "/jobs")(self._handle_jobs_list)
        router.route("POST", "/jobs")(self._handle_jobs_post)
        router.route("GET", "/jobs/<job_id>")(self._handle_job_get)
        router.route("GET", "/jobs/<job_id>/events")(self._handle_job_events)
        return router

    async def _handle_healthz(self, _request: Request):
        counts: Dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        sandbox = (
            self.executor.describe()
            if self.executor is not None
            else {"enabled": False}
        )
        rcache_stats = None
        if self.warm.rcache is not None:
            rcache_stats = self.warm.rcache.stats.snapshot()
        return json_response(
            {
                "schema": HEALTH_SCHEMA,
                "status": "draining" if self._draining else "ok",
                "uptime_seconds": round(time.time() - self._started_at, 3),
                "queue": {
                    "depth": self._queue.qsize() if self._queue else 0,
                    "capacity": self.config.queue_depth,
                },
                "jobs": counts,
                "counters": dict(self.counters),
                "sandbox": sandbox,
                "store": {
                    "write_errors": (
                        self.store.write_errors if self.store is not None else 0
                    ),
                },
                "rcache": rcache_stats,
                "warm": self.warm.describe(),
            }
        )

    async def _handle_jobs_list(self, _request: Request):
        return json_response(
            {"jobs": [self.jobs[job_id].summary() for job_id in self.order]}
        )

    async def _handle_jobs_post(self, request: Request):
        if self._draining:
            raise HttpError(503, "daemon is draining; not accepting jobs")
        try:
            job_request = JobRequest.from_payload(request.json())
            self._validate_target(job_request)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        if self._queue.full():
            backlog = self._queue.qsize() + (1 if self._active else 0)
            retry_after = max(1, math.ceil(self._ewma * backlog))
            raise HttpError(
                429,
                f"queue full ({self.config.queue_depth} jobs); retry later",
                headers={"Retry-After": str(retry_after)},
            )
        self._seq += 1
        job = Job(
            id=f"job-{self._seq:04d}-{job_request.fingerprint[:8]}",
            request=job_request,
        )
        self.jobs[job.id] = job
        self.order.append(job.id)
        self.channels[job.id] = EventChannel()
        if self.store is not None:
            self.store.record("submitted", job)
        self._queue.put_nowait(job)
        return json_response(
            {
                "job": job.summary(),
                "status_url": f"/jobs/{job.id}",
                "events_url": f"/jobs/{job.id}/events",
            },
            status=202,
        )

    def _validate_target(self, request: JobRequest) -> None:
        """Reject unknown protocols/fixtures/parameters at admission, so
        the worker thread never sees an unservable job."""
        if request.kind == "verify":
            from ..protocols import ALL_PROTOCOLS

            module = ALL_PROTOCOLS.get(request.protocol)
            if module is None:
                raise ValueError(
                    f"unknown protocol {request.protocol!r}; try: "
                    f"{', '.join(sorted(ALL_PROTOCOLS))}"
                )
            accepted = set(inspect.signature(module.verify).parameters)
            reserved = {
                "max_configs", "jobs", "fail_fast", "tracer",
                "resilience", "cache", "warm", "ground_truth",
            }
            bad = sorted(
                name
                for name, _ in request.params
                if name not in accepted or name in reserved
            )
            if bad:
                raise ValueError(
                    f"unknown params for {request.protocol}: "
                    f"{', '.join(bad)} (budgets and ground_truth are "
                    f"top-level fields, not params)"
                )
        elif request.kind == "explain":
            from ..diagnose import FIXTURES

            if request.fixture not in FIXTURES:
                raise ValueError(
                    f"unknown fixture {request.fixture!r}; try: "
                    f"{', '.join(sorted(FIXTURES))}"
                )
            if request.params:
                raise ValueError("explain jobs take no 'params'")
        elif request.params:
            raise ValueError("table1 jobs take no 'params'")

    async def _handle_job_get(self, _request: Request, job_id: str):
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        return json_response(job.detail())

    async def _handle_job_events(self, _request: Request, job_id: str):
        channel = self.channels.get(job_id)
        if channel is None:
            raise HttpError(404, f"no such job: {job_id}")
        return EventStreamResponse(events=channel.stream())

    # -------------------------------------------------------------- #
    # Worker
    # -------------------------------------------------------------- #

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        channel = self.channels[job.id]
        job.status = "running"
        job.started_at = time.time()
        job.attempts += 1
        if self.store is not None:
            self.store.record("started", job)
        channel.publish(
            "status",
            {"id": job.id, "status": "running", "attempts": job.attempts},
        )
        loop = self._loop
        done = loop.create_future()
        active = _ActiveJob(job=job, thread=None, done=done)

        def publish_span(record: dict) -> None:
            loop.call_soon_threadsafe(channel.publish, "span", record)

        def work() -> None:
            outcome = active.outcome
            try:
                outcome["result"] = self._execute(job, publish_span)
            except KeyboardInterrupt:
                outcome["interrupted"] = True
            except Exception as exc:
                outcome["error"] = f"{type(exc).__name__}: {exc}"
            finally:

                def finish() -> None:
                    if not done.done():
                        done.set_result(None)

                try:
                    loop.call_soon_threadsafe(finish)
                except RuntimeError:
                    # The loop is gone: a hung job outlived the drain
                    # grace and only woke after shutdown. Its journals
                    # were already salvaged; nothing to deliver.
                    pass

        thread = threading.Thread(
            target=work, name=f"repro-serve-{job.id}", daemon=True
        )
        active.thread = thread
        self._active = active
        thread.start()
        try:
            await asyncio.shield(done)
        except asyncio.CancelledError:
            # The drain path owns this job's bookkeeping from here.
            raise
        finally:
            if self._active is active:
                self._active = None
        self._finish_job(job, active.outcome, channel)

    def _finish_job(
        self, job: Job, outcome: dict, channel: EventChannel
    ) -> None:
        job.finished_at = time.time()
        result = outcome.get("result")
        if outcome.get("interrupted") or (
            result is not None and result.get("status") == "INTERRUPTED"
        ):
            job.status = "interrupted"
            job.result = result
            self.counters["interrupted"] += 1
            if self.store is not None:
                self.store.record("interrupted", job)
        elif "error" in outcome:
            job.status = "failed"
            job.error = outcome["error"]
            self.counters["failed"] += 1
            if self.store is not None:
                self.store.record("finished", job)
        elif result is not None and result.get("status") == "CRASHED":
            # The sandbox breaker spoke: terminal, typed, journaled like
            # any other finished job (a restart must not retry the loop).
            job.status = "crashed"
            job.result = result
            job.error = result.get("error")
            self.counters["crashed"] += 1
            if self.store is not None:
                self.store.record("finished", job)
        else:
            job.status = "done"
            job.result = result
            self.counters["executed"] += 1
            if self.store is not None:
                self.store.record("finished", job)
            if job.elapsed is not None:
                self._ewma = (
                    EWMA_ALPHA * job.elapsed + (1 - EWMA_ALPHA) * self._ewma
                )
        channel.publish("status", {"id": job.id, "status": job.status})
        if job.result is not None:
            channel.publish("result", job.result)
        elif job.error is not None:
            channel.publish("result", {"error": job.error})
        channel.close()

    # -------------------------------------------------------------- #
    # Execution (worker thread)
    # -------------------------------------------------------------- #

    def _budgets(self, request: JobRequest) -> dict:
        """Per-job budgets clamped to the operator ceiling."""
        max_configs = request.max_configs
        clamped = False
        if self.config.max_configs is not None:
            if max_configs is None or max_configs > self.config.max_configs:
                clamped = max_configs is not None
                max_configs = self.config.max_configs
        jobs = request.jobs if request.jobs is not None else self.config.jobs
        return {
            "max_configs": max_configs,
            "jobs": jobs,
            "clamped": clamped,
        }

    def _resilience(self, request: JobRequest):
        checkpoint_dir = None
        if self.state_dir is not None:
            checkpoint_dir = str(
                self.state_dir / "ckpt" / request.fingerprint
            )
        timeout = self.config.timeout_per_obligation
        if checkpoint_dir is None and timeout is None:
            return None
        from ..engine.resilience import ResilienceConfig

        kwargs = {}
        if timeout is not None:
            kwargs["timeout_per_obligation"] = timeout
        if checkpoint_dir is not None:
            kwargs["checkpoint_dir"] = checkpoint_dir
            kwargs["resume"] = True
        return ResilienceConfig(**kwargs)

    def _execute(self, job: Job, publish_span) -> dict:
        """One job, either isolation level (runs on the worker thread).

        Sandbox mode delegates to the supervisor and converts an
        exhausted degradation ladder into either the flagged in-process
        fallback or a typed ``CRASHED`` payload. A
        :class:`~repro.serve.executor.SandboxJobError` propagates — the
        job failed, the service is fine — and lands in the generic
        error path of ``work()``.
        """
        request = job.request
        budgets = self._budgets(request)
        resilience = self._resilience(request)
        if self.executor is not None:
            try:
                return self.executor.execute(
                    job.id, request, budgets, resilience, publish_span
                )
            except SandboxCrashed as crash:
                if not self.config.sandbox_fallback:
                    return crashed_payload(request, crash)
                payload = self._run_inprocess(
                    job, request, budgets, resilience, publish_span
                )
                payload["sandbox"] = {
                    "mode": "inprocess-fallback",
                    "crashes": crash.crashes,
                    "detail": crash.detail,
                }
                return payload
        return self._run_inprocess(
            job, request, budgets, resilience, publish_span
        )

    def _run_inprocess(
        self, job: Job, request: JobRequest, budgets, resilience, publish_span
    ) -> dict:
        tracer = StreamingTracer(publish_span)
        tracer.meta["job"] = job.id
        return run_request(
            request, self.warm, budgets, resilience=resilience, tracer=tracer
        )


def run_daemon(config: ServeConfig) -> int:
    """Blocking entry point used by ``repro serve``."""
    daemon = ServeDaemon(config)
    try:
        asyncio.run(daemon.run())
    except KeyboardInterrupt:
        # Signal handlers normally drain first; a second Ctrl-C lands
        # here. Nothing left to salvage — the journals are flushed per
        # record.
        return 130
    return 0
