"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``table1 [--jobs N] [--stats] [--fail-fast] [--trace FILE] [--metrics FILE]``
    Regenerate the Table 1 analogue (runs all seven verifications).
    ``--jobs`` discharges the IS obligations over N worker processes;
    ``--stats`` adds per-obligation wall-time / enumeration statistics;
    ``--fail-fast`` skips obligations downstream of a failure;
    ``--trace`` writes a Chrome ``trace_event`` JSON (open in
    ``chrome://tracing`` or Perfetto) and ``--metrics`` a flat metrics
    JSON, both covering every discharged obligation.
``verify <protocol> [--jobs N] [--fail-fast] [--trace FILE] [--metrics FILE]``
    Run one protocol's pipeline at its default instance parameters and
    print the report. Protocols: broadcast, pingpong, prodcons, nbuyer,
    changroberts, twophase, paxos.
``list``
    List the available protocols with their Table 1 #IS counts.
"""

from __future__ import annotations

import argparse
import sys


def _make_tracer(args):
    """A tracer when ``--trace``/``--metrics`` was requested, else None —
    the engine's untraced path stays byte-identical."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics", None)):
        return None
    from .obs import Tracer

    tracer = Tracer()
    tracer.meta["argv"] = " ".join(sys.argv[1:])
    return tracer


def _export_trace(tracer, args) -> None:
    from .obs import render_summary, write_chrome_trace, write_metrics

    print()
    print(render_summary(tracer))
    if args.trace:
        path = write_chrome_trace(tracer, args.trace)
        print(
            f"trace: wrote {path} ({len(tracer.spans)} spans; open in "
            f"chrome://tracing or https://ui.perfetto.dev)"
        )
    if args.metrics:
        path = write_metrics(tracer, args.metrics)
        print(f"metrics: wrote {path}")


def _cmd_table1(args) -> int:
    from .analysis import (
        build_table1,
        render_obligation_stats,
        render_table1,
        verify_trace_consistency,
    )

    tracer = _make_tracer(args)
    rows = build_table1(jobs=args.jobs, fail_fast=args.fail_fast, tracer=tracer)
    print(render_table1(rows))
    if args.stats:
        print()
        print(render_obligation_stats(rows))
    if tracer is not None:
        verify_trace_consistency(rows, tracer)
        _export_trace(tracer, args)
    return 0 if all(row.ok for row in rows) else 1


def _cmd_verify(args) -> int:
    from .protocols import ALL_PROTOCOLS

    module = ALL_PROTOCOLS.get(args.protocol)
    if module is None:
        print(f"unknown protocol {args.protocol!r}; try: "
              f"{', '.join(sorted(ALL_PROTOCOLS))}", file=sys.stderr)
        return 2
    tracer = _make_tracer(args)
    report = module.verify(jobs=args.jobs, fail_fast=args.fail_fast, tracer=tracer)
    print(report.summary())
    if tracer is not None:
        _export_trace(tracer, args)
    return 0 if report.ok else 1


def _cmd_list(_args) -> int:
    from .protocols import ALL_PROTOCOLS

    counts = {
        "broadcast": 2, "pingpong": 1, "prodcons": 1, "nbuyer": 4,
        "changroberts": 2, "twophase": 4, "paxos": 1,
    }
    for name in sorted(ALL_PROTOCOLS):
        print(f"  {name:<14} (#IS = {counts[name]})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Inductive Sequentialization of Asynchronous Programs "
        "(PLDI 2020) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    table1 = sub.add_parser("table1", help="regenerate the Table 1 analogue")
    table1.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for obligation discharge (default: serial)",
    )
    table1.add_argument(
        "--stats",
        action="store_true",
        help="also print per-obligation wall-time / enumeration statistics",
    )
    table1.add_argument(
        "--fail-fast",
        action="store_true",
        help="skip obligations (transitively) downstream of a failed one",
    )
    table1.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace_event JSON of every discharged obligation",
    )
    table1.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a flat metrics JSON (per-obligation and aggregates)",
    )
    verify = sub.add_parser("verify", help="verify one protocol")
    verify.add_argument("protocol")
    verify.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for obligation discharge (default: serial)",
    )
    verify.add_argument(
        "--fail-fast",
        action="store_true",
        help="skip obligations (transitively) downstream of a failed one",
    )
    verify.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace_event JSON of every discharged obligation",
    )
    verify.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a flat metrics JSON (per-obligation and aggregates)",
    )
    sub.add_parser("list", help="list protocols")
    args = parser.parse_args(argv)
    return {"table1": _cmd_table1, "verify": _cmd_verify, "list": _cmd_list}[
        args.command
    ](args)


if __name__ == "__main__":
    raise SystemExit(main())
