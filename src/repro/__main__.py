"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``table1 [--jobs N] [--stats] [--fail-fast] [--max-configs N] [--explain]
[--symmetry] [--trace FILE] [--metrics FILE] [resilience flags]``
    Regenerate the Table 1 analogue (runs all seven verifications).
    ``--jobs`` discharges the IS obligations over N worker processes;
    ``--stats`` adds per-obligation wall-time / enumeration statistics;
    ``--fail-fast`` skips obligations downstream of a failure;
    ``--max-configs`` bounds every exploration (blown budgets render as a
    BUDGET row instead of a traceback); ``--explain`` shrinks and
    replay-confirms the counterexamples of every failed row;
    ``--trace`` writes a Chrome ``trace_event`` JSON (open in
    ``chrome://tracing`` or Perfetto) and ``--metrics`` a flat metrics
    JSON, both covering every discharged obligation;
    ``--symmetry``/``--no-symmetry`` toggles the orbit quotient: every
    exploration and IS universe is folded to lexicographic-least
    representatives under the protocol's declared permutation group
    (``make_symmetry``), shrinking the enumeration without changing any
    verdict.
``verify <protocol> [--jobs N] [--fail-fast] [--max-configs N] [--explain]
[--symmetry] [--trace FILE] [--metrics FILE] [resilience flags]``
    Run one protocol's pipeline at its default instance parameters and
    print the report. Protocols: broadcast, pingpong, prodcons, nbuyer,
    changroberts, twophase, paxos.

Cache flags (``verify`` and ``table1``)
    ``--cache DIR`` arms the persistent content-addressed obligation
    result cache (``repro.engine.rcache``): a re-verify of an unchanged
    protocol seeds every obligation from DIR and executes none, and an
    edit re-executes exactly the obligations whose dependency
    fingerprints changed. ``$REPRO_CACHE`` supplies a default directory;
    ``--no-cache`` disables both; ``--cache-stats`` prints greppable
    ``rcache:`` counter lines (hits/misses/invalidations and the
    executed-vs-cached split) after the report.

Resilience flags (``verify`` and ``table1``)
    ``--timeout-per-obligation S`` arms a wall-clock deadline per
    obligation attempt (expired obligations report TIMEOUT instead of
    hanging the run); ``--max-retries K`` bounds crash retries;
    ``--checkpoint DIR`` journals completed obligations (one JSONL file
    per IS application, fsync'd per wave) and ``--resume`` skips the
    journaled ones on restart — a journal from a different run is refused
    (exit 2). Ctrl-C prints the salvaged partial report and exits 130, as
    does a run whose discharge was interrupted.
``explain <fixture> [--jobs N] [--json FILE]``
    Run a seeded failing fixture (``repro.diagnose.fixtures``) end to end
    and print the diagnosis: every counterexample minimized by
    delta-debugging, each shrink step replay-confirmed against the
    violated obligation predicate. ``--json`` also writes the
    machine-readable failure report (schema ``repro.obs/failure/v1``);
    ``--list`` enumerates the fixtures. Exit code 0 iff every witness was
    replay-confirmed.
``serve [--host H] [--port P] [--queue-depth N] [--state DIR]
[--max-configs N] [--jobs N] [--timeout-per-obligation S]
[--drain-grace S]``
    Run the warm verification daemon (``repro.serve``): accepts
    verify/table1/explain jobs over HTTP/JSON on a bounded queue,
    keeps universes, caches, and the result store resident across
    requests, streams per-obligation progress as SSE from
    ``/jobs/<id>/events``, and journals job state under ``--state DIR``
    so a restart resumes in-flight runs. Host, port, and queue depth
    default from ``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT`` /
    ``REPRO_SERVE_QUEUE_DEPTH``. SIGTERM drains: in-flight work is
    salvaged to the journals before exit.
``list``
    List the available protocols with their Table 1 #IS counts.
"""

from __future__ import annotations

import argparse
import sys


def _make_resilience(parser, args):
    """A ``ResilienceConfig`` when any resilience flag was used, else
    ``None`` — the default path stays the pre-resilience one."""
    if getattr(args, "resume", False) and not getattr(args, "checkpoint", None):
        parser.error("--resume requires --checkpoint DIR")
    if not (
        getattr(args, "timeout_per_obligation", None) is not None
        or getattr(args, "max_retries", None) is not None
        or getattr(args, "checkpoint", None)
    ):
        return None
    from .engine.resilience import ResilienceConfig

    kwargs = {}
    if args.timeout_per_obligation is not None:
        kwargs["timeout_per_obligation"] = args.timeout_per_obligation
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    if args.checkpoint:
        kwargs["checkpoint_dir"] = args.checkpoint
        kwargs["resume"] = bool(args.resume)
    return ResilienceConfig(**kwargs)


def _add_resilience_flags(subparser) -> None:
    subparser.add_argument(
        "--timeout-per-obligation",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock deadline (seconds) per obligation attempt; "
        "expired obligations report TIMEOUT",
    )
    subparser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help="crash retries per obligation before it degrades to "
        "in-parent execution and reports CRASH (default: 2)",
    )
    subparser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="journal completed obligations to DIR (one JSONL file per "
        "IS application, fsync'd per wave)",
    )
    subparser.add_argument(
        "--resume",
        action="store_true",
        help="skip obligations already journaled under --checkpoint DIR "
        "(stale journals are refused)",
    )


def _add_cache_flags(subparser) -> None:
    subparser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent obligation result cache: obligations whose "
        "dependency fingerprints are unchanged are seeded from DIR "
        "instead of re-executed (default: $REPRO_CACHE if set)",
    )
    subparser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (overrides --cache and $REPRO_CACHE)",
    )
    subparser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss/invalidation counters and the "
        "executed-vs-cached obligation split after the report",
    )


def _make_cache(parser, args):
    """An ``ObligationCache`` when caching is armed, else ``None``.

    ``--cache DIR`` wins, then ``$REPRO_CACHE``; ``--no-cache`` disables
    both. ``--cache-stats`` without a cache directory is an error."""
    import os

    directory = getattr(args, "cache", None) or os.environ.get("REPRO_CACHE")
    if getattr(args, "no_cache", False):
        directory = None
    if getattr(args, "cache_stats", False) and not directory:
        parser.error("--cache-stats requires --cache DIR (or $REPRO_CACHE)")
    if not directory:
        return None
    from .engine.rcache import ObligationCache

    return ObligationCache(directory)


def _print_cache_stats(cache, reports) -> None:
    """The greppable cache summary behind ``--cache-stats``: the cache's
    counter totals for this invocation, then the obligation split —
    ``executed=0`` is the incremental-verification CI gate."""
    stats = cache.stats
    print(
        f"rcache: hits={stats.hits} misses={stats.misses} "
        f"invalidations={stats.invalidations} stores={stats.stores} "
        f"uncacheable={stats.uncacheable} write_errors={stats.write_errors}"
    )
    total = cached = resumed = 0
    for report in reports:
        for _label, result in report.is_results:
            total += result.num_obligations
            cached += len(result.cached_keys)
            resumed += len(result.resumed_keys)
    executed = total - cached - resumed
    print(
        f"rcache: obligations={total} executed={executed} "
        f"cached={cached} resumed={resumed}"
    )


def _make_tracer(args):
    """A tracer when ``--trace``/``--metrics`` was requested, else None —
    the engine's untraced path stays byte-identical."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics", None)):
        return None
    from .obs import Tracer

    tracer = Tracer()
    tracer.meta["argv"] = " ".join(sys.argv[1:])
    return tracer


def _export_trace(tracer, args) -> None:
    from .obs import render_summary, write_chrome_trace, write_metrics

    print()
    print(render_summary(tracer))
    if args.trace:
        path = write_chrome_trace(tracer, args.trace)
        print(
            f"trace: wrote {path} ({len(tracer.spans)} spans; open in "
            f"chrome://tracing or https://ui.perfetto.dev)"
        )
    if args.metrics:
        path = write_metrics(tracer, args.metrics)
        print(f"metrics: wrote {path}")


def _explain_report(report) -> None:
    """Shrink, replay-confirm, and print every failed IS check's
    counterexamples (the ``--explain`` flag of verify/table1)."""
    from .diagnose import explain_result
    from .diagnose.render import render_explanation

    results = dict(report.is_results)
    for label, application, _universe in report.explain_targets:
        result = results.get(label)
        if result is None or result.holds:
            continue
        explanation = explain_result(
            application, result, target=f"{report.name} IS[{label}]"
        )
        print()
        print(render_explanation(explanation))


def _cmd_table1(args) -> int:
    from .analysis import (
        build_table1,
        render_obligation_stats,
        render_table1,
        verify_trace_consistency,
    )
    from .engine.journal import StaleJournalError

    tracer = _make_tracer(args)
    cache = args.cache_config
    try:
        rows = build_table1(
            max_configs=args.max_configs,
            jobs=args.jobs,
            fail_fast=args.fail_fast,
            tracer=tracer,
            resilience=args.resilience_config,
            cache=cache,
            symmetry=args.symmetry,
        )
    except StaleJournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_table1(rows))
    if cache is not None and args.cache_stats:
        _print_cache_stats(
            cache, [row.report for row in rows if row.report is not None]
        )
    if args.stats:
        print()
        print(render_obligation_stats(rows))
    if args.explain:
        for row in rows:
            if row.report is not None and not row.ok:
                _explain_report(row.report)
    if tracer is not None:
        verify_trace_consistency(rows, tracer)
        _export_trace(tracer, args)
    if any(row.report is not None and row.report.interrupted for row in rows):
        print("interrupted: partial table (completed rows shown)",
              file=sys.stderr)
        return 130
    return 0 if all(row.ok for row in rows) else 1


def _cmd_verify(args) -> int:
    from .engine.journal import StaleJournalError
    from .protocols import ALL_PROTOCOLS

    module = ALL_PROTOCOLS.get(args.protocol)
    if module is None:
        print(f"unknown protocol {args.protocol!r}; try: "
              f"{', '.join(sorted(ALL_PROTOCOLS))}", file=sys.stderr)
        return 2
    tracer = _make_tracer(args)
    cache = args.cache_config
    try:
        report = module.verify(
            max_configs=args.max_configs,
            jobs=args.jobs,
            fail_fast=args.fail_fast,
            tracer=tracer,
            resilience=args.resilience_config,
            cache=cache,
            symmetry=args.symmetry,
        )
    except StaleJournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if cache is not None and args.cache_stats:
        _print_cache_stats(cache, [report])
    if args.explain:
        _explain_report(report)
    if tracer is not None:
        _export_trace(tracer, args)
    if report.interrupted:
        return 130
    return 0 if report.ok else 1


def _cmd_explain(args) -> int:
    from .diagnose import FIXTURES, explain_fixture
    from .diagnose.render import render_explanation

    if args.list or args.fixture is None:
        for name, fixture in sorted(FIXTURES.items()):
            print(f"  {name:<22} {fixture.title}")
        return 0
    if args.fixture not in FIXTURES:
        print(f"unknown fixture {args.fixture!r}; try: "
              f"{', '.join(sorted(FIXTURES))}", file=sys.stderr)
        return 2
    fixture = FIXTURES[args.fixture]
    print(f"fixture: {fixture.name} — {fixture.title}")
    print(fixture.description)
    print()
    explanation = explain_fixture(args.fixture, jobs=args.jobs)
    print(render_explanation(explanation))
    if args.json:
        from .obs import write_failure_report

        path = write_failure_report(explanation, args.json)
        print(f"failure report: wrote {path}")
    return 0 if explanation.all_confirmed else 1


def _cmd_serve(args) -> int:
    from .serve import ServeConfig
    from .serve.daemon import run_daemon

    try:
        config = ServeConfig.from_env(
            host=args.host,
            port=args.port,
            queue_depth=args.queue_depth,
            state_dir=args.state,
            max_configs=args.max_configs,
            jobs=args.jobs,
            timeout_per_obligation=args.timeout_per_obligation,
            drain_grace=args.drain_grace,
            sandbox=True if args.sandbox else None,
            sandbox_max_rss_mb=args.sandbox_max_rss_mb,
            sandbox_cpu_seconds=args.sandbox_cpu_seconds,
            sandbox_recycle_after=args.sandbox_recycle_after,
            sandbox_heartbeat_grace=args.sandbox_heartbeat_grace,
            sandbox_max_respawns=args.sandbox_max_respawns,
            sandbox_breaker_threshold=args.sandbox_breaker_threshold,
            sandbox_fallback=True if args.sandbox_fallback else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return run_daemon(config)


def _cmd_cache(parser, args) -> int:
    """``repro cache stats|gc`` — inspect or trim the result cache."""
    from .engine.rcache import CACHE_MAX_MB_ENV, ObligationCache

    directory = args.dir or os.environ.get("REPRO_CACHE")
    if not directory:
        parser.error("cache commands need --dir DIR (or $REPRO_CACHE)")
    cache = ObligationCache(directory, max_mb=args.max_mb)
    info = cache.size_info()
    mb = info["bytes"] / (1024 * 1024)
    quota = info["max_mb"]
    if args.action == "stats":
        print(
            f"rcache: dir={cache.directory} entries={info['entries']} "
            f"bytes={info['bytes']} mb={mb:.2f} "
            f"quota_mb={quota if quota is not None else 'none'}"
        )
        if quota is None:
            print(
                f"rcache: no quota configured (set {CACHE_MAX_MB_ENV} "
                f"or pass --max-mb)"
            )
        return 0
    # gc
    if quota is None:
        parser.error(
            f"gc needs a quota: pass --max-mb or set {CACHE_MAX_MB_ENV}"
        )
    outcome = cache.gc(max_mb=quota)
    after = cache.size_info()
    print(
        f"rcache: gc removed={outcome['removed']} "
        f"freed_bytes={outcome['freed_bytes']} "
        f"entries={after['entries']} bytes={after['bytes']} "
        f"quota_mb={quota}"
    )
    return 0


def _cmd_list(_args) -> int:
    from .protocols import ALL_PROTOCOLS

    counts = {
        "broadcast": 2, "pingpong": 1, "prodcons": 1, "nbuyer": 4,
        "changroberts": 2, "twophase": 4, "paxos": 1,
    }
    for name in sorted(ALL_PROTOCOLS):
        print(f"  {name:<14} (#IS = {counts[name]})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Inductive Sequentialization of Asynchronous Programs "
        "(PLDI 2020) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    table1 = sub.add_parser("table1", help="regenerate the Table 1 analogue")
    table1.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for obligation discharge (default: serial)",
    )
    table1.add_argument(
        "--stats",
        action="store_true",
        help="also print per-obligation wall-time / enumeration statistics",
    )
    table1.add_argument(
        "--fail-fast",
        action="store_true",
        help="skip obligations (transitively) downstream of a failed one",
    )
    table1.add_argument(
        "--max-configs",
        type=int,
        default=None,
        metavar="N",
        help="exploration budget per instance; blown budgets render as "
        "BUDGET rows instead of tracebacks",
    )
    table1.add_argument(
        "--explain",
        action="store_true",
        help="shrink and replay-confirm the counterexamples of failed rows",
    )
    table1.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace_event JSON of every discharged obligation",
    )
    table1.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a flat metrics JSON (per-obligation and aggregates)",
    )
    table1.add_argument(
        "--symmetry",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="quotient every exploration and IS universe by the "
        "protocol's declared permutation group (where one exists); "
        "verdicts are unchanged, the enumeration shrinks",
    )
    _add_resilience_flags(table1)
    _add_cache_flags(table1)
    verify = sub.add_parser("verify", help="verify one protocol")
    verify.add_argument("protocol")
    verify.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for obligation discharge (default: serial)",
    )
    verify.add_argument(
        "--fail-fast",
        action="store_true",
        help="skip obligations (transitively) downstream of a failed one",
    )
    verify.add_argument(
        "--max-configs",
        type=int,
        default=None,
        metavar="N",
        help="exploration budget; a blown budget reports BUDGET instead "
        "of a traceback",
    )
    verify.add_argument(
        "--explain",
        action="store_true",
        help="shrink and replay-confirm the counterexamples of failed "
        "IS checks",
    )
    verify.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace_event JSON of every discharged obligation",
    )
    verify.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a flat metrics JSON (per-obligation and aggregates)",
    )
    verify.add_argument(
        "--symmetry",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="quotient the exploration and IS universes by the "
        "protocol's declared permutation group (where one exists)",
    )
    _add_resilience_flags(verify)
    _add_cache_flags(verify)
    explain = sub.add_parser(
        "explain",
        help="diagnose a seeded failing fixture: shrink + replay witnesses",
    )
    explain.add_argument(
        "fixture",
        nargs="?",
        default=None,
        help="fixture name (see --list); omit to list fixtures",
    )
    explain.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for obligation discharge (default: serial)",
    )
    explain.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the failure report as JSON (repro.obs/failure/v1)",
    )
    explain.add_argument(
        "--list",
        action="store_true",
        help="list the available fixtures",
    )
    serve = sub.add_parser(
        "serve",
        help="run the warm verification daemon (HTTP/JSON job queue)",
    )
    serve.add_argument(
        "--host",
        default=None,
        help="bind address (default: $REPRO_SERVE_HOST or 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port; 0 picks a free one, announced on stdout "
        "(default: $REPRO_SERVE_PORT or 7717)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="bounded admission queue; a full queue refuses with 429 + "
        "Retry-After (default: $REPRO_SERVE_QUEUE_DEPTH or 16)",
    )
    serve.add_argument(
        "--state",
        metavar="DIR",
        default=None,
        help="root for persistent state: job journal, per-job checkpoint "
        "journals, and the obligation result cache (default: in-memory)",
    )
    serve.add_argument(
        "--max-configs",
        type=int,
        default=None,
        metavar="N",
        help="operator ceiling on per-job exploration budgets (jobs "
        "asking for more are clamped)",
    )
    serve.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="default worker processes for obligation discharge",
    )
    serve.add_argument(
        "--timeout-per-obligation",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock deadline per obligation attempt for every job",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=None,
        metavar="S",
        help="seconds SIGTERM waits for the in-flight job to salvage "
        "itself before exiting (default: 5)",
    )
    serve.add_argument(
        "--sandbox",
        action="store_true",
        help="execute jobs in a supervised subprocess sandbox (crash "
        "isolation; default: $REPRO_SERVE_SANDBOX or off)",
    )
    serve.add_argument(
        "--sandbox-max-rss-mb",
        type=int,
        default=None,
        metavar="MB",
        help="RLIMIT_AS ceiling for the sandbox worker",
    )
    serve.add_argument(
        "--sandbox-cpu-seconds",
        type=int,
        default=None,
        metavar="S",
        help="RLIMIT_CPU ceiling for the sandbox worker",
    )
    serve.add_argument(
        "--sandbox-recycle-after",
        type=int,
        default=None,
        metavar="N",
        help="replace the sandbox worker after N jobs (default: 64)",
    )
    serve.add_argument(
        "--sandbox-heartbeat-grace",
        type=float,
        default=None,
        metavar="S",
        help="kill a sandbox worker silent for S seconds (default: 20)",
    )
    serve.add_argument(
        "--sandbox-max-respawns",
        type=int,
        default=None,
        metavar="N",
        help="respawn+retry attempts per job before the circuit "
        "breaker decides (default: 2)",
    )
    serve.add_argument(
        "--sandbox-breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help="consecutive crashes of one request that open its "
        "circuit breaker (default: 2)",
    )
    serve.add_argument(
        "--sandbox-fallback",
        action="store_true",
        help="after the ladder is exhausted, run the job in-process "
        "and flag the report (default: typed CRASHED verdict)",
    )
    cache = sub.add_parser(
        "cache",
        help="inspect or garbage-collect the obligation result cache",
    )
    cache.add_argument(
        "action",
        choices=("stats", "gc"),
        help="stats: entry count / bytes / quota; gc: evict "
        "least-recently-used entries until under the quota",
    )
    cache.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="cache directory (default: $REPRO_CACHE)",
    )
    cache.add_argument(
        "--max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size quota in MiB (default: $REPRO_CACHE_MAX_MB)",
    )
    sub.add_parser("list", help="list protocols")
    args = parser.parse_args(argv)
    if args.command in ("table1", "verify"):
        args.resilience_config = _make_resilience(parser, args)
        args.cache_config = _make_cache(parser, args)
    if args.command == "cache":
        return _cmd_cache(parser, args)
    try:
        return {
            "table1": _cmd_table1,
            "verify": _cmd_verify,
            "explain": _cmd_explain,
            "serve": _cmd_serve,
            "list": _cmd_list,
        }[args.command](args)
    except KeyboardInterrupt:
        # Last-resort salvage: the pipelines normally convert Ctrl-C into
        # a partial report themselves; this catches interrupts outside
        # them (argument handling, rendering) without a traceback.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
