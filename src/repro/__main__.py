"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``table1 [--jobs N] [--stats] [--fail-fast]``
    Regenerate the Table 1 analogue (runs all seven verifications).
    ``--jobs`` discharges the IS obligations over N worker processes;
    ``--stats`` adds per-obligation wall-time / enumeration statistics;
    ``--fail-fast`` skips obligations downstream of a failure.
``verify <protocol> [--jobs N] [--fail-fast]``
    Run one protocol's pipeline at its default instance parameters and
    print the report. Protocols: broadcast, pingpong, prodcons, nbuyer,
    changroberts, twophase, paxos.
``list``
    List the available protocols with their Table 1 #IS counts.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args) -> int:
    from .analysis import build_table1, render_obligation_stats, render_table1

    rows = build_table1(jobs=args.jobs, fail_fast=args.fail_fast)
    print(render_table1(rows))
    if args.stats:
        print()
        print(render_obligation_stats(rows))
    return 0 if all(row.ok for row in rows) else 1


def _cmd_verify(args) -> int:
    from .protocols import ALL_PROTOCOLS

    module = ALL_PROTOCOLS.get(args.protocol)
    if module is None:
        print(f"unknown protocol {args.protocol!r}; try: "
              f"{', '.join(sorted(ALL_PROTOCOLS))}", file=sys.stderr)
        return 2
    report = module.verify(jobs=args.jobs, fail_fast=args.fail_fast)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_list(_args) -> int:
    from .protocols import ALL_PROTOCOLS

    counts = {
        "broadcast": 2, "pingpong": 1, "prodcons": 1, "nbuyer": 4,
        "changroberts": 2, "twophase": 4, "paxos": 1,
    }
    for name in sorted(ALL_PROTOCOLS):
        print(f"  {name:<14} (#IS = {counts[name]})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Inductive Sequentialization of Asynchronous Programs "
        "(PLDI 2020) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    table1 = sub.add_parser("table1", help="regenerate the Table 1 analogue")
    table1.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for obligation discharge (default: serial)",
    )
    table1.add_argument(
        "--stats",
        action="store_true",
        help="also print per-obligation wall-time / enumeration statistics",
    )
    table1.add_argument(
        "--fail-fast",
        action="store_true",
        help="skip obligations (transitively) downstream of a failed one",
    )
    verify = sub.add_parser("verify", help="verify one protocol")
    verify.add_argument("protocol")
    verify.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for obligation discharge (default: serial)",
    )
    verify.add_argument(
        "--fail-fast",
        action="store_true",
        help="skip obligations (transitively) downstream of a failed one",
    )
    sub.add_parser("list", help="list protocols")
    args = parser.parse_args(argv)
    return {"table1": _cmd_table1, "verify": _cmd_verify, "list": _cmd_list}[
        args.command
    ](args)


if __name__ == "__main__":
    raise SystemExit(main())
