"""Mini-CIVL language: AST, lowering, fine-grained semantics, summaries.

The case-study implementations :math:`\\mathcal{P}_1` are written in this
embedded language and connected to the atomic-action world in two ways:
``build_finegrained`` gives the instruction-level program, and
``summarize_module`` gives the candidate atomic program
:math:`\\mathcal{P}_2` whose soundness Lipton reduction certifies.
"""

from .ast_nodes import (
    Assert,
    Assign,
    Assume,
    Async,
    BinOp,
    Block,
    C,
    Call,
    Const,
    Expr,
    Foreach,
    Havoc,
    If,
    MapAssign,
    MapGet,
    Receive,
    Send,
    Skip,
    Stmt,
    UnOp,
    V,
    Var,
    While,
)
from .channels import channel_len, channel_receives, channel_send, empty_channel
from .compile import SummaryExplosion, summarize_module, summarize_procedure
from .interp import Module, Procedure, action_name, build_finegrained
from .lower import CJump, IterInit, IterNext, Jump, Prim, lower
from .pretty import pretty_module, pretty_procedure, pretty_stmt

__all__ = [
    "Assert", "Assign", "Assume", "Async", "BinOp", "Block", "C", "Call",
    "Const", "Expr", "Foreach", "Havoc", "If", "MapAssign", "MapGet",
    "Receive", "Send", "Skip", "Stmt", "UnOp", "V", "Var", "While",
    "channel_len", "channel_receives", "channel_send", "empty_channel",
    "SummaryExplosion", "summarize_module", "summarize_procedure",
    "Module", "Procedure", "action_name", "build_finegrained",
    "CJump", "IterInit", "IterNext", "Jump", "Prim", "lower",
    "pretty_module", "pretty_procedure", "pretty_stmt",
]
