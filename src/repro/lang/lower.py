"""Lowering of structured statements to a flat control-flow graph.

Procedure bodies are compiled to a list of instructions addressed by
program counter. Each instruction becomes one fine-grained atomic action of
the low-level program :math:`\\mathcal{P}_1` (see ``repro.lang.interp``);
pending asyncs carry the local store, and the program counter is encoded in
the action name, so a continuation is just a PA to the next instruction.

``Foreach`` loops snapshot their (finite, deterministically ordered)
iterable into a hidden local at loop entry, then step through it with an
index — both hidden locals live in the PA's local store like any other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..core.store import Store
from .ast_nodes import (
    Assert,
    Assign,
    Assume,
    Async,
    Block,
    Expr,
    Foreach,
    Havoc,
    If,
    MapAssign,
    Receive,
    Send,
    Skip,
    Stmt,
    While,
)

__all__ = ["Instr", "Prim", "Jump", "CJump", "IterInit", "IterNext", "lower"]


class Instr:
    """Base class of lowered instructions."""


@dataclass(frozen=True)
class Prim(Instr):
    """A primitive statement executed as one atomic step."""

    stmt: Stmt

    def __repr__(self) -> str:
        return f"Prim({type(self.stmt).__name__})"


@dataclass(frozen=True)
class Jump(Instr):
    """Unconditional jump."""

    target: int


@dataclass(frozen=True)
class CJump(Instr):
    """Conditional jump: to ``then`` if the condition holds, else ``orelse``."""

    cond: Expr
    then: int
    orelse: int


@dataclass(frozen=True)
class IterInit(Instr):
    """Snapshot a ``Foreach`` iterable into hidden locals ``it``/``ix``."""

    it_var: str
    ix_var: str
    iterable: Callable[[Store], Sequence[object]]


@dataclass(frozen=True)
class IterNext(Instr):
    """Advance a ``Foreach``: bind the next element and fall through, or
    jump to ``done`` when exhausted."""

    it_var: str
    ix_var: str
    target: str
    done: int


class _Builder:
    def __init__(self) -> None:
        self.instrs: List[Instr] = []
        self._loop_counter = 0

    def emit(self, instr: Instr) -> int:
        self.instrs.append(instr)
        return len(self.instrs) - 1

    def here(self) -> int:
        return len(self.instrs)

    def patch(self, index: int, instr: Instr) -> None:
        self.instrs[index] = instr

    def fresh_loop_vars(self) -> Tuple[str, str]:
        self._loop_counter += 1
        return f"$it{self._loop_counter}", f"$ix{self._loop_counter}"


def _lower_stmt(builder: _Builder, stmt: Stmt) -> None:
    if isinstance(stmt, Block):
        for inner in stmt.body:
            _lower_stmt(builder, inner)
    elif isinstance(stmt, If):
        placeholder = builder.emit(Jump(-1))
        for inner in stmt.then:
            _lower_stmt(builder, inner)
        if stmt.orelse:
            jump_end = builder.emit(Jump(-1))
            else_start = builder.here()
            for inner in stmt.orelse:
                _lower_stmt(builder, inner)
            end = builder.here()
            builder.patch(placeholder, CJump(stmt.cond, placeholder + 1, else_start))
            builder.patch(jump_end, Jump(end))
        else:
            end = builder.here()
            builder.patch(placeholder, CJump(stmt.cond, placeholder + 1, end))
    elif isinstance(stmt, While):
        top = builder.here()
        placeholder = builder.emit(Jump(-1))
        for inner in stmt.body:
            _lower_stmt(builder, inner)
        builder.emit(Jump(top))
        end = builder.here()
        builder.patch(placeholder, CJump(stmt.cond, placeholder + 1, end))
    elif isinstance(stmt, Foreach):
        it_var, ix_var = builder.fresh_loop_vars()
        builder.emit(IterInit(it_var, ix_var, stmt.iterable))
        top = builder.here()
        placeholder = builder.emit(Jump(-1))
        for inner in stmt.body:
            _lower_stmt(builder, inner)
        builder.emit(Jump(top))
        end = builder.here()
        builder.patch(placeholder, IterNext(it_var, ix_var, stmt.target, end))
    elif isinstance(
        stmt,
        (Skip, Assign, MapAssign, Havoc, Assume, Assert, Send, Receive, Async),
    ):
        builder.emit(Prim(stmt))
    else:
        raise TypeError(f"cannot lower statement {stmt!r}")


def lower(body: Sequence[Stmt]) -> List[Instr]:
    """Lower a statement sequence to a flat instruction list.

    Falling off the end of the list terminates the procedure instance (the
    pending async produces no continuation).
    """
    builder = _Builder()
    for stmt in body:
        _lower_stmt(builder, stmt)
    return builder.instrs


def hidden_locals(instrs: Sequence[Instr]) -> List[str]:
    """Hidden iteration locals introduced by lowering (with initial ``None``
    values these must be part of every PA's local store)."""
    names: List[str] = []
    for instr in instrs:
        if isinstance(instr, IterInit):
            names.extend([instr.it_var, instr.ix_var])
        if isinstance(instr, IterNext):
            names.append(instr.target)
    return list(dict.fromkeys(names))
