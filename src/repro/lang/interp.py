"""Fine-grained semantics: a module of procedures as a low-level program.

:func:`build_finegrained` turns a :class:`Module` into the paper's
:math:`\\mathcal{P}_1`: one gated atomic action *per instruction*, where a
pending async ``proc#pc`` carries the procedure's local store. Executing an
instruction performs its (single, fine-grained) effect and creates a
continuation PA to the next instruction — plus a PA to the callee's entry
for ``async`` calls. Falling off the end of a body terminates the instance.

The entry instruction of the main procedure is named ``Main``, as required
by the program well-formedness condition of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.action import Action, PendingAsync, Transition
from ..core.multiset import Multiset
from ..core.program import MAIN, Program
from ..core.store import Store
from .ast_nodes import (
    Assert,
    Assign,
    Assume,
    Async,
    Havoc,
    MapAssign,
    Receive,
    Send,
    Skip,
    Stmt,
)
from .channels import channel_receives, channel_send
from .lower import CJump, Instr, IterInit, IterNext, Jump, Prim, hidden_locals, lower

__all__ = ["Procedure", "Module", "build_finegrained", "action_name"]


@dataclass
class Procedure:
    """A procedure: parameters, declared locals with initial values, body.

    ``linear_class`` declares CIVL-style linear-permission chaining: all
    procedures sharing a class have *at most one live instance between
    them* at any time (the idiom of a task chain like
    ``Consume(x) -> Consume(x+1)``, where the permission is handed from
    each instance to its successor). The reduction analysis both exploits
    this (excluding impossible pairs from commutation checking) and
    validates it on the explored state space.
    """

    name: str
    params: Tuple[str, ...]
    body: Tuple[Stmt, ...]
    locals: Dict[str, object] = field(default_factory=dict)
    linear_class: Optional[str] = None
    #: True for message handlers that may have several live instances with
    #: identical parameters (e.g. two Chang-Roberts handlers at one node,
    #: one per in-flight message). Disables instance-based exclusion in the
    #: mover analysis for this procedure.
    multi_instance: bool = False

    def __post_init__(self) -> None:
        self.params = tuple(self.params)
        self.body = tuple(self.body)
        self._instrs: Optional[List[Instr]] = None

    @property
    def instrs(self) -> List[Instr]:
        if self._instrs is None:
            self._instrs = lower(self.body)
        return self._instrs

    def local_frame(self, args: Mapping[str, object]) -> Store:
        """The initial local store of an instance: arguments, declared
        locals at their initial values, hidden loop locals at ``None``."""
        missing = [p for p in self.params if p not in args]
        if missing:
            raise ValueError(f"{self.name}: missing arguments {missing}")
        frame = dict(self.locals)
        for name in hidden_locals(self.instrs):
            frame.setdefault(name, None)
        frame.update(args)
        return Store(frame)


@dataclass
class Module:
    """A collection of procedures with shared globals; ``main`` is the
    entry procedure (spawned once with the given arguments)."""

    procedures: Dict[str, Procedure]
    global_vars: Tuple[str, ...]
    main: str = MAIN

    def __post_init__(self) -> None:
        if self.main not in self.procedures:
            raise ValueError(f"main procedure {self.main!r} not defined")
        self.global_vars = tuple(self.global_vars)

    def procedure(self, name: str) -> Procedure:
        return self.procedures[name]

    def initial_main_locals(self, **args: object) -> Store:
        return self.procedures[self.main].local_frame(args)


def action_name(module: Module, proc: str, pc: int) -> str:
    """Action name of instruction ``pc`` of ``proc`` (main entry = Main)."""
    if proc == module.main and pc == 0:
        return MAIN
    return f"{proc}#{pc}"


def _continuation(
    module: Module, proc: Procedure, pc: int, locals_: Store
) -> List[PendingAsync]:
    """PA to the next instruction, or nothing at the end of the body."""
    if pc >= len(proc.instrs):
        return []
    return [PendingAsync(action_name(module, proc.name, pc), locals_)]


def _build_instruction_action(
    module: Module, proc: Procedure, pc: int
) -> Action:
    instr = proc.instrs[pc]
    global_vars = module.global_vars
    name = action_name(module, proc.name, pc)

    def globals_of(state: Store) -> Store:
        return state.restrict(global_vars)

    def cont(state: Store, next_pc: int, extra: Sequence[PendingAsync] = ()):
        locals_ = state.without(global_vars)
        created = _continuation(module, proc, next_pc, locals_)
        created.extend(extra)
        return Transition(globals_of(state), Multiset(created))

    gate = lambda _s: True  # noqa: E731 - overridden for Assert below

    if isinstance(instr, Prim):
        stmt = instr.stmt

        if isinstance(stmt, Skip):
            def transitions(state: Store) -> Iterator[Transition]:
                yield cont(state, pc + 1)

        elif isinstance(stmt, Assign):
            def transitions(state: Store) -> Iterator[Transition]:
                yield cont(state.set(stmt.target, stmt.expr.eval(state)), pc + 1)

        elif isinstance(stmt, MapAssign):
            def transitions(state: Store) -> Iterator[Transition]:
                mapping = state[stmt.target]
                updated = mapping.set(stmt.key.eval(state), stmt.expr.eval(state))
                yield cont(state.set(stmt.target, updated), pc + 1)

        elif isinstance(stmt, Havoc):
            def transitions(state: Store) -> Iterator[Transition]:
                for value in stmt.choices(state):
                    yield cont(state.set(stmt.target, value), pc + 1)

        elif isinstance(stmt, Assume):
            def transitions(state: Store) -> Iterator[Transition]:
                if stmt.cond.eval(state):
                    yield cont(state, pc + 1)

        elif isinstance(stmt, Assert):
            gate = lambda state: bool(stmt.cond.eval(state))  # noqa: E731

            def transitions(state: Store) -> Iterator[Transition]:
                yield cont(state, pc + 1)

        elif isinstance(stmt, Send):
            def transitions(state: Store) -> Iterator[Transition]:
                channels = state[stmt.channel]
                key = stmt.key.eval(state)
                updated = channels.set(
                    key,
                    channel_send(channels[key], stmt.message.eval(state), stmt.kind),
                )
                yield cont(state.set(stmt.channel, updated), pc + 1)

        elif isinstance(stmt, Receive):
            def transitions(state: Store) -> Iterator[Transition]:
                channels = state[stmt.channel]
                key = stmt.key.eval(state)
                for message, rest in channel_receives(channels[key], stmt.kind):
                    updated = state.set(stmt.channel, channels.set(key, rest))
                    yield cont(updated.set(stmt.target, message), pc + 1)

        elif isinstance(stmt, Async):
            def transitions(state: Store) -> Iterator[Transition]:
                callee = module.procedure(stmt.proc)
                args = {k: e.eval(state) for k, e in stmt.args}
                spawned = PendingAsync(
                    action_name(module, callee.name, 0), callee.local_frame(args)
                )
                yield cont(state, pc + 1, extra=[spawned])

        else:  # pragma: no cover - lowering only produces the above
            raise TypeError(f"unsupported primitive {stmt!r}")

    elif isinstance(instr, Jump):
        def transitions(state: Store) -> Iterator[Transition]:
            yield cont(state, instr.target)

    elif isinstance(instr, CJump):
        def transitions(state: Store) -> Iterator[Transition]:
            target = instr.then if instr.cond.eval(state) else instr.orelse
            yield cont(state, target)

    elif isinstance(instr, IterInit):
        def transitions(state: Store) -> Iterator[Transition]:
            snapshot = tuple(instr.iterable(state))
            updated = state.set(instr.it_var, snapshot).set(instr.ix_var, 0)
            yield cont(updated, pc + 1)

    elif isinstance(instr, IterNext):
        def transitions(state: Store) -> Iterator[Transition]:
            snapshot = state[instr.it_var]
            index = state[instr.ix_var]
            if index < len(snapshot):
                updated = state.set(instr.target, snapshot[index]).set(
                    instr.ix_var, index + 1
                )
                yield cont(updated, pc + 1)
            else:
                yield cont(state, instr.done)

    else:  # pragma: no cover
        raise TypeError(f"unsupported instruction {instr!r}")

    return Action(name, gate, transitions, params=proc.params)


def build_finegrained(module: Module) -> Program:
    """The low-level program :math:`\\mathcal{P}_1` of a module: one action
    per instruction of every procedure."""
    actions: Dict[str, Action] = {}
    for proc in module.procedures.values():
        for pc in range(len(proc.instrs)):
            name = action_name(module, proc.name, pc)
            actions[name] = _build_instruction_action(module, proc, pc)
        if not proc.instrs:
            raise ValueError(f"procedure {proc.name!r} has an empty body")
    return Program(actions, global_vars=module.global_vars)
