"""Atomic summarization: compile whole procedures into atomic actions.

This is the reduction endpoint of CIVL's layered refinement
:math:`\\mathcal{P}_1 \\preccurlyeq \\mathcal{P}_2` (Section 5.2, "Atomic
actions"): every procedure is summarized into a single gated atomic action
whose transitions are the *complete big-step runs* of the body — receives
enumerate all deliverable messages, havocs enumerate their domains, blocked
branches (empty receive, false assume) contribute nothing, and any run
reaching a failing assert excludes the initial store from the gate.

Asynchronous calls inside the body become pending asyncs of the summary
(the callee's future effect is *not* inlined — that is exactly what IS
later eliminates). When the module declares the ghost ``pendingAsyncs``
global, the summary maintains it: the executing PA is removed and the
spawned PAs are added, matching the hand-written actions of Figure 4(b).

Whether summarization is *sound* is the business of Lipton reduction
(``repro.reduction.lipton``): every control path must follow the
right-movers / one non-mover / left-movers pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..core.action import Action, PendingAsync, Transition
from ..core.multiset import Multiset
from ..core.program import MAIN, Program
from ..core.store import Store
from ..protocols.common import GHOST, ghost_step
from .ast_nodes import (
    Assert,
    Assign,
    Assume,
    Async,
    Havoc,
    MapAssign,
    Receive,
    Send,
    Skip,
)
from .channels import channel_receives, channel_send
from .interp import Module, Procedure
from .lower import CJump, IterInit, IterNext, Jump, Prim

__all__ = ["SummaryExplosion", "summarize_procedure", "summarize_module"]


class SummaryExplosion(RuntimeError):
    """A big-step run exceeded the step budget (diverging loop?)."""


@dataclass
class _Run:
    """One big-step execution prefix: combined store + pc + spawned PAs."""

    env: Store
    pc: int
    spawned: Tuple[PendingAsync, ...]


def _proc_action_name(module: Module, proc: Procedure) -> str:
    return MAIN if proc.name == module.main else proc.name


def _spawn(module: Module, stmt: Async, env: Store) -> PendingAsync:
    callee = module.procedure(stmt.proc)
    args = Store({k: e.eval(env) for k, e in stmt.args})
    return PendingAsync(_proc_action_name(module, callee), args)


def _big_step(
    module: Module,
    proc: Procedure,
    state: Store,
    max_steps: int = 100_000,
) -> Tuple[List[_Run], bool]:
    """All complete runs of ``proc`` from the combined store ``state``,
    plus a flag indicating whether some run fails an assertion.

    ``state`` must contain the globals and the parameter values; declared
    and hidden locals are initialized here.
    """
    params = {p: state[p] for p in proc.params}
    frame = proc.local_frame(params)
    initial = _Run(state.merge(frame), 0, ())
    completed: List[_Run] = []
    failed = False
    stack = [initial]
    budget = max_steps

    while stack:
        run = stack.pop()
        budget -= 1
        if budget < 0:
            raise SummaryExplosion(
                f"summarization of {proc.name} exceeded {max_steps} steps"
            )
        if run.pc >= len(proc.instrs):
            completed.append(run)
            continue
        instr = proc.instrs[run.pc]
        env, pc = run.env, run.pc

        if isinstance(instr, Prim):
            stmt = instr.stmt
            if isinstance(stmt, Skip):
                stack.append(_Run(env, pc + 1, run.spawned))
            elif isinstance(stmt, Assign):
                stack.append(
                    _Run(env.set(stmt.target, stmt.expr.eval(env)), pc + 1, run.spawned)
                )
            elif isinstance(stmt, MapAssign):
                mapping = env[stmt.target].set(
                    stmt.key.eval(env), stmt.expr.eval(env)
                )
                stack.append(_Run(env.set(stmt.target, mapping), pc + 1, run.spawned))
            elif isinstance(stmt, Havoc):
                for value in stmt.choices(env):
                    stack.append(
                        _Run(env.set(stmt.target, value), pc + 1, run.spawned)
                    )
            elif isinstance(stmt, Assume):
                if stmt.cond.eval(env):
                    stack.append(_Run(env, pc + 1, run.spawned))
            elif isinstance(stmt, Assert):
                if stmt.cond.eval(env):
                    stack.append(_Run(env, pc + 1, run.spawned))
                else:
                    failed = True
            elif isinstance(stmt, Send):
                channels = env[stmt.channel]
                key = stmt.key.eval(env)
                channels = channels.set(
                    key, channel_send(channels[key], stmt.message.eval(env), stmt.kind)
                )
                stack.append(
                    _Run(env.set(stmt.channel, channels), pc + 1, run.spawned)
                )
            elif isinstance(stmt, Receive):
                channels = env[stmt.channel]
                key = stmt.key.eval(env)
                for message, rest in channel_receives(channels[key], stmt.kind):
                    updated = env.set(stmt.channel, channels.set(key, rest))
                    stack.append(
                        _Run(updated.set(stmt.target, message), pc + 1, run.spawned)
                    )
            elif isinstance(stmt, Async):
                spawned = run.spawned + (_spawn(module, stmt, env),)
                stack.append(_Run(env, pc + 1, spawned))
            else:  # pragma: no cover
                raise TypeError(f"unsupported primitive {stmt!r}")
        elif isinstance(instr, Jump):
            stack.append(_Run(env, instr.target, run.spawned))
        elif isinstance(instr, CJump):
            target = instr.then if instr.cond.eval(env) else instr.orelse
            stack.append(_Run(env, target, run.spawned))
        elif isinstance(instr, IterInit):
            snapshot = tuple(instr.iterable(env))
            updated = env.set(instr.it_var, snapshot).set(instr.ix_var, 0)
            stack.append(_Run(updated, pc + 1, run.spawned))
        elif isinstance(instr, IterNext):
            snapshot = env[instr.it_var]
            index = env[instr.ix_var]
            if index < len(snapshot):
                updated = env.set(instr.target, snapshot[index]).set(
                    instr.ix_var, index + 1
                )
                stack.append(_Run(updated, pc + 1, run.spawned))
            else:
                stack.append(_Run(env, instr.done, run.spawned))
        else:  # pragma: no cover
            raise TypeError(f"unsupported instruction {instr!r}")

    return completed, failed


def summarize_procedure(module: Module, proc: Procedure) -> Action:
    """The atomic action summarizing all complete runs of ``proc``."""
    name = _proc_action_name(module, proc)
    global_vars = module.global_vars
    track_ghost = GHOST in global_vars

    def self_pa(state: Store) -> PendingAsync:
        return PendingAsync(name, state.restrict(proc.params))

    def gate(state: Store) -> bool:
        _, failed = _big_step(module, proc, state)
        return not failed

    def transitions(state: Store) -> Iterator[Transition]:
        completed, _ = _big_step(module, proc, state)
        seen = set()
        for run in completed:
            created = Multiset(run.spawned)
            new_global = run.env.restrict(global_vars)
            if track_ghost:
                new_global = new_global.set(
                    GHOST, ghost_step(state, self_pa(state), run.spawned)
                )
            tr = Transition(new_global, created)
            if tr not in seen:
                seen.add(tr)
                yield tr

    return Action(name, gate, transitions, params=proc.params)


def summarize_module(module: Module) -> Program:
    """The atomic-action program :math:`\\mathcal{P}_2`: every procedure
    summarized into one action."""
    actions: Dict[str, Action] = {}
    for proc in module.procedures.values():
        action = summarize_procedure(module, proc)
        actions[action.name] = action
    return Program(actions, global_vars=module.global_vars)
