"""Channel value operations: bags and FIFO queues.

Bag channels (the default throughout the paper) are
:class:`~repro.core.multiset.Multiset` values — the network may reorder and
delay messages arbitrarily. FIFO channels (used by Producer-Consumer) are
tuples delivering in order.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..core.multiset import EMPTY

__all__ = [
    "empty_channel",
    "channel_send",
    "channel_receives",
    "channel_len",
]


def empty_channel(kind: str):
    """The empty channel of the given kind (``"bag"`` or ``"fifo"``)."""
    if kind == "bag":
        return EMPTY
    if kind == "fifo":
        return ()
    raise ValueError(f"unknown channel kind {kind!r}")


def channel_send(channel, message, kind: str):
    """Append a message."""
    if kind == "bag":
        return channel.add(message)
    if kind == "fifo":
        return channel + (message,)
    raise ValueError(f"unknown channel kind {kind!r}")


def channel_receives(channel, kind: str) -> Iterator[Tuple[object, object]]:
    """All possible single-message deliveries: ``(message, rest)`` pairs.

    Bags deliver any present message; FIFOs only the head. An empty channel
    yields nothing (the receive blocks).
    """
    if kind == "bag":
        for message in channel.support():
            yield message, channel.remove(message)
    elif kind == "fifo":
        if channel:
            yield channel[0], channel[1:]
    else:
        raise ValueError(f"unknown channel kind {kind!r}")


def channel_len(channel) -> int:
    """Number of messages currently in the channel."""
    return len(channel)
