"""Expression and statement AST of the mini-CIVL language.

The case-study implementations :math:`\\mathcal{P}_1` (Section 5.2,
"Implementation") are written in this small embedded language: procedures
with parameters and locals, assignments, nondeterministic choice (havoc),
assume/assert, bag/FIFO channel send and receive, asynchronous procedure
calls, conditionals, and bounded loops.

Expressions form a proper AST with an evaluator over stores; Python
operator overloading gives a readable surface syntax::

    V("x") + C(1) > MapGet(V("decision"), V("i"))

Statements are lowered to a flat control-flow graph by ``repro.lang.lower``
and given fine-grained semantics by ``repro.lang.interp``.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from ..core.store import Store

__all__ = [
    "Expr",
    "Var",
    "Const",
    "MapGet",
    "BinOp",
    "UnOp",
    "Call",
    "V",
    "C",
    "Stmt",
    "Skip",
    "Assign",
    "MapAssign",
    "Havoc",
    "Assume",
    "Assert",
    "Send",
    "Receive",
    "Async",
    "If",
    "While",
    "Foreach",
    "Block",
]


# --------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------- #


class Expr:
    """Base class of expressions; supports operator overloading."""

    def eval(self, env: Store):
        raise NotImplementedError

    # -- arithmetic / comparison sugar ---------------------------------- #
    def __add__(self, other):  return BinOp("+", self, _expr(other))
    def __sub__(self, other):  return BinOp("-", self, _expr(other))
    def __mul__(self, other):  return BinOp("*", self, _expr(other))
    def __mod__(self, other):  return BinOp("%", self, _expr(other))
    def __eq__(self, other):   return BinOp("==", self, _expr(other))  # type: ignore[override]
    def __ne__(self, other):   return BinOp("!=", self, _expr(other))  # type: ignore[override]
    def __lt__(self, other):   return BinOp("<", self, _expr(other))
    def __le__(self, other):   return BinOp("<=", self, _expr(other))
    def __gt__(self, other):   return BinOp(">", self, _expr(other))
    def __ge__(self, other):   return BinOp(">=", self, _expr(other))
    def __and__(self, other):  return BinOp("and", self, _expr(other))
    def __or__(self, other):   return BinOp("or", self, _expr(other))
    def __invert__(self):      return UnOp("not", self)
    def __hash__(self):        return id(self)


def _expr(value) -> "Expr":
    return value if isinstance(value, Expr) else Const(value)


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A variable reference (local or global)."""

    name: str

    def eval(self, env: Store):
        return env[self.name]

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """A literal constant."""

    value: object

    def eval(self, env: Store):
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, eq=False)
class MapGet(Expr):
    """Map indexing ``map[key]`` over a FrozenDict-valued expression."""

    map: Expr
    key: Expr

    def eval(self, env: Store):
        return self.map.eval(env)[self.key.eval(env)]

    def __repr__(self) -> str:
        return f"{self.map!r}[{self.key!r}]"


_BIN_OPS: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": operator.mod,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    """A binary operation from the fixed operator table."""

    op: str
    left: Expr
    right: Expr

    def eval(self, env: Store):
        return _BIN_OPS[self.op](self.left.eval(env), self.right.eval(env))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


_UN_OPS: Dict[str, Callable] = {
    "not": operator.not_,
    "-": operator.neg,
    "len": len,
    "max": max,
    "min": min,
}


@dataclass(frozen=True, eq=False)
class UnOp(Expr):
    """A unary operation (``not``, negation, ``len``, ``max``, ``min``)."""

    op: str
    operand: Expr

    def eval(self, env: Store):
        return _UN_OPS[self.op](self.operand.eval(env))

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """Escape hatch: apply a pure Python function to evaluated arguments.

    Used for domain operations that the small operator table does not
    cover (e.g. quorum tests); the function must be pure and total.
    """

    name: str
    fn: Callable
    args: Tuple[Expr, ...]

    def eval(self, env: Store):
        return self.fn(*(a.eval(env) for a in self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


def V(name: str) -> Var:
    """Shorthand variable constructor."""
    return Var(name)


def C(value) -> Const:
    """Shorthand constant constructor."""
    return Const(value)


# --------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------- #


class Stmt:
    """Base class of statements."""


@dataclass(frozen=True)
class Skip(Stmt):
    """No-op."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``target := expr`` where ``target`` is a local or global variable."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class MapAssign(Stmt):
    """``target[key] := expr`` for a map-valued global."""

    target: str
    key: Expr
    expr: Expr


@dataclass(frozen=True)
class Havoc(Stmt):
    """Nondeterministically assign ``target`` a value from ``choices``.

    ``choices`` is a Python callable from the current store to an iterable
    of candidate values (the domain may depend on the state).
    """

    target: str
    choices: Callable[[Store], Sequence[object]]


@dataclass(frozen=True)
class Assume(Stmt):
    """Block unless the condition holds."""

    cond: Expr


@dataclass(frozen=True)
class Assert(Stmt):
    """Fail (gate violation) unless the condition holds."""

    cond: Expr


@dataclass(frozen=True)
class Send(Stmt):
    """``send msg channel[key]``: append a message to a channel.

    ``channel`` names a map-valued global of per-key channels; the channel
    kind (``"bag"`` or ``"fifo"``) determines append semantics.
    """

    channel: str
    key: Expr
    message: Expr
    kind: str = "bag"


@dataclass(frozen=True)
class Receive(Stmt):
    """``target := receive channel[key]``: blocking receive of one message.

    Bag channels deliver any present message (nondeterministic); FIFO
    channels deliver the head. Blocks while the channel is empty.
    """

    target: str
    channel: str
    key: Expr
    kind: str = "bag"


@dataclass(frozen=True)
class Async(Stmt):
    """``async proc(args)``: spawn an asynchronous procedure instance."""

    proc: str
    args: Tuple[Tuple[str, Expr], ...] = ()

    @staticmethod
    def of(proc: str, **args: Expr) -> "Async":
        return Async(proc, tuple(sorted((k, _expr(v)) for k, v in args.items())))


@dataclass(frozen=True)
class If(Stmt):
    """Conditional with optional else branch."""

    cond: Expr
    then: Tuple[Stmt, ...]
    orelse: Tuple[Stmt, ...] = ()

    @staticmethod
    def of(cond: Expr, then: Sequence[Stmt], orelse: Sequence[Stmt] = ()) -> "If":
        return If(cond, tuple(then), tuple(orelse))


@dataclass(frozen=True)
class While(Stmt):
    """Loop while the condition holds (must terminate on finite instances)."""

    cond: Expr
    body: Tuple[Stmt, ...]

    @staticmethod
    def of(cond: Expr, body: Sequence[Stmt]) -> "While":
        return While(cond, tuple(body))


@dataclass(frozen=True)
class Foreach(Stmt):
    """``for target in iterable(state): body`` over a state-dependent,
    finite, *deterministically ordered* iterable."""

    target: str
    iterable: Callable[[Store], Sequence[object]]
    body: Tuple[Stmt, ...]

    @staticmethod
    def of(
        target: str,
        iterable: Callable[[Store], Sequence[object]],
        body: Sequence[Stmt],
    ) -> "Foreach":
        return Foreach(target, iterable, tuple(body))


@dataclass(frozen=True)
class Block(Stmt):
    """A sequence of statements (grouping helper)."""

    body: Tuple[Stmt, ...]

    @staticmethod
    def of(*body: Stmt) -> "Block":
        return Block(tuple(body))
