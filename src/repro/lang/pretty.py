"""Pretty-printer: render mini-CIVL modules as paper-style listings.

Produces the concrete syntax used in Figure 1-① of the paper (``proc``,
``async``, ``send``/``receive``, ``for``/``if``), so examples and
documentation can show the programs under verification as readable source
rather than ASTs.

Also renders the *semantic* objects — stores, multisets, map-valued
globals, transitions — in a compact notation
(``CH = {1: ⟅11⟆, 2: ⟅⟆}``), used by the counterexample reports of
``repro.diagnose.render`` where raw ``repr`` output is unreadable for
anything bigger than ping-pong.
"""

from __future__ import annotations

from typing import List

from ..core.action import PendingAsync, Transition
from ..core.mapping import FrozenDict
from ..core.multiset import Multiset
from ..core.store import Store

from .ast_nodes import (
    Assert,
    Assign,
    Assume,
    Async,
    Block,
    Foreach,
    Havoc,
    If,
    MapAssign,
    Receive,
    Send,
    Skip,
    Stmt,
    While,
)
from .interp import Module, Procedure

__all__ = [
    "pretty_stmt",
    "pretty_procedure",
    "pretty_module",
    "pretty_value",
    "pretty_store",
    "pretty_transition",
]

_INDENT = "    "


def _line(depth: int, text: str) -> str:
    return _INDENT * depth + text


def _stmt_lines(stmt: Stmt, depth: int) -> List[str]:
    if isinstance(stmt, Skip):
        return [_line(depth, "skip")]
    if isinstance(stmt, Assign):
        return [_line(depth, f"{stmt.target} := {stmt.expr!r}")]
    if isinstance(stmt, MapAssign):
        return [_line(depth, f"{stmt.target}[{stmt.key!r}] := {stmt.expr!r}")]
    if isinstance(stmt, Havoc):
        return [_line(depth, f"havoc {stmt.target}")]
    if isinstance(stmt, Assume):
        return [_line(depth, f"assume {stmt.cond!r}")]
    if isinstance(stmt, Assert):
        return [_line(depth, f"assert {stmt.cond!r}")]
    if isinstance(stmt, Send):
        kind = "" if stmt.kind == "bag" else f" [{stmt.kind}]"
        return [
            _line(depth, f"send {stmt.message!r} {stmt.channel}[{stmt.key!r}]{kind}")
        ]
    if isinstance(stmt, Receive):
        kind = "" if stmt.kind == "bag" else f" [{stmt.kind}]"
        return [
            _line(
                depth,
                f"{stmt.target} := receive {stmt.channel}[{stmt.key!r}]{kind}",
            )
        ]
    if isinstance(stmt, Async):
        args = ", ".join(f"{k}={e!r}" for k, e in stmt.args)
        return [_line(depth, f"async {stmt.proc}({args})")]
    if isinstance(stmt, If):
        lines = [_line(depth, f"if {stmt.cond!r}:")]
        for inner in stmt.then:
            lines.extend(_stmt_lines(inner, depth + 1))
        if stmt.orelse:
            lines.append(_line(depth, "else:"))
            for inner in stmt.orelse:
                lines.extend(_stmt_lines(inner, depth + 1))
        return lines
    if isinstance(stmt, While):
        lines = [_line(depth, f"while {stmt.cond!r}:")]
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, depth + 1))
        return lines
    if isinstance(stmt, Foreach):
        lines = [_line(depth, f"for {stmt.target} in <domain>:")]
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, depth + 1))
        return lines
    if isinstance(stmt, Block):
        lines: List[str] = []
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, depth))
        return lines
    raise TypeError(f"cannot pretty-print {stmt!r}")


def pretty_stmt(stmt: Stmt, depth: int = 0) -> str:
    """Render one statement (tree) as indented text."""
    return "\n".join(_stmt_lines(stmt, depth))


def pretty_procedure(proc: Procedure) -> str:
    """Render a procedure as a ``proc name(params):`` block."""
    params = ", ".join(proc.params)
    suffix = f"  // linear class: {proc.linear_class}" if proc.linear_class else ""
    lines = [f"proc {proc.name}({params}):{suffix}"]
    for stmt in proc.body:
        lines.extend(_stmt_lines(stmt, 1))
    return "\n".join(lines)


def pretty_value(value: object) -> str:
    """Render a semantic value compactly: multisets as ``⟅a, b*2⟆``, maps
    as ``{k: v}``, stores as ``(x=1, y=2)``, PAs by their call syntax."""
    if isinstance(value, Multiset):
        parts = []
        for element, count in sorted(value.counts(), key=repr):
            rendered = pretty_value(element)
            parts.append(rendered if count == 1 else f"{rendered}*{count}")
        return "⟅" + ", ".join(parts) + "⟆"
    if isinstance(value, FrozenDict):
        inner = ", ".join(
            f"{k!r}: {pretty_value(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return "{" + inner + "}"
    if isinstance(value, Store):
        inner = ", ".join(
            f"{k}={pretty_value(v)}" for k, v in sorted(value.items())
        )
        return f"({inner})"
    if isinstance(value, PendingAsync):
        return repr(value)
    if isinstance(value, Transition):
        return pretty_transition(value)
    if isinstance(value, tuple):
        return "(" + ", ".join(pretty_value(v) for v in value) + ")"
    if isinstance(value, float) and value in (float("inf"), float("-inf")):
        return "∞" if value > 0 else "-∞"
    return repr(value)


def pretty_store(store: Store, indent: int = 0) -> str:
    """Render a store as one ``var = value`` line per variable (sorted),
    the layout the counterexample reports use for witness states."""
    pad = " " * indent
    if len(store) == 0:
        return f"{pad}(empty store)"
    return "\n".join(
        f"{pad}{var} = {pretty_value(value)}"
        for var, value in sorted(store.items())
    )


def pretty_transition(tr: Transition) -> str:
    """Render a transition as ``-> (globals) +⟅created PAs⟆``."""
    text = f"-> {pretty_value(tr.new_global)}"
    if tr.created:
        text += f" +{pretty_value(tr.created)}"
    return text


def pretty_module(module: Module) -> str:
    """Render a whole module, main procedure first."""
    ordered = [module.procedures[module.main]] + [
        proc for name, proc in module.procedures.items() if name != module.main
    ]
    header = f"// globals: {', '.join(module.global_vars)}"
    return "\n\n".join([header] + [pretty_procedure(proc) for proc in ordered])
