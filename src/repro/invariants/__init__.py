"""Baseline flat inductive invariants (the methodology IS is compared to)."""

from .inductive import ConfigView, InvariantCheck, check_inductive_invariant
from .library import (
    broadcast_invariant,
    broadcast_invariant_weakened,
    paxos_easy_invariant,
    paxos_full_invariant,
    paxos_invariants,
)

__all__ = [
    "ConfigView",
    "InvariantCheck",
    "check_inductive_invariant",
    "broadcast_invariant",
    "broadcast_invariant_weakened",
    "paxos_easy_invariant",
    "paxos_full_invariant",
    "paxos_invariants",
]
