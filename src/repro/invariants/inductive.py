"""Classical inductive-invariant checking — the baseline IS is compared to.

Section 5.2 ("Invariant complexity") contrasts IS against the standard
methodology of flat, "asynchrony-aware" inductive invariants over the
original asynchronous program (Ivy [40], IronFleet [22], Verdi [47], ...).
This module implements that baseline for our atomic-action programs:

* **initiation** — every initial configuration satisfies the invariant;
* **consecution** — from every candidate configuration satisfying the
  invariant, every successor satisfies it too (the successor is computed by
  the real semantics, so escapes are genuine counterexamples-to-induction);
* **safety** — the invariant implies the spec on terminated configurations.

Formulas read the global store by variable name and the pending-async
multiset under the name ``Omega`` — matching how invariant (2) of the paper
speaks about :math:`\\Omega`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from ..core.program import Program
from ..core.semantics import Config, Failure, steps_from
from ..logic.formulas import Formula

__all__ = ["ConfigView", "InvariantCheck", "check_inductive_invariant"]


class ConfigView:
    """Environment adapter exposing a configuration to formulas: global
    variables by name, plus ``Omega`` for the pending-async multiset."""

    __slots__ = ("config",)

    def __init__(self, config: Config):
        self.config = config

    def __getitem__(self, name: str):
        if name == "Omega":
            return self.config.pending
        return self.config.glob[name]

    def get(self, name: str, default=None):
        try:
            return self[name]
        except KeyError:
            return default


@dataclass
class InvariantCheck:
    """Result of the three-part inductive-invariant check."""

    init_ok: bool = True
    inductive_ok: bool = True
    safe_ok: bool = True
    checked_configs: int = 0
    checked_steps: int = 0
    counterexamples: List[Tuple[str, object]] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return self.init_ok and self.inductive_ok and self.safe_ok

    def _note(self, kind: str, witness, limit: int = 5) -> None:
        if len(self.counterexamples) < limit:
            self.counterexamples.append((kind, witness))

    def __repr__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        parts = []
        if not self.init_ok:
            parts.append("init")
        if not self.inductive_ok:
            parts.append("consecution")
        if not self.safe_ok:
            parts.append("safety")
        broken = f" broken={parts}" if parts else ""
        return (
            f"InvariantCheck({status}, {self.checked_configs} configs, "
            f"{self.checked_steps} steps{broken})"
        )


def check_inductive_invariant(
    program: Program,
    invariant: Formula,
    initials: Iterable[Config],
    candidates: Iterable[Config],
    spec: Optional[Callable[[Config], bool]] = None,
) -> InvariantCheck:
    """Check initiation, consecution, and safety of ``invariant``.

    ``candidates`` is the finite configuration space the consecution check
    quantifies over (typically the reachable set, optionally extended with
    perturbed configurations); successors are computed by the semantics and
    checked against the invariant wherever they land.
    """
    result = InvariantCheck()

    for config in initials:
        result.checked_configs += 1
        if not invariant.holds(ConfigView(config)):
            result.init_ok = False
            result._note("initiation", config)

    for config in candidates:
        if not invariant.holds(ConfigView(config)):
            continue  # outside the invariant: consecution says nothing
        result.checked_configs += 1
        if spec is not None and config.terminated and not spec(config):
            result.safe_ok = False
            result._note("safety", config)
        for step in steps_from(program, config):
            result.checked_steps += 1
            if isinstance(step.target, Failure):
                result.safe_ok = False
                result._note("failure", (config, step))
                continue
            if not invariant.holds(ConfigView(step.target)):
                result.inductive_ok = False
                result._note("consecution", (config, step))
    return result
