"""The baseline invariants: the paper's invariant (2) and Ivy-style Paxos.

Two reference artifacts for the Section 5.2 invariant-complexity
comparison:

* :func:`broadcast_invariant` — the flat inductive invariant (2) of
  Section 2.1 for the broadcast consensus protocol, transcribed verbatim:
  a three-way disjunction over the protocol phase with existentially
  quantified "done" sets. Its conjunct/disjunct structure is exactly what
  IS lets the prover avoid.
* :func:`paxos_invariants` — analogues of the Ivy invariants of
  "Paxos made EPR" [39] over our abstract Paxos state, split into the
  "easy" conjuncts (quorum before decision, vote implies proposal, ...) and
  the "hard" ones involving the ``choosable`` quantifier alternation
  (formulas (8)-(12) in [39]) that IS renders unnecessary.

Both come with deliberately weakened variants whose consecution check
fails, demonstrating that the hard conjuncts are load-bearing.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

from ..core.action import PendingAsync
from ..core.multiset import Multiset
from ..core.store import Store
from ..logic.formulas import And, Atom, Exists, Formula, Or

__all__ = [
    "broadcast_invariant",
    "broadcast_invariant_weakened",
    "paxos_invariants",
    "paxos_easy_invariant",
    "paxos_full_invariant",
]


# --------------------------------------------------------------------- #
# Invariant (2) for broadcast consensus
# --------------------------------------------------------------------- #


def _nodes(env) -> range:
    return range(1, len(env["value"]) + 1)


def _subsets(env):
    nodes = list(_nodes(env))
    for size in range(len(nodes) + 1):
        yield from (frozenset(c) for c in combinations(nodes, size))


def _broadcast_pa(i: int) -> PendingAsync:
    return PendingAsync("Broadcast", Store({"i": i}))


def _collect_pa(i: int) -> PendingAsync:
    return PendingAsync("Collect", Store({"i": i}))


def broadcast_invariant(include_middle: bool = True) -> Formula:
    """Invariant (2) of Section 2.1, transcribed disjunct by disjunct.

    ``include_middle=False`` drops the second disjunct (the states where
    only some Broadcasts have executed), producing the weakened variant
    whose consecution check fails.
    """

    initial = And(
        (
            Atom(
                "Ω = {Main}",
                lambda e: e["Omega"] == Multiset([PendingAsync("Main", Store())]),
            ),
            Atom(
                "∀i. CH[i] = ∅",
                lambda e: all(len(e["CH"][i]) == 0 for i in _nodes(e)),
            ),
        )
    )

    def middle_channels(e) -> bool:
        expected = Multiset(e["value"][j] for j in e["D"])
        return all(e["CH"][i] == expected for i in _nodes(e))

    def middle_pending(e) -> bool:
        expected = Multiset(
            [_broadcast_pa(i) for i in _nodes(e) if i not in e["D"]]
            + [_collect_pa(i) for i in _nodes(e)]
        )
        return e["Omega"] == expected

    middle = Exists(
        "D",
        _subsets,
        And(
            (
                Atom("∀i. CH[i] = {value[j] | j ∈ D}", middle_channels),
                Atom("Ω = Broadcasts∉D ⊎ Collects", middle_pending),
            )
        ),
    )

    def final_channels(e) -> bool:
        everyone = Multiset(e["value"][j] for j in _nodes(e))
        return all(e["CH"][i] == everyone for i in _nodes(e) if i not in e["D"])

    def final_decisions(e) -> bool:
        top = max(e["value"][j] for j in _nodes(e))
        return all(e["decision"][i] == top for i in e["D"])

    def final_pending(e) -> bool:
        expected = Multiset(_collect_pa(i) for i in _nodes(e) if i not in e["D"])
        return e["Omega"] == expected

    def final_drained(e) -> bool:
        return all(len(e["CH"][i]) == 0 for i in e["D"])

    final = Exists(
        "D",
        _subsets,
        And(
            (
                Atom("∀i∉D. CH[i] = {value[j] | j ∈ [1,n]}", final_channels),
                Atom("∀i∈D. decision[i] = max value", final_decisions),
                Atom("Ω = {Collect(i) | i ∉ D}", final_pending),
                Atom("∀i∈D. CH[i] = ∅", final_drained),
            )
        ),
    )

    disjuncts = [initial, middle, final] if include_middle else [initial, final]
    return Or(tuple(disjuncts))


def broadcast_invariant_weakened() -> Formula:
    """The variant missing the intermediate disjunct — not inductive."""
    return broadcast_invariant(include_middle=False)


# --------------------------------------------------------------------- #
# Ivy-style Paxos invariants (after "Paxos made EPR" [39])
# --------------------------------------------------------------------- #


def _rounds(env) -> range:
    return range(1, len(env["decision"]) + 1)


def _acceptors(env) -> range:
    # joinedNodes maps rounds to sets over a fixed node universe; recover
    # the universe from the protocol parameter stashed in the formula.
    raise NotImplementedError  # replaced per-instance below


def paxos_invariants(num_nodes: int) -> Tuple[List[Formula], List[Formula]]:
    """(easy, hard) conjunct lists of the baseline Paxos invariant.

    The *easy* conjuncts correspond roughly to formulas (4)-(7) of [39]
    (and to properties 2/3/4 of the paper's ``PaxosInv``); the *hard* ones
    to the ``choosable``-style formulas (8)-(12) capturing dependencies of
    overlapping rounds, which the IS proof does not need.
    """
    acceptors = tuple(range(1, num_nodes + 1))

    def quorums():
        result = []
        for size in range(1, num_nodes + 1):
            for q in combinations(acceptors, size):
                if len(q) * 2 > num_nodes:
                    result.append(frozenset(q))
        return tuple(result)

    all_quorums = quorums()

    def proposal(e, r) -> Optional[int]:
        info = e["voteInfo"][r]
        return None if info is None else info[0]

    def voted(e, n, r, v) -> bool:
        info = e["voteInfo"][r]
        return info is not None and info[0] == v and n in info[1]

    def left_round(e, n, r) -> bool:
        return any(n in e["joinedNodes"][r2] for r2 in _rounds(e) if r2 > r)

    def choosable(e, r, v, quorum) -> bool:
        return all(voted(e, n, r, v) or not left_round(e, n, r) for n in quorum)

    easy = [
        Atom(
            "decision(r,v) ⇒ quorum voted v in r",
            lambda e: all(
                e["decision"][r] is None
                or any(
                    all(voted(e, n, r, e["decision"][r]) for n in q)
                    for q in all_quorums
                )
                for r in _rounds(e)
            ),
        ),
        Atom(
            "vote(n,r,v) ⇒ proposal(r,v)",
            lambda e: all(
                e["voteInfo"][r] is None or proposal(e, r) is not None
                for r in _rounds(e)
            ),
        ),
        Atom(
            "decision(r,v) ⇒ proposal(r,v)",
            lambda e: all(
                e["decision"][r] is None or e["decision"][r] == proposal(e, r)
                for r in _rounds(e)
            ),
        ),
        Atom(
            "safety: decisions agree",
            lambda e: len(
                {e["decision"][r] for r in _rounds(e) if e["decision"][r] is not None}
            )
            <= 1,
        ),
    ]

    hard = [
        Atom(
            "choosable ⇒ later proposals agree",
            lambda e: all(
                v1 == proposal(e, r2)
                for r1 in _rounds(e)
                for r2 in _rounds(e)
                if r1 < r2 and proposal(e, r2) is not None
                for v1 in {proposal(e, r1)}
                if v1 is not None
                for q in all_quorums
                if choosable(e, r1, v1, q)
            ),
        ),
        Atom(
            "vote only after proposal in own round",
            lambda e: all(
                e["voteInfo"][r] is None or isinstance(e["voteInfo"][r], tuple)
                for r in _rounds(e)
            ),
        ),
    ]
    return easy, hard


def paxos_candidate_space(
    rounds: int, num_nodes: int, values: Tuple[int, ...] = (1, 2)
):
    """A structured space of candidate configurations for the consecution
    check — the enumerative stand-in for Ivy's unrestricted frame.

    Enumerates all abstract states (joined sets, per-round vote info,
    decisions) and pairs each with the pending-async multiset of the
    outstanding votes and conclusions its proposals still license. This
    space contains the classical counterexamples-to-induction: states
    satisfying the easy conjuncts where a stale round can still reach a
    conflicting decision.
    """
    from ..core.mapping import FrozenDict
    from ..core.semantics import Config
    from ..protocols.common import GHOST

    acceptors = tuple(range(1, num_nodes + 1))
    round_ids = tuple(range(1, rounds + 1))

    def vote_infos():
        yield None
        for v in values:
            for size in range(num_nodes + 1):
                for ns in combinations(acceptors, size):
                    yield (v, frozenset(ns))

    def joined_sets():
        for size in range(num_nodes + 1):
            for ns in combinations(acceptors, size):
                yield frozenset(ns)

    from itertools import product

    vote_options = list(vote_infos())
    join_options = list(joined_sets())

    for joined in product(join_options, repeat=rounds):
        for infos in product(vote_options, repeat=rounds):
            decision_options: List[Tuple[Optional[int], ...]] = []
            for decisions in product(
                *[
                    [None] + ([infos[r - 1][0]] if infos[r - 1] is not None else [])
                    for r in round_ids
                ]
            ):
                decision_options.append(decisions)
            for decisions in decision_options:
                pending = []
                for r in round_ids:
                    info = infos[r - 1]
                    if info is None:
                        continue
                    v, ns = info
                    pending.extend(
                        PendingAsync("Vote", Store({"r": r, "n": n, "v": v}))
                        for n in acceptors
                        if n not in ns
                    )
                    if decisions[r - 1] is None:
                        pending.append(
                            PendingAsync("Conclude", Store({"r": r, "v": v}))
                        )
                omega = Multiset(pending)
                glob = Store(
                    {
                        "joinedNodes": FrozenDict(
                            {r: joined[r - 1] for r in round_ids}
                        ),
                        "voteInfo": FrozenDict({r: infos[r - 1] for r in round_ids}),
                        "decision": FrozenDict(
                            {r: decisions[r - 1] for r in round_ids}
                        ),
                        GHOST: omega,
                    }
                )
                yield Config(glob, omega)


def paxos_easy_invariant(num_nodes: int) -> Formula:
    """Only the easy conjuncts — NOT inductive (consecution fails): the
    proposal step of a later round cannot be justified without the
    ``choosable`` conjunct."""
    easy, _hard = paxos_invariants(num_nodes)
    return And(tuple(easy))


def paxos_full_invariant(num_nodes: int) -> Formula:
    """Easy plus hard conjuncts — the full baseline invariant."""
    easy, hard = paxos_invariants(num_nodes)
    return And(tuple(easy + hard))
