"""Evaluation harness: metrics and the Table 1 analogue."""

from .metrics import (
    module_loc,
    source_loc,
    trace_checked_by_scope,
    verify_trace_consistency,
)
from .table1 import (
    TABLE1_REGISTRY,
    Table1Row,
    build_table1,
    render_obligation_stats,
    render_table1,
)

__all__ = [
    "module_loc",
    "source_loc",
    "trace_checked_by_scope",
    "verify_trace_consistency",
    "TABLE1_REGISTRY",
    "Table1Row",
    "build_table1",
    "render_table1",
    "render_obligation_stats",
]
