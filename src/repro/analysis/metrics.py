"""Metrics for the Table 1 analogue: lines of code and timings.

Table 1 of the paper reports, per example, the number of IS applications,
lines of CIVL code (total / related to the IS steps / related to the
implementation and the reduction step), and verification time. Our
analogues count non-blank, non-comment source lines of the corresponding
Python artifacts via :mod:`inspect`:

* **LOC Total** — the whole protocol module;
* **LOC IS** — the functions defining IS proof artifacts (invariant or
  policy, abstractions, measure, the application builders);
* **LOC Impl** — the functions defining the protocol programs themselves
  (atomic actions, low-level module, initial state).

Absolute numbers are not comparable with the paper's Boogie line counts;
the *ratios* (Paxos's proof dwarfing the others, IS artifacts comparable in
size to the implementation) are the reproduced signal.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterable

__all__ = ["source_loc", "module_loc"]


def _count_lines(source: str) -> int:
    count = 0
    in_docstring = False
    delimiter = None
    for raw in source.splitlines():
        line = raw.strip()
        if in_docstring:
            if delimiter in line:
                in_docstring = False
            continue
        if not line or line.startswith("#"):
            continue
        for quote in ('"""', "'''"):
            if line.startswith(quote):
                body = line[len(quote):]
                if quote not in body:
                    in_docstring = True
                    delimiter = quote
                break
        else:
            count += 1
            continue
        if not in_docstring and line.count(line[:3]) >= 2:
            continue  # one-line docstring
    return count


def source_loc(objects: Iterable[Callable]) -> int:
    """Non-blank, non-comment, non-docstring source lines of the given
    functions/classes."""
    return sum(_count_lines(inspect.getsource(obj)) for obj in objects)


def module_loc(module) -> int:
    """Non-blank, non-comment, non-docstring lines of a whole module."""
    return _count_lines(inspect.getsource(module))
