"""Metrics for the Table 1 analogue: lines of code and timings.

Table 1 of the paper reports, per example, the number of IS applications,
lines of CIVL code (total / related to the IS steps / related to the
implementation and the reduction step), and verification time. Our
analogues count non-blank, non-comment source lines of the corresponding
Python artifacts via :mod:`inspect`:

* **LOC Total** — the whole protocol module;
* **LOC IS** — the functions defining IS proof artifacts (invariant or
  policy, abstractions, measure, the application builders);
* **LOC Impl** — the functions defining the protocol programs themselves
  (atomic actions, low-level module, initial state).

Absolute numbers are not comparable with the paper's Boogie line counts;
the *ratios* (Paxos's proof dwarfing the others, IS artifacts comparable in
size to the implementation) are the reproduced signal.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterable

__all__ = [
    "source_loc",
    "module_loc",
    "trace_checked_by_scope",
    "verify_trace_consistency",
]


def _count_lines(source: str) -> int:
    count = 0
    in_docstring = False
    delimiter = None
    for raw in source.splitlines():
        line = raw.strip()
        if in_docstring:
            if delimiter in line:
                in_docstring = False
            continue
        if not line or line.startswith("#"):
            continue
        for quote in ('"""', "'''"):
            if line.startswith(quote):
                body = line[len(quote):]
                if quote not in body:
                    in_docstring = True
                    delimiter = quote
                break
        else:
            count += 1
            continue
        if not in_docstring and line.count(line[:3]) >= 2:
            continue  # one-line docstring
    return count


def source_loc(objects: Iterable[Callable]) -> int:
    """Non-blank, non-comment, non-docstring source lines of the given
    functions/classes."""
    return sum(_count_lines(inspect.getsource(obj)) for obj in objects)


def module_loc(module) -> int:
    """Non-blank, non-comment, non-docstring lines of a whole module."""
    return _count_lines(inspect.getsource(module))


# --------------------------------------------------------------------- #
# Trace-derived metrics (repro.obs)
# --------------------------------------------------------------------- #


def trace_checked_by_scope(tracer) -> Dict[str, int]:
    """Per-protocol enumeration counts from a tracer's obligation spans,
    keyed by the top-level scope segment (the protocol name when the
    tracer wrapped ``verify`` or ``build_table1``)."""
    totals: Dict[str, int] = {}
    for span in tracer.obligation_spans():
        scope = span.scope.split("/", 1)[0] if span.scope else ""
        totals[scope] = totals.get(scope, 0) + span.checked
    return totals


def verify_trace_consistency(rows, tracer) -> None:
    """Assert the tracer's aggregates match the scheduler's book exactly.

    ``rows`` are :class:`~repro.analysis.table1.Table1Row` values produced
    with this tracer attached. The obligation spans' summed ``checked``
    counters must equal the rows' summed ``num_checks`` (which come from
    the merged condition maps), and the span count must equal the rows'
    summed ``num_obligations``. Only IS obligations are in scope on both
    sides: the ground-truth program-refinement check is not an obligation
    and its ``checked`` counter (configurations explored, not store pairs)
    never enters ``num_checks``. The CLI runs this after every
    ``--trace``/``--metrics`` export, so a published metrics file is
    guaranteed to agree with the table it accompanies; a mismatch is an
    engine accounting bug, not a formatting problem — hence an assertion,
    not a warning.
    """
    span_checked = sum(s.checked for s in tracer.obligation_spans())
    row_checked = sum(row.num_checks for row in rows)
    if span_checked != row_checked:
        raise AssertionError(
            f"trace/table divergence: spans account for {span_checked} "
            f"evaluations, condition maps for {row_checked}"
        )
    span_obligations = len(tracer.obligation_spans())
    row_obligations = sum(row.num_obligations for row in rows)
    if span_obligations != row_obligations:
        raise AssertionError(
            f"trace/table divergence: {span_obligations} obligation spans "
            f"vs {row_obligations} discharged obligations"
        )
