"""Regenerating Table 1: all seven examples verified with IS.

One registry entry per protocol binds together the verification entry
point (at the default instance parameters), the functions constituting the
IS proof artifacts, and the functions constituting the implementation —
from which the Table 1 analogue (#IS, LOC total / IS / impl, time) is
computed. ``build_table1()`` runs everything and returns the rows;
``examples/run_table1.py`` and ``benchmarks/test_table1.py`` print them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..protocols import (
    broadcast,
    changroberts,
    nbuyer,
    paxos,
    pingpong,
    prodcons,
    twophase,
)
from ..protocols.common import ProtocolReport
from .metrics import module_loc, source_loc

__all__ = [
    "Table1Row",
    "TABLE1_REGISTRY",
    "build_table1",
    "render_table1",
    "render_obligation_stats",
]


@dataclass
class Table1Row:
    example: str
    num_is: int
    loc_total: int
    loc_is: int
    loc_impl: int
    time_seconds: float
    ok: bool
    #: ``OK``/``FAILED``/``BUDGET``/``TIMEOUT``/``INTERRUPTED`` — the
    #: report's verdict lattice (BUDGET: blew ``max_configs``; TIMEOUT:
    #: obligations hit their deadline; INTERRUPTED: stopped by Ctrl-C —
    #: none of these decide the instance).
    status: str = "OK"
    #: Engine statistics: obligations discharged / stores enumerated across
    #: the row's IS applications (0 when produced by the inline checker).
    num_obligations: int = 0
    num_checks: int = 0
    #: ``True`` when the row's universe was sampled (random walks), so a
    #: PASS is a bounded check, not an exhaustive discharge; surfaced in
    #: the rendered table as a ``*`` on the status.
    bounded: bool = False
    #: The underlying report, for per-obligation drill-down
    #: (:func:`render_obligation_stats`); not rendered in the table.
    report: Optional[ProtocolReport] = field(default=None, repr=False, compare=False)


@dataclass
class _Entry:
    name: str
    module: object
    verify: Callable[..., ProtocolReport]
    is_artifacts: Sequence[Callable]
    implementation: Sequence[Callable]


TABLE1_REGISTRY: List[_Entry] = [
    _Entry(
        "Broadcast consensus",
        broadcast,
        lambda max_configs=None, jobs=None, fail_fast=False, tracer=None, resilience=None, cache=None, warm=None, symmetry=False: broadcast.verify(
            n=3, iterated=True, max_configs=max_configs, jobs=jobs, fail_fast=fail_fast, tracer=tracer, resilience=resilience, cache=cache, warm=warm, symmetry=symmetry
        ),
        (
            broadcast.make_invariant,
            broadcast.make_broadcast_invariant,
            broadcast.make_collect_invariant,
            broadcast.make_collect_abs,
            broadcast.make_measure,
            broadcast.make_sequentialization,
            broadcast.make_iterated_sequentializations,
        ),
        (broadcast.make_atomic, broadcast.make_module, broadcast.initial_global),
    ),
    _Entry(
        "Ping-Pong",
        pingpong,
        lambda max_configs=None, jobs=None, fail_fast=False, tracer=None, resilience=None, cache=None, warm=None, symmetry=False: pingpong.verify(
            rounds=3, max_configs=max_configs, jobs=jobs, fail_fast=fail_fast, tracer=tracer, resilience=resilience, cache=cache, warm=warm, symmetry=symmetry
        ),
        (
            pingpong.make_abstractions,
            pingpong.make_measure,
            pingpong.make_policy,
            pingpong.make_sequentialization,
        ),
        (pingpong.make_atomic, pingpong.make_module, pingpong.initial_global),
    ),
    _Entry(
        "Producer-Consumer",
        prodcons,
        lambda max_configs=None, jobs=None, fail_fast=False, tracer=None, resilience=None, cache=None, warm=None, symmetry=False: prodcons.verify(
            bound=4, max_configs=max_configs, jobs=jobs, fail_fast=fail_fast, tracer=tracer, resilience=resilience, cache=cache, warm=warm, symmetry=symmetry
        ),
        (
            prodcons.make_consumer_abs,
            prodcons.make_measure,
            prodcons.make_policy,
            prodcons.make_sequentialization,
        ),
        (prodcons.make_atomic, prodcons.make_module, prodcons.initial_global),
    ),
    _Entry(
        "N-Buyer",
        nbuyer,
        lambda max_configs=None, jobs=None, fail_fast=False, tracer=None, resilience=None, cache=None, warm=None, symmetry=False: nbuyer.verify(
            n=3, max_configs=max_configs, jobs=jobs, fail_fast=fail_fast, tracer=tracer, resilience=resilience, cache=cache, warm=warm, symmetry=symmetry
        ),
        (nbuyer.make_measure, nbuyer.make_sequentializations),
        (nbuyer.make_atomic, nbuyer.initial_global),
    ),
    _Entry(
        "Chang-Roberts",
        changroberts,
        lambda max_configs=None, jobs=None, fail_fast=False, tracer=None, resilience=None, cache=None, warm=None, symmetry=False: changroberts.verify(
            n=4, max_configs=max_configs, jobs=jobs, fail_fast=fail_fast, tracer=tracer, resilience=resilience, cache=cache, warm=warm, symmetry=symmetry
        ),
        (
            changroberts.make_handle_abs,
            changroberts.upstream_threat,
            changroberts.make_measure,
            changroberts.make_init_policy,
            changroberts.make_handle_policy,
            changroberts.make_sequentializations,
        ),
        (changroberts.make_atomic, changroberts.initial_global),
    ),
    _Entry(
        "Two-phase commit",
        twophase,
        lambda max_configs=None, jobs=None, fail_fast=False, tracer=None, resilience=None, cache=None, warm=None, symmetry=False: twophase.verify(
            n=3, max_configs=max_configs, jobs=jobs, fail_fast=fail_fast, tracer=tracer, resilience=resilience, cache=cache, warm=warm, symmetry=symmetry
        ),
        (twophase.make_measure, twophase.make_sequentializations),
        (twophase.make_atomic, twophase.initial_global),
    ),
    _Entry(
        "Paxos",
        paxos,
        lambda max_configs=None, jobs=None, fail_fast=False, tracer=None, resilience=None, cache=None, warm=None, symmetry=False: paxos.verify(
            rounds=2, num_nodes=2, max_configs=max_configs, jobs=jobs, fail_fast=fail_fast, tracer=tracer, resilience=resilience, cache=cache, warm=warm, symmetry=symmetry
        ),
        (
            paxos.make_abstractions,
            paxos.make_measure,
            paxos.make_policy,
            paxos.make_sequentialization,
        ),
        (paxos.make_atomic, paxos.initial_global, paxos.is_quorum),
    ),
]


def build_table1(
    entries: Sequence[_Entry] = None,
    max_configs: Optional[int] = None,
    jobs: Optional[int] = None,
    fail_fast: bool = False,
    tracer=None,
    resilience=None,
    cache=None,
    warm=None,
    symmetry: bool = False,
) -> List[Table1Row]:
    """Run every example's full pipeline and assemble the table.

    ``jobs`` selects the obligation-discharge backend for the IS checks
    (see ``repro.engine.scheduler``); verdicts are backend-independent.
    ``fail_fast`` skips obligations (transitively) downstream of a failed
    one — rows of a healthy suite are unaffected, broken rows finish
    sooner with explicit ``skipped`` counterexamples. ``tracer`` (a
    :class:`repro.obs.Tracer`) threads through every pipeline: each
    protocol scopes its own spans, so one tracer accumulates the whole
    table's obligations for export (``python -m repro table1 --trace``).
    ``max_configs`` bounds every exploration; a row whose instance blows
    the budget gets status BUDGET instead of aborting the sweep.
    ``resilience`` (a
    :class:`~repro.engine.resilience.ResilienceConfig`) threads
    per-obligation deadlines, retries, and checkpoint/resume into every
    row's pipeline; rows with expired deadlines render as TIMEOUT, and an
    interrupted row (Ctrl-C) stops the sweep with the completed rows plus
    the partial one. ``cache`` (an
    :class:`~repro.engine.rcache.ObligationCache` or a directory path)
    arms the persistent result cache for every row; one instance is
    shared across the sweep, so an unchanged protocol's obligations are
    seeded instead of re-executed (``python -m repro table1 --cache``).
    ``symmetry`` quotients every exploration and IS universe by the
    protocol's declared permutation group (``make_symmetry``, where one
    exists — protocols without a nontrivial group ignore the flag);
    verdicts are quotient-independent, only the enumeration shrinks.
    """
    from ..engine.rcache import ObligationCache

    if warm is not None and cache is None:
        cache = warm.rcache
    cache = ObligationCache.ensure(cache)
    rows: List[Table1Row] = []
    for entry in entries if entries is not None else TABLE1_REGISTRY:
        report = entry.verify(
            max_configs=max_configs, jobs=jobs, fail_fast=fail_fast, tracer=tracer, resilience=resilience, cache=cache, warm=warm, symmetry=symmetry
        )
        rows.append(
            Table1Row(
                example=entry.name,
                num_is=report.num_is_applications,
                loc_total=module_loc(entry.module),
                loc_is=source_loc(entry.is_artifacts),
                loc_impl=source_loc(entry.implementation),
                time_seconds=report.total_time,
                ok=report.ok,
                status=report.status,
                num_obligations=sum(
                    r.num_obligations for _, r in report.is_results
                ),
                num_checks=sum(r.total_checked for _, r in report.is_results),
                bounded=report.bounded,
                report=report,
            )
        )
        if report.interrupted:
            # Ctrl-C: keep the completed rows plus this partial one, skip
            # the remaining examples — the caller renders what survived.
            break
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render the table in the paper's column layout, extended with the
    obligation engine's per-row statistics (#Obl, #Checks). A bounded row
    (sampled universe — the PASS is not exhaustive) is starred."""
    header = (
        f"{'Example':<22} {'#IS':>4} {'LOC Total':>10} {'LOC IS':>7} "
        f"{'LOC Impl':>9} {'Time (s)':>9} {'#Obl':>5} {'#Checks':>9}  "
        f"{'Status':<7}"
    )
    lines = [header, "-" * len(header)]
    starred = False
    for row in rows:
        status = row.status + ("*" if row.bounded else "")
        starred = starred or row.bounded
        lines.append(
            f"{row.example:<22} {row.num_is:>4} {row.loc_total:>10} "
            f"{row.loc_is:>7} {row.loc_impl:>9} {row.time_seconds:>9.2f} "
            f"{row.num_obligations:>5} {row.num_checks:>9}  "
            f"{status:<7}"
        )
    if starred:
        lines.append("* bounded: sampled universe — a PASS is not exhaustive")
    return "\n".join(lines)


def render_obligation_stats(rows: Sequence[Table1Row], top: int = 5) -> str:
    """Per-protocol drill-down: the slowest obligations of every IS
    application, with wall-clock and enumeration counts."""
    lines: List[str] = []
    for row in rows:
        if row.report is None:
            continue
        for label, result in row.report.is_results:
            lines.append(f"{row.example} — IS[{label}]")
            lines.append(result.obligation_report(top=top))
    return "\n".join(lines)
