"""Lipton reduction and layered refinement (the CIVL substrate)."""

from .layers import LayerLink, RefinementChain, check_layer_refinement
from .lipton import (
    PhaseViolation,
    ProcedurePattern,
    ReductionAnalysis,
    analyze_module,
    successors,
)

__all__ = [
    "LayerLink",
    "RefinementChain",
    "check_layer_refinement",
    "PhaseViolation",
    "ProcedurePattern",
    "ReductionAnalysis",
    "analyze_module",
    "successors",
]
