"""Lipton reduction: mover inference and the atomicity pattern check.

The paper assumes programs are given as atomic actions with pending asyncs
and notes that "in practice, reduction is typically applied before our new
technique" (Section 2.1). This module supplies that step for modules
written in the mini-CIVL language:

1. every instruction-level action of :math:`\\mathcal{P}_1` gets a mover
   type inferred by pairwise commutation checking over a reachable-state
   universe (``repro.core.movers``), and
2. every procedure's control-flow graph is checked against the atomic
   pattern *right movers; at most one non-mover; left movers* along every
   path, via a forward phase dataflow.

If both succeed, summarizing each procedure into a single atomic action
(``repro.lang.compile``) is a sound reduction
:math:`\\mathcal{P}_1 \\preccurlyeq \\mathcal{P}_2`; the test suite
additionally validates this refinement exhaustively on small instances
(``repro.reduction.layers``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.context import InstanceContext
from ..core.explore import explore
from ..core.movers import MoverOracle, MoverType
from ..core.program import MAIN
from ..core.semantics import Config
from ..core.universe import StoreUniverse
from ..lang.interp import Module, Procedure, action_name, build_finegrained
from ..lang.lower import CJump, Instr, IterNext, Jump

__all__ = [
    "PhaseViolation",
    "ProcedurePattern",
    "ReductionAnalysis",
    "analyze_module",
    "module_context",
    "successors",
]


def _proc_of_action(module: Module, name: str) -> str:
    if name == MAIN:
        return module.main
    return name.split("#", 1)[0]


def instance_identity(module: Module, action_name: str, locals_):
    """Identity under which two PAs exclude each other: the procedure
    instance (name + parameter values), or the linear class when declared
    (at most one live instance per class). ``None`` for multi-instance
    procedures (no exclusion, no linearity obligation)."""
    proc = module.procedure(_proc_of_action(module, action_name))
    if proc.multi_instance:
        return None
    if proc.linear_class is not None:
        return ("$class", proc.linear_class)
    return proc.name, tuple((p, locals_.get(p)) for p in proc.params)


def module_context(module: Module) -> InstanceContext:
    """The per-instance linearity context of a module (see
    :class:`~repro.core.context.InstanceContext`)."""

    def instance_of(name: str):
        proc = module.procedure(_proc_of_action(module, name))
        if proc.multi_instance:
            return None
        if proc.linear_class is not None:
            # All parameters are irrelevant: one instance per class.
            return ("$class", proc.linear_class), ()
        return proc.name, proc.params

    return InstanceContext(instance_of)

#: Dataflow phases: R = still within the right-mover prefix, L = past the
#: (optional) non-mover, only left movers allowed.
_R, _L = "R", "L"


@dataclass(frozen=True)
class PhaseViolation:
    """A pc where the atomicity pattern breaks, with the offending phase."""

    proc: str
    pc: int
    phase: str
    mover: MoverType
    reason: str


@dataclass
class ProcedurePattern:
    """Result of the pattern check for one procedure."""

    proc: str
    phases: Dict[int, Set[str]] = field(default_factory=dict)
    violations: List[PhaseViolation] = field(default_factory=list)

    @property
    def atomic(self) -> bool:
        return not self.violations


@dataclass
class ReductionAnalysis:
    """Mover types of all instruction actions plus per-procedure patterns."""

    mover_types: Dict[str, MoverType]
    patterns: Dict[str, ProcedurePattern]
    #: Reachable configurations violating per-instance linearity (two PAs
    #: of the same procedure instance pending at once); must be empty for
    #: the InstanceContext-based mover inference to be justified.
    linearity_violations: List[Config] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        """True if every procedure follows the atomic pattern and linearity
        holds, licensing the summarization into atomic actions."""
        return not self.linearity_violations and all(
            pattern.atomic for pattern in self.patterns.values()
        )

    def report(self) -> str:
        lines = ["mover types:"]
        for name in sorted(self.mover_types):
            lines.append(f"  {name}: {self.mover_types[name].value}")
        for proc, pattern in sorted(self.patterns.items()):
            status = "atomic" if pattern.atomic else "NOT atomic"
            lines.append(f"procedure {proc}: {status}")
            for violation in pattern.violations:
                lines.append(
                    f"  pc {violation.pc}: {violation.reason} "
                    f"(phase {violation.phase}, mover {violation.mover.value})"
                )
        return "\n".join(lines)


def successors(instrs: List[Instr], pc: int) -> List[int]:
    """Control successors of an instruction (end of body = no successor)."""
    instr = instrs[pc]
    if isinstance(instr, Jump):
        return [instr.target] if instr.target < len(instrs) else []
    if isinstance(instr, CJump):
        return [t for t in (instr.then, instr.orelse) if t < len(instrs)]
    if isinstance(instr, IterNext):
        result = []
        if pc + 1 < len(instrs):
            result.append(pc + 1)
        if instr.done < len(instrs) and instr.done not in result:
            result.append(instr.done)
        return result
    return [pc + 1] if pc + 1 < len(instrs) else []


def _transfer(
    proc: str, pc: int, phase: str, mover: MoverType
) -> Tuple[Optional[str], Optional[PhaseViolation]]:
    """One step of the phase dataflow: execute an action of the given mover
    type in a phase; returns the outgoing phase or a violation."""
    if phase == _R:
        if mover.is_right:
            return _R, None
        # A left-only or non-mover ends the right-mover prefix. A non-mover
        # consumes the single allowed occurrence; a left mover starts the
        # suffix directly. Either way, only left movers may follow.
        return _L, None
    # phase == _L: only left movers may appear after the non-mover.
    if mover.is_left:
        return _L, None
    return None, PhaseViolation(
        proc, pc, phase, mover, "right/non-mover after the commit point"
    )


def check_procedure_pattern(
    module: Module, proc: Procedure, mover_types: Dict[str, MoverType]
) -> ProcedurePattern:
    """Forward dataflow establishing the R*;N?;L* pattern on all paths."""
    pattern = ProcedurePattern(proc.name)
    instrs = proc.instrs
    worklist: List[Tuple[int, str]] = [(0, _R)]
    seen: Set[Tuple[int, str]] = set()
    while worklist:
        pc, phase = worklist.pop()
        if (pc, phase) in seen or pc >= len(instrs):
            continue
        seen.add((pc, phase))
        pattern.phases.setdefault(pc, set()).add(phase)
        mover = mover_types[action_name(module, proc.name, pc)]
        out_phase, violation = _transfer(proc.name, pc, phase, mover)
        if violation is not None:
            pattern.violations.append(violation)
            continue
        for successor in successors(instrs, pc):
            worklist.append((successor, out_phase))
    return pattern


def _linearity_violations(
    module: Module, reachable: Iterable[Config]
) -> List[Config]:
    """Reachable configurations with two PAs of one procedure instance."""
    violations: List[Config] = []
    for config in reachable:
        seen = {}
        for pending, count in config.pending.counts():
            identity = instance_identity(module, pending.action, pending.locals)
            if identity is None:
                continue  # multi-instance: no linearity obligation
            seen[identity] = seen.get(identity, 0) + count
        if any(total > 1 for total in seen.values()):
            violations.append(config)
            if len(violations) >= 5:
                break
    return violations


def analyze_module(
    module: Module,
    initials: Iterable[Config],
    max_configs: Optional[int] = None,
    universe: Optional[StoreUniverse] = None,
) -> ReductionAnalysis:
    """Infer mover types of the module's instruction actions over the
    reachable universe (under per-instance linearity, which is validated on
    the explored configurations) and check every procedure's atomicity
    pattern."""
    program = build_finegrained(module)
    violations: List[Config] = []
    if universe is None:
        result = explore(program, initials, max_configs=max_configs)
        violations = _linearity_violations(module, result.reachable)
        globals_seen = {config.glob for config in result.reachable}
        locals_seen: Dict[str, set] = {}
        for config in result.reachable:
            for pending in config.pending.support():
                locals_seen.setdefault(pending.action, set()).add(pending.locals)
        universe = StoreUniverse(
            sorted(globals_seen, key=repr),
            {k: sorted(v, key=repr) for k, v in locals_seen.items()},
            context=module_context(module),
        )
    oracle = MoverOracle(program, universe)
    mover_types = {name: oracle.mover_type(name) for name in program.action_names()}
    patterns = {
        proc.name: check_procedure_pattern(module, proc, mover_types)
        for proc in module.procedures.values()
    }
    return ReductionAnalysis(mover_types, patterns, violations)
