"""Layered refinement chains (CIVL's layered concurrent programs).

CIVL structures a verification as a chain
:math:`\\mathcal{P}_1 \\preccurlyeq \\mathcal{P}_2 \\preccurlyeq \\cdots`
where each link is justified by a transformation: reduction/summarization,
variable introduction/hiding, or (with this paper) an IS application. This
module provides the chain bookkeeping plus the cross-layer refinement
oracle used by the tests: exploring both layers exhaustively on a finite
instance and comparing their summaries modulo hidden variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.explore import instance_summary
from ..core.program import Program
from ..core.refinement import CheckResult, _fail
from ..core.store import Store
from ..diagnose.witness import GateWitness, MissingTransitionWitness

__all__ = ["LayerLink", "RefinementChain", "check_layer_refinement"]


def check_layer_refinement(
    concrete: Program,
    abstract: Program,
    initials: Iterable[Tuple[Store, Store, Store]],
    hidden_vars: Sequence[str] = (),
    max_configs: Optional[int] = None,
    name: str = "layer refinement",
    concrete_view: Optional[Callable[[Store], Store]] = None,
    abstract_view: Optional[Callable[[Store], Store]] = None,
) -> CheckResult:
    """Check Definition 3.2 across layers with different state spaces.

    ``initials`` yields ``(global, concrete-main-locals, abstract-main-
    locals)`` triples — the two layers may give ``Main`` different local
    frames (e.g. the fine-grained layer carries loop counters). The two
    layers may even use *different variable representations* (CIVL's
    variable introduction/hiding, e.g. Paxos hiding ``acceptorState`` and
    the channels behind ``joinedNodes``/``voteInfo``): ``concrete_view``
    and ``abstract_view`` map each layer's final global store into a shared
    observation on which the summaries are compared. By default the views
    drop ``hidden_vars`` (e.g. the ghost ``pendingAsyncs`` only one layer
    maintains).

    ``initials`` entries are either 3-tuples ``(shared_global,
    concrete_locals, abstract_locals)`` or 4-tuples ``(concrete_global,
    concrete_locals, abstract_global, abstract_locals)`` when the layers'
    state representations differ.
    """
    result = CheckResult(name, True)

    def default_view(store: Store) -> Store:
        return store.without(hidden_vars)

    view_c = concrete_view or default_view
    view_a = abstract_view or default_view

    for entry in initials:
        if len(entry) == 3:
            global_c, concrete_locals, abstract_locals = entry
            global_a = global_c
        else:
            global_c, concrete_locals, global_a, abstract_locals = entry
        summary_c = instance_summary(concrete, global_c, concrete_locals, max_configs)
        summary_a = instance_summary(abstract, global_a, abstract_locals, max_configs)
        result.checked += summary_c.num_configs + summary_a.num_configs
        if not summary_a.can_fail and summary_c.can_fail:
            _fail(
                result,
                GateWitness(
                    reason="concrete fails where abstract is failure-free",
                    check="layer-good-inclusion",
                    state=global_c,
                    context=(concrete_locals,),
                ),
            )
            continue
        if summary_a.can_fail:
            continue  # abstract fails: nothing to preserve (Definition 3.2)
        finals_a: Set[Store] = {view_a(g) for g in summary_a.final_globals}
        for final in sorted(summary_c.final_globals, key=repr):
            if view_c(final) not in finals_a:
                _fail(
                    result,
                    MissingTransitionWitness(
                        reason="concrete terminating state unreachable in abstract",
                        check="layer-trans-inclusion",
                        state=global_c,
                        final_global=final,
                    ),
                )
    return result


@dataclass
class LayerLink:
    """One link of a refinement chain with its justification record."""

    description: str
    concrete: Program
    abstract: Program
    justification: object = None
    check: Optional[CheckResult] = None

    @property
    def ok(self) -> bool:
        return self.check is None or self.check.holds


@dataclass
class RefinementChain:
    """A chain :math:`\\mathcal{P}_1 \\preccurlyeq \\cdots \\preccurlyeq
    \\mathcal{P}_n` built link by link."""

    links: List[LayerLink] = field(default_factory=list)

    def add(self, link: LayerLink) -> None:
        if self.links and self.links[-1].abstract is not link.concrete:
            raise ValueError("chain links must compose: abstract != next concrete")
        self.links.append(link)

    @property
    def ok(self) -> bool:
        return all(link.ok for link in self.links)

    @property
    def top(self) -> Program:
        """The most abstract program of the chain."""
        if not self.links:
            raise ValueError("empty chain")
        return self.links[-1].abstract

    @property
    def bottom(self) -> Program:
        """The most concrete program of the chain."""
        if not self.links:
            raise ValueError("empty chain")
        return self.links[0].concrete

    def report(self) -> str:
        lines = []
        for i, link in enumerate(self.links, start=1):
            status = "OK" if link.ok else "FAILED"
            lines.append(f"  P{i} ≼ P{i + 1}: {link.description} [{status}]")
        return "refinement chain:\n" + "\n".join(lines)
