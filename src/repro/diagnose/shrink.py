"""Delta-debugging minimizer for counterexample witnesses.

A raw witness from an exhaustive check drags along the whole store it was
found in — for Paxos, a pair of full combined stores plus transitions.
Most of that state is irrelevant to the violated predicate. The shrinker
edits the witness structurally — dropping store variables, zeroing numeric
leaves, removing channel-multiset occurrences — and keeps an edit only if
*replaying the edited witness against the original obligation predicate
still fails* (the ``still_fails`` callback, built by
``repro.diagnose.replay``). Every emitted witness is therefore confirmed
still-failing; nothing is ever guessed smaller.

The search is greedy first-improvement over a deterministic edit order,
restarting after every accepted edit, and every accepted edit strictly
decreases :func:`witness_size` — so the loop terminates and the result is
a local minimum: no single remaining edit keeps the failure. Determinism
matters: the same witness and predicate always minimize to the same
result, which is what lets tests compare shrunk output across backends.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Callable, Iterator, List, Tuple

from ..core.action import PendingAsync, Transition
from ..core.mapping import FrozenDict
from ..core.multiset import Multiset
from ..core.store import Store
from .witness import _META_FIELDS, Counterexample

__all__ = ["witness_size", "shrink_witness", "ShrinkStep"]


def witness_size(value: object) -> int:
    """The shrink order: a structural size measure over witness payloads.

    Zero/empty leaves cost nothing, so "zero a counter" and "drop a
    variable" are both strict improvements; containers cost one per entry
    plus their contents, so emptying a channel beats shrinking one
    message. Totals are comparable across candidate edits of the same
    witness, which is all the greedy loop needs.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, (int, float)):
        return 0 if value == 0 else 1
    if isinstance(value, str):
        return 0 if not value else 1
    if isinstance(value, Store):
        return sum(1 + witness_size(v) for _, v in value.items())
    if isinstance(value, Multiset):
        return sum(c * (1 + witness_size(e)) for e, c in value.counts())
    if isinstance(value, FrozenDict):
        return sum(witness_size(v) for _, v in sorted(value.items(), key=repr))
    if isinstance(value, PendingAsync):
        return 1 + witness_size(value.locals)
    if isinstance(value, Transition):
        return witness_size(value.new_global) + witness_size(value.created)
    if isinstance(value, Counterexample):
        return sum(
            witness_size(getattr(value, f.name))
            for f in fields(value)
            if f.name not in _META_FIELDS
        )
    if isinstance(value, tuple):
        return sum(witness_size(v) for v in value)
    return 1


def _value_edits(value: object) -> Iterator[Tuple[str, object]]:
    """Candidate replacements for one payload value, each strictly smaller
    by :func:`witness_size`, in a deterministic order. Yields
    ``(edit description, new value)`` pairs."""
    if isinstance(value, bool):
        if value:
            yield "set False", False
        return
    if isinstance(value, (int, float)):
        if value != 0:
            yield "zero", type(value)(0)
        return
    if isinstance(value, str):
        if value:
            yield "empty string", ""
        return
    if isinstance(value, Store):
        for var in sorted(value.variables()):
            yield f"drop {var}", value.without([var])
        for var in sorted(value.variables()):
            for what, smaller in _value_edits(value[var]):
                yield f"{var}: {what}", value.set(var, smaller)
        return
    if isinstance(value, Multiset):
        if len(value) > 1:
            yield "empty multiset", Multiset()
        for element, _count in sorted(value.counts(), key=lambda kv: repr(kv[0])):
            yield f"remove one {element!r}", value.remove(element)
        return
    if isinstance(value, FrozenDict):
        for key, entry in sorted(value.items(), key=repr):
            for what, smaller in _value_edits(entry):
                yield f"[{key!r}]: {what}", value.set(key, smaller)
        return
    if isinstance(value, PendingAsync):
        for what, smaller in _value_edits(value.locals):
            yield f"locals {what}", replace(value, locals=smaller)
        return
    if isinstance(value, Transition):
        for what, smaller in _value_edits(value.new_global):
            yield f"new_global {what}", replace(value, new_global=smaller)
        for what, smaller in _value_edits(value.created):
            yield f"created {what}", replace(value, created=smaller)
        return
    if isinstance(value, tuple):
        for i, item in enumerate(value):
            for what, smaller in _value_edits(item):
                yield (
                    f"[{i}] {what}",
                    (*value[:i], smaller, *value[i + 1 :]),
                )
        return


class ShrinkStep(Tuple[str, str]):
    """An accepted shrink edit: ``(field name, edit description)``."""

    __slots__ = ()

    def __new__(cls, field_name: str, what: str):
        return super().__new__(cls, (field_name, what))

    def __repr__(self) -> str:
        return f"{self[0]}: {self[1]}"


def _witness_edits(cx: Counterexample) -> Iterator[Tuple[ShrinkStep, Counterexample]]:
    """All single-edit candidates for a witness, in field order then edit
    order. Edits only touch payload fields — never ``reason``/``check``/
    ``actors``/``prefix``, which identify the failure being replayed."""
    for f in fields(cx):
        if f.name in _META_FIELDS:
            continue
        value = getattr(cx, f.name)
        if value is None:
            continue
        for what, smaller in _value_edits(value):
            yield ShrinkStep(f.name, what), replace(cx, **{f.name: smaller})


def shrink_witness(
    cx: Counterexample,
    still_fails: Callable[[Counterexample], bool],
    max_steps: int = 10_000,
) -> Tuple[Counterexample, List[ShrinkStep]]:
    """Minimize ``cx`` while ``still_fails`` keeps rejecting it.

    ``still_fails`` must return ``True`` when the candidate witness still
    violates its obligation predicate; a candidate on which the replay
    raises (e.g. a dropped variable the gate reads) counts as *not*
    failing and is discarded — a witness must demonstrably fail, not
    merely crash the checker. Returns the minimized witness and the list
    of accepted edits (empty if nothing could be removed). The input is
    returned unchanged if it does not fail its own predicate — callers
    should check replay confirmation first.
    """
    current = cx
    accepted: List[ShrinkStep] = []
    budget = max_steps
    improved = True
    while improved and budget > 0:
        improved = False
        current_size = witness_size(current)
        for step, candidate in _witness_edits(current):
            budget -= 1
            if budget <= 0:
                break
            if witness_size(candidate) >= current_size:
                continue
            try:
                failing = bool(still_fails(candidate))
            except Exception:
                failing = False
            if failing:
                accepted.append(step)
                current = candidate
                improved = True
                break
    return current, accepted
