"""Typed counterexample witnesses: what a failed check actually ships.

The paper's pitch is that a failed IS obligation comes with "a concrete
counterexample, exactly like an SMT model". Historically a
:class:`~repro.core.refinement.CheckResult` carried ad-hoc
``(description, object)`` tuples; this module replaces them with a small
closed hierarchy of frozen dataclasses:

* :class:`GateWitness` — a store where a gate-shaped inclusion breaks
  (abstract gate holds where the concrete one fails, a gate-satisfying
  store with no transition, a measure that cannot decrease, ...);
* :class:`MissingTransitionWitness` — a concrete transition (or a
  program-level input/output pair) the abstraction cannot reproduce;
* :class:`CommutationWitness` — the full commuting diagram of a failed
  left-mover condition: both local stores, the global, and the two
  transitions that cannot be swapped;
* :class:`SkippedMarker` — the explicit marker a fail-fast run records
  for an obligation it never executed;
* :class:`TimeoutMarker` — the marker a resilient run records for an
  obligation that never *completed*: its deadline expired (``check ==
  "timeout"``), it crashed past the retry budget (``check == "crash"``),
  or the run was interrupted before it could execute (``check ==
  "interrupted"``).

Every witness knows

* its ``check`` — a stable identifier of the *failure mode* (e.g.
  ``"transition-inclusion"``), which ``repro.diagnose.replay`` dispatches
  on to rebuild the predicate the witness violates;
* its ``actors`` — the action names involved, so a replayer can recover
  the concrete/abstract action pair from an
  :class:`~repro.core.sequentialize.ISApplication`;
* its merge ``prefix`` — the context labels the obligation-merge paths
  used to encode as string prefixes (``wrt Broadcast:``); keeping them
  structured preserves byte-identical rendered descriptions across the
  serial and pool backends while letting tools strip them.

Witnesses still *iterate* like the legacy ``(description, payload)``
pairs, so diff-style consumers (``for d, w in result.counterexamples``)
keep working unchanged.

This module deliberately imports nothing from ``repro`` — it is a leaf
that ``repro.core.refinement`` can depend on without an import cycle.
The size measure lives in ``repro.diagnose.shrink`` and the JSON/terminal
renderers in ``repro.diagnose.render`` for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Iterator, Tuple

__all__ = [
    "COUNTEREXAMPLE_KEEP",
    "Counterexample",
    "GateWitness",
    "MissingTransitionWitness",
    "CommutationWitness",
    "SkippedMarker",
    "TimeoutMarker",
]

#: The single per-condition counterexample cap. Every producer
#: (``refinement._fail``), combiner (``movers._combine_conditions``) and
#: merge path (``engine.obligations.merge_outcomes``) truncates to this
#: constant, so inline, serial, and pool runs report identical witness
#: lists for the same failure (asserted in ``tests/diagnose``).
COUNTEREXAMPLE_KEEP = 5

#: Fields that are context, not payload (excluded from ``payload()``).
_META_FIELDS = ("reason", "check", "actors", "prefix")


@dataclass(frozen=True)
class Counterexample:
    """Base witness: a reason, a failure-mode id, and merge context.

    ``reason`` is the human-readable description of *why* the check
    failed (without merge prefixes); ``check`` identifies the violated
    predicate for replay; ``actors`` names the actions involved (in a
    fixed, check-specific order); ``prefix`` carries the labels merge
    paths prepend (``wrt Pong``, a condition-result name, ...).
    """

    reason: str = ""
    check: str = ""
    actors: Tuple[str, ...] = ()
    prefix: Tuple[str, ...] = ()

    kind = "counterexample"

    @property
    def description(self) -> str:
        """The fully-prefixed legacy description string."""
        return ": ".join((*self.prefix, self.reason))

    def with_prefix(self, *labels: str) -> "Counterexample":
        """A copy with ``labels`` prepended to the merge prefix."""
        return replace(self, prefix=(*labels, *self.prefix))

    def payload(self) -> object:
        """The witness payload (the legacy tuple's second element): the
        non-``None`` payload fields, unwrapped when there is only one."""
        values = tuple(
            getattr(self, f.name)
            for f in fields(self)
            if f.name not in _META_FIELDS and getattr(self, f.name) is not None
        )
        values = tuple(v for v in values if v != ())
        if not values:
            return None
        if len(values) == 1:
            return values[0]
        return values

    def __iter__(self) -> Iterator[object]:
        """Unpack like the legacy ``(description, payload)`` tuple."""
        yield self.description
        yield self.payload()

    def __repr__(self) -> str:  # compact: the report renders details
        return f"{type(self).__name__}({self.description!r})"


@dataclass(frozen=True, repr=False)
class GateWitness(Counterexample):
    """A store violating a gate-shaped condition.

    ``state`` is the offending (combined) store; ``context`` carries any
    additional objects fixing the scenario (e.g. the I-transition and
    chosen PA for an I3 gate failure, or the ``(global, local)`` split of
    a program-level initial store).
    """

    state: object = None
    context: Tuple = ()

    kind = "gate"


@dataclass(frozen=True, repr=False)
class MissingTransitionWitness(Counterexample):
    """A behaviour of the concrete side the abstract side cannot match.

    For action refinement, ``state`` + ``transition`` pin the concrete
    transition missing from the abstraction. For program refinement,
    ``state`` + ``final_global`` pin the terminating input/output pair
    the abstract program does not reproduce. ``context`` carries extra
    scenario objects (the I-transition and chosen PA for I3).
    """

    state: object = None
    transition: object = None
    final_global: object = None
    context: Tuple = ()

    kind = "missing-transition"


@dataclass(frozen=True, repr=False)
class CommutationWitness(Counterexample):
    """A failed left-mover diagram: who could not move past whom.

    ``actors`` is ``(l, x)`` — the would-be left mover and the action it
    was checked against. ``global_store``/``left_locals``/``right_locals``
    fix the stores; ``first_transition`` and ``second_transition`` are the
    two steps of the non-swappable ``x ; l`` execution (gate-preservation
    failures carry only the one transition that breaks the gate).
    """

    global_store: object = None
    left_locals: object = None
    right_locals: object = None
    first_transition: object = None
    second_transition: object = None

    kind = "commutation"


@dataclass(frozen=True, repr=False)
class SkippedMarker(Counterexample):
    """The explicit marker of a fail-fast skip (never executed, so there
    is no store to show — the ``reason`` names the failed dependency)."""

    kind = "skipped"

    def payload(self) -> object:
        return None


@dataclass(frozen=True, repr=False)
class TimeoutMarker(Counterexample):
    """The marker of an obligation that never completed.

    ``check`` distinguishes the three disruption modes: ``"timeout"``
    (the per-obligation wall-clock deadline expired), ``"crash"`` (the
    discharging process died or raised on every attempt within the retry
    budget), and ``"interrupted"`` (the run was stopped before the
    obligation executed). ``attempts`` counts how many executions were
    tried; ``deadline`` is the configured per-obligation deadline in
    seconds (``None`` when no deadline was set).

    Like :class:`SkippedMarker`, it records *scheduling* rather than a
    violation: a condition whose only witnesses are timeout markers is
    neither verified nor refuted — reports render it as ``TIMEOUT``, the
    fourth point of the PASS/FAIL/BUDGET/TIMEOUT lattice.
    """

    attempts: int = 0
    deadline: object = None

    kind = "timeout"

    def payload(self) -> object:
        return None
