"""Seeded-mutant protocol fixtures: IS applications that fail on purpose.

Each fixture plants one realistic bug in the broadcast-consensus proof of
Figure 1 (small ``n`` so the demo runs in seconds) and records which
conditions the bug must trip. They drive the end-to-end diagnostics demo:
``repro explain <fixture>`` runs the obligation engine on the mutant,
shrinks the resulting witnesses with replay confirmation, and renders the
report — and the CI ``explain-artifact`` job and ``tests/diagnose`` use
the same registry, so the demo can never silently rot.

* ``broken-broadcast`` — the abstraction ``CollectAbs`` decides the
  *minimum* of the received values instead of the maximum: the concrete
  ``Collect`` has transitions the abstraction cannot match, so
  ``abs[Collect]`` fails with missing-transition witnesses (and the
  induction step I3 escapes :math:`\\tau_I`).
* ``stuck-broadcast`` — the abstraction's transition relation waits for
  ``n + 1`` messages while its gate admits ``n`` (a classic off-by-one):
  at full channels the gate holds but no transition is enabled, so the
  left-mover condition (non-blocking) and cooperation fail with gate
  witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

from ..core.action import Action, PendingAsync, Transition
from ..core.program import MAIN
from ..core.sequentialize import ISApplication
from ..core.store import Store
from ..core.universe import StoreUniverse
from ..protocols import broadcast
from ..protocols.common import GHOST, ghost_step, has_pa_to, sub_multisets

__all__ = ["Fixture", "FIXTURES"]


@dataclass(frozen=True)
class Fixture:
    """One seeded mutant: how to build it and what it must break."""

    name: str
    title: str
    description: str
    build: Callable[[], Tuple[ISApplication, StoreUniverse]]
    #: Condition-map keys the seeded bug is expected to fail (the mutant
    #: may fail more; tests assert this set is a subset of the failures).
    expect_failing: Tuple[str, ...]


def _collect_pa(i: int) -> PendingAsync:
    return PendingAsync("Collect", Store({"i": i}))


def _mutant_collect_abs(n: int, decide=max, recv_count: int = None) -> Action:
    """A ``CollectAbs`` variant with a pluggable decision function and
    receive count (the correct abstraction is ``decide=max``,
    ``recv_count=n``; see ``broadcast.make_collect_abs``)."""
    if recv_count is None:
        recv_count = n

    def gate(state: Store) -> bool:
        if has_pa_to(state, "Broadcast"):
            return False
        return len(state["CH"][state["i"]]) >= n

    def transitions(state: Store) -> Iterator[Transition]:
        i = state["i"]
        channel = state["CH"][i]
        if len(channel) < recv_count:
            return
        for received in sub_multisets(channel, recv_count):
            new_global = state.restrict(broadcast.GLOBAL_VARS).update(
                {
                    "CH": state["CH"].set(i, channel - received),
                    "decision": state["decision"].set(i, decide(received)),
                    GHOST: ghost_step(state, _collect_pa(i)),
                }
            )
            yield Transition(new_global)

    return Action("CollectAbs", gate, transitions, params=("i",))


def _mutant_application(n: int, collect_abs: Action) -> ISApplication:
    """The one-shot IS application of Example 4.1 with a mutated
    abstraction for ``Collect`` (everything else is the correct proof)."""
    program = broadcast.make_atomic(n)
    return ISApplication(
        program=program,
        m_name=MAIN,
        eliminated=("Broadcast", "Collect"),
        invariant=broadcast.make_invariant(n),
        measure=broadcast.make_measure(),
        abstractions={"Collect": collect_abs},
    )


def _build_broken_broadcast(n: int = 2):
    app = _mutant_application(n, _mutant_collect_abs(n, decide=min))
    return app, broadcast.make_universe(app.program, n)


def _build_stuck_broadcast(n: int = 2):
    app = _mutant_application(n, _mutant_collect_abs(n, recv_count=n + 1))
    return app, broadcast.make_universe(app.program, n)


FIXTURES: Dict[str, Fixture] = {
    "broken-broadcast": Fixture(
        name="broken-broadcast",
        title="CollectAbs decides min instead of max (n=2)",
        description=(
            "The abstraction's decision function is wrong: it decides the "
            "minimum of the received values. The concrete Collect decides "
            "the maximum, so abs[Collect] fails — the concrete transition "
            "is missing from the abstraction — and the induction step "
            "composes to states outside τ_I."
        ),
        build=_build_broken_broadcast,
        expect_failing=("abs[Collect]", "I3"),
    ),
    "stuck-broadcast": Fixture(
        name="stuck-broadcast",
        title="CollectAbs waits for n+1 messages behind a gate that admits n (n=2)",
        description=(
            "The abstraction's transition relation is off by one: it "
            "receives n+1 messages where the gate only guarantees n, so "
            "at full channels the gate holds and no transition is "
            "enabled. The left-mover condition fails (non-blocking) and "
            "so does cooperation: from a gate store with no transition "
            "the measure cannot decrease."
        ),
        build=_build_stuck_broadcast,
        expect_failing=("LM[Collect]", "CO"),
    ),
}
