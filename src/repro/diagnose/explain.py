"""The explain pipeline: check, replay-confirm, shrink, report.

This is the orchestration layer behind ``repro explain`` and the
``--explain`` flag of ``verify``/``table1``: given an
:class:`~repro.core.sequentialize.ISApplication` and its (failed)
:class:`~repro.core.sequentialize.ISResult`, it walks every
counterexample of every failed condition and produces an
:class:`Explanation` — for each witness, the original, a replay
confirmation against the obligation predicate it violates, and a
delta-debugged minimized version whose every shrink step was itself
replay-confirmed. Skip markers (from ``fail_fast`` scheduling) are
carried through unshrunk: they record scheduling decisions, not
violations.

Rendering lives in ``repro.diagnose.render`` (terminal text and the
``repro.obs/failure/v1`` JSON payload); the seeded failing fixtures this
pipeline is demonstrated on live in ``repro.diagnose.fixtures``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.sequentialize import ISApplication, ISResult
from .fixtures import FIXTURES
from .replay import replay_witness
from .shrink import ShrinkStep, shrink_witness, witness_size
from .witness import Counterexample, SkippedMarker, TimeoutMarker

__all__ = ["WitnessReport", "Explanation", "explain_result", "explain_fixture"]


@dataclass(frozen=True)
class WitnessReport:
    """One counterexample, explained: original, minimized, provenance."""

    condition: str
    original: Counterexample
    minimized: Counterexample
    original_size: int
    minimized_size: int
    replay_confirmed: bool
    steps: Tuple[ShrinkStep, ...] = ()
    skipped: bool = False


@dataclass
class Explanation:
    """A full diagnosis of one IS application's check outcome."""

    target: str
    holds: bool
    conditions: Dict[str, bool] = field(default_factory=dict)
    witnesses: List[WitnessReport] = field(default_factory=list)

    @property
    def all_confirmed(self) -> bool:
        """Did every non-skipped witness replay as still-failing?"""
        return all(r.replay_confirmed for r in self.witnesses if not r.skipped)


def _explain_witness(
    app: ISApplication, condition: str, cx: Counterexample
) -> WitnessReport:
    size = witness_size(cx)
    if isinstance(cx, (SkippedMarker, TimeoutMarker)) or cx.check in (
        "skipped",
        "timeout",
        "crash",
        "interrupted",
    ):
        return WitnessReport(
            condition=condition,
            original=cx,
            minimized=cx,
            original_size=size,
            minimized_size=size,
            replay_confirmed=False,
            skipped=True,
        )

    def still_fails(candidate: Counterexample) -> bool:
        return replay_witness(app, condition, candidate)

    try:
        confirmed = bool(still_fails(cx))
    except Exception:
        confirmed = False
    if not confirmed:
        # A witness the predicate no longer rejects must not be shrunk
        # (the oracle would accept anything); report it unconfirmed as-is.
        return WitnessReport(
            condition=condition,
            original=cx,
            minimized=cx,
            original_size=size,
            minimized_size=size,
            replay_confirmed=False,
        )
    minimized, steps = shrink_witness(cx, still_fails)
    return WitnessReport(
        condition=condition,
        original=cx,
        minimized=minimized,
        original_size=size,
        minimized_size=witness_size(minimized),
        replay_confirmed=True,
        steps=tuple(steps),
    )


def explain_result(
    app: ISApplication, result: ISResult, target: str = "IS application"
) -> Explanation:
    """Explain every counterexample of ``result``, in condition-map order.

    Witness order within a condition is preserved (it is the deterministic
    capped order the checkers and the engine merge both produce), so the
    explanation is itself deterministic across scheduler backends.
    """
    explanation = Explanation(target=target, holds=result.holds)
    for name, check in result.conditions.items():
        explanation.conditions[name] = check.holds
        for cx in check.counterexamples:
            explanation.witnesses.append(_explain_witness(app, name, cx))
    return explanation


def explain_fixture(name: str, jobs: Optional[int] = None) -> Explanation:
    """Run a seeded failing fixture end to end and explain the outcome."""
    try:
        fixture = FIXTURES[name]
    except KeyError:
        known = ", ".join(sorted(FIXTURES))
        raise KeyError(f"unknown fixture {name!r} (known: {known})") from None
    app, universe = fixture.build()
    result = app.check(universe, jobs=jobs)
    return explain_result(app, result, target=f"fixture {name}: {fixture.title}")
