"""Replay a counterexample witness against the predicate it violates.

The point of a typed witness is that it can be *re-executed*: given the
:class:`~repro.core.sequentialize.ISApplication` it came from and the
condition-map key it was reported under, this module rebuilds the exact
predicate the original checker evaluated — the refinement inclusion, the
left-mover diagram, the induction step, the cooperation measure — and
re-evaluates it on the witness's stores. :func:`replay_witness` returns
``True`` iff the predicate still *fails*, which serves two purposes:

* **confirmation** — every witness the ``explain`` pipeline emits is
  re-checked, so a report never shows a stale or miscopied store;
* **shrinking** — the delta-debugging loop in ``repro.diagnose.shrink``
  uses replay as its oracle, so every accepted edit is proof-preserving.

Replay checks the *semantic* violation only: universe admissibility
(which stores the original enumeration visited, PA-context linearity) is
deliberately dropped, since a shrunk store is usually outside the
enumerated grid — that is the point. What replay does insist on is that
claimed transitions are really transitions of the claimed actions (a
witness must exhibit real behaviour, not fabricated tuples).
"""

from __future__ import annotations

from typing import Tuple

from ..core.action import Action, PendingAsync
from ..core.explore import instance_summary
from ..core.movers import _has_swapped
from ..core.multiset import Multiset
from ..core.semantics import Config
from ..core.sequentialize import ISApplication, Transition, derive_m_prime
from ..core.store import combine
from .witness import Counterexample, SkippedMarker, TimeoutMarker

__all__ = [
    "replay_witness",
    "replay_refinement",
    "replay_mover",
    "replay_program_refinement",
]


def replay_refinement(concrete: Action, abstract: Action, cx: Counterexample) -> bool:
    """Does ``cx`` still violate ``concrete ≼ abstract``?"""
    if cx.check == "gate-inclusion":
        return abstract.gate(cx.state) and not concrete.gate(cx.state)
    if cx.check == "transition-inclusion":
        if not abstract.gate(cx.state):
            return False
        return cx.transition in concrete.outcomes(
            cx.state
        ) and cx.transition not in abstract.outcomes(cx.state)
    raise ValueError(f"not a refinement witness: {cx.check!r}")


def replay_mover(l: Action, x: Action, cx: Counterexample) -> bool:
    """Does ``cx`` still violate its left-mover condition of ``l`` wrt ``x``?"""
    if cx.check == "non-blocking":
        return l.gate(cx.state) and not l.outcomes(cx.state)
    g, ll, lx = cx.global_store, cx.left_locals, cx.right_locals
    if cx.check == "forward-preservation":
        tr = cx.first_transition
        state_x = combine(g, lx)
        return (
            l.gate(combine(g, ll))
            and x.gate(state_x)
            and tr in x.outcomes(state_x)
            and not l.gate(combine(tr.new_global, ll))
        )
    if cx.check == "backward-preservation":
        tr = cx.first_transition
        state_l = combine(g, ll)
        return (
            l.gate(state_l)
            and tr in l.outcomes(state_l)
            and x.gate(combine(tr.new_global, lx))
            and not x.gate(combine(g, lx))
        )
    if cx.check == "commutation":
        tr_x, tr_l = cx.first_transition, cx.second_transition
        state_x = combine(g, lx)
        return (
            l.gate(combine(g, ll))
            and x.gate(state_x)
            and tr_x in x.outcomes(state_x)
            and tr_l in l.outcomes(combine(tr_x.new_global, ll))
            and not _has_swapped(l, x, g, ll, lx, tr_x, tr_l)
        )
    raise ValueError(f"not a mover witness: {cx.check!r}")


def _refinement_pair(app: ISApplication, condition: str) -> Tuple[Action, Action]:
    """The (concrete, abstract) action pair of a refinement-shaped
    condition entry, rebuilt exactly as the checker built it."""
    if condition == "I1":
        invariant = app.invariant
        return app.program[app.m_name], Action(
            app.m_name, invariant.gate, invariant.transitions, invariant.params
        )
    if condition == "I2":
        restricted = derive_m_prime(app.invariant, app.eliminated, name="I|E-free")
        return (
            Action(app.m_name, restricted.gate, restricted.transitions),
            Action(app.m_name, app.m_prime.gate, app.m_prime.transitions),
        )
    if condition.startswith("abs[") and condition.endswith("]"):
        name = condition[4:-1]
        return app.program[name], app.abstractions[name]
    raise ValueError(f"no refinement pair for condition {condition!r}")


def _lm_pair(app: ISApplication, cx: Counterexample) -> Tuple[Action, Action]:
    """The (α(name)-as-name, other) action pair of an LM witness, from its
    ``actors`` — the same renaming ``check_lm_pair`` applies."""
    name = cx.actors[0]
    abstraction = app.abstraction_of(name)
    l = Action(name, abstraction.gate, abstraction.transitions, abstraction.params)
    if len(cx.actors) == 1:  # non-blocking involves l alone
        return l, l
    return l, app.program[cx.actors[1]]


def _replay_i3(app: ISApplication, cx: Counterexample) -> bool:
    sigma = cx.state
    t, chosen = cx.context
    invariant = app.invariant
    if not invariant.gate(sigma):
        return False
    outcomes = invariant.outcomes(sigma)
    if t not in outcomes:
        return False
    names = set(app.eliminated)
    if cx.check == "choice":
        try:
            rechosen = app.choice(sigma, t)
        except Exception:
            return False
        return rechosen.action not in names or rechosen not in t.created
    try:
        if app.choice(sigma, t) != chosen:
            return False
    except Exception:
        return False
    abstraction = app.abstraction_of(chosen.action)
    state_a = combine(t.new_global, chosen.locals)
    if cx.check == "i3-gate":
        return not abstraction.gate(state_a)
    if cx.check == "i3-composition":
        tr_a = cx.transition
        if not abstraction.gate(state_a) or tr_a not in abstraction.outcomes(state_a):
            return False
        remaining = t.created.remove(chosen)
        composed = Transition(tr_a.new_global, remaining.union(tr_a.created))
        return composed not in set(outcomes)
    raise ValueError(f"not an I3 witness: {cx.check!r}")


def _replay_co(app: ISApplication, cx: Counterexample) -> bool:
    name = cx.actors[0]
    g, l = cx.context
    abstraction = app.abstraction_of(name)
    state = combine(g, l)
    if not abstraction.gate(state):
        return False
    before = Config(g, Multiset([PendingAsync(name, l)]))
    for tr in abstraction.outcomes(state):
        after = Config(tr.new_global, tr.created)
        if app.measure.decreases(before, after):
            return False
    return True


def replay_witness(app: ISApplication, condition: str, cx: Counterexample) -> bool:
    """Re-evaluate the predicate ``cx`` claims to violate.

    ``condition`` is the condition-map key the witness was reported under
    (``abs[Name]``, ``I1``, ``I2``, ``I3``, ``LM[Name]``, ``CO``). Returns
    ``True`` iff the violation still holds — i.e. the witness is real.
    Skip markers record scheduling, not violations, and cannot be
    replayed.
    """
    if isinstance(cx, (SkippedMarker, TimeoutMarker)) or cx.check in (
        "skipped",
        "timeout",
        "crash",
        "interrupted",
    ):
        raise ValueError(
            "skip/timeout markers record scheduling, not violations"
        )
    if cx.check in ("gate-inclusion", "transition-inclusion"):
        concrete, abstract = _refinement_pair(app, condition)
        return replay_refinement(concrete, abstract, cx)
    if cx.check in (
        "forward-preservation",
        "backward-preservation",
        "commutation",
        "non-blocking",
    ):
        l, x = _lm_pair(app, cx)
        return replay_mover(l, x, cx)
    if cx.check in ("choice", "i3-gate", "i3-composition"):
        return _replay_i3(app, cx)
    if cx.check == "cooperation":
        return _replay_co(app, cx)
    raise ValueError(f"no replay rule for check {cx.check!r}")


def replay_program_refinement(
    concrete, abstract, cx: Counterexample, max_configs=None
) -> bool:
    """Replay a program-refinement witness by re-exploring *one* instance.

    The witness context pins the ``(global, main-locals)`` initial pair,
    so replay costs two explorations of a single instance rather than the
    whole initial-store family.
    """
    g, l = cx.context
    summary_c = instance_summary(concrete, g, l, max_configs)
    summary_a = instance_summary(abstract, g, l, max_configs)
    if cx.check == "good-inclusion":
        return not summary_a.can_fail and summary_c.can_fail
    if cx.check == "trans-inclusion":
        return (
            not summary_a.can_fail
            and cx.final_global in summary_c.final_globals
            and cx.final_global not in summary_a.final_globals
        )
    raise ValueError(f"not a program-refinement witness: {cx.check!r}")
