"""Counterexample diagnostics: typed witnesses, shrinking, replay, reports.

``repro.diagnose`` turns a FAIL into something a human can act on:

* :mod:`repro.diagnose.witness` — the typed :class:`Counterexample`
  hierarchy every checker now emits (imported eagerly; it is a leaf
  module that ``repro.core`` depends on);
* :mod:`repro.diagnose.replay` — rebuilds the violated predicate from a
  witness and re-evaluates it, confirming the failure is real;
* :mod:`repro.diagnose.shrink` — a delta-debugging minimizer that edits
  witness stores/multisets and keeps only edits the replay still rejects;
* :mod:`repro.diagnose.render` — terminal + JSON renderers;
* :mod:`repro.diagnose.fixtures` — seeded-mutant protocols that fail on
  purpose, for demos, tests, and the CI artifact job;
* :mod:`repro.diagnose.explain` — the end-to-end pipeline behind the
  ``repro explain`` CLI subcommand and ``--explain`` on verify/table1.

Only the witness module is imported at package-import time: ``repro.core``
modules import witness types from here, so everything that depends on
``repro.core`` (replay, shrink, fixtures, ...) must load lazily.
"""

from __future__ import annotations

import importlib

from .witness import (
    COUNTEREXAMPLE_KEEP,
    CommutationWitness,
    Counterexample,
    GateWitness,
    MissingTransitionWitness,
    SkippedMarker,
)

__all__ = [
    "COUNTEREXAMPLE_KEEP",
    "Counterexample",
    "GateWitness",
    "MissingTransitionWitness",
    "CommutationWitness",
    "SkippedMarker",
    # lazily loaded:
    "witness_size",
    "shrink_witness",
    "replay_witness",
    "render_explanation",
    "witness_to_json",
    "explain_result",
    "explain_fixture",
    "FIXTURES",
]

_LAZY = {
    "witness_size": "shrink",
    "shrink_witness": "shrink",
    "replay_witness": "replay",
    "render_explanation": "render",
    "witness_to_json": "render",
    "explain_result": "explain",
    "explain_fixture": "explain",
    "FIXTURES": "fixtures",
}


def __getattr__(name: str):
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(f".{module}", __name__), name)
