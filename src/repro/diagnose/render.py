"""Render counterexample witnesses and explanations: terminal and JSON.

The terminal renderer uses the semantic pretty-printers of
``repro.lang.pretty`` (stores as ``var = value`` blocks, channels as
``⟅...⟆`` bags) so a Paxos witness reads like a protocol state, not a
nested ``repr``. The JSON serialization is the payload of the
``repro.obs`` failure-report exporter (schema ``repro.obs/failure/v1``)
and of ``repro explain --json``; it is self-describing — every semantic
value is tagged (``{"store": ...}``, ``{"multiset": ...}``) so external
tooling can reconstruct the structure without importing this package.
"""

from __future__ import annotations

from dataclasses import fields
from typing import List

from ..core.action import PendingAsync, Transition
from ..core.mapping import FrozenDict
from ..core.multiset import Multiset
from ..core.store import Store
from ..lang.pretty import pretty_store, pretty_value
from .witness import _META_FIELDS, Counterexample, SkippedMarker, TimeoutMarker

__all__ = ["witness_to_json", "json_value", "render_witness", "render_explanation"]


def json_value(value: object) -> object:
    """A JSON-safe, tagged encoding of a semantic value."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # JSON has no infinities; the protocols use -inf as "undecided".
        return value if value == value and abs(value) != float("inf") else repr(value)
    if isinstance(value, Store):
        return {"store": {k: json_value(v) for k, v in sorted(value.items())}}
    if isinstance(value, Multiset):
        return {
            "multiset": [
                [json_value(e), c] for e, c in sorted(value.counts(), key=repr)
            ]
        }
    if isinstance(value, FrozenDict):
        return {
            "map": [
                [json_value(k), json_value(v)]
                for k, v in sorted(value.items(), key=repr)
            ]
        }
    if isinstance(value, PendingAsync):
        return {"pending": {"action": value.action, "locals": json_value(value.locals)}}
    if isinstance(value, Transition):
        return {
            "transition": {
                "new_global": json_value(value.new_global),
                "created": json_value(value.created),
            }
        }
    if isinstance(value, tuple):
        return [json_value(v) for v in value]
    return repr(value)


def witness_to_json(cx: Counterexample) -> dict:
    """Serialize one witness: metadata plus every payload field, tagged."""
    payload = {
        f.name: json_value(getattr(cx, f.name))
        for f in fields(cx)
        if f.name not in _META_FIELDS and getattr(cx, f.name) is not None
    }
    return {
        "kind": cx.kind,
        "check": cx.check,
        "reason": cx.reason,
        "description": cx.description,
        "actors": list(cx.actors),
        "prefix": list(cx.prefix),
        "payload": payload,
    }


def _payload_lines(cx: Counterexample, indent: int) -> List[str]:
    pad = " " * indent
    lines: List[str] = []
    for f in fields(cx):
        if f.name in _META_FIELDS:
            continue
        value = getattr(cx, f.name)
        if value is None or value == ():
            continue
        if isinstance(value, Store):
            lines.append(f"{pad}{f.name}:")
            lines.append(pretty_store(value, indent + 2))
        else:
            lines.append(f"{pad}{f.name} = {pretty_value(value)}")
    return lines


def render_witness(cx: Counterexample, indent: int = 0) -> str:
    """One witness as a terminal block: description line, then payload."""
    pad = " " * indent
    lines = [f"{pad}{cx.kind}: {cx.description}"]
    if not isinstance(cx, (SkippedMarker, TimeoutMarker)):
        lines.extend(_payload_lines(cx, indent + 2))
    return "\n".join(lines)


def render_explanation(explanation) -> str:
    """A full ``repro explain`` terminal report.

    ``explanation`` is a :class:`repro.diagnose.explain.Explanation`
    (duck-typed here to keep the renderer import-light).
    """
    lines = [
        f"target: {explanation.target}",
        f"verdict: {'PASS' if explanation.holds else 'FAIL'}",
    ]
    failed = [name for name, ok in explanation.conditions.items() if not ok]
    if failed:
        lines.append(f"failed conditions: {', '.join(failed)}")
    if not explanation.witnesses:
        lines.append("no counterexamples to explain")
        return "\n".join(lines)
    for i, report in enumerate(explanation.witnesses, start=1):
        lines.append("")
        header = f"[{i}] {report.condition}"
        if report.skipped:
            lines.append(f"{header} (skipped obligation)")
            lines.append(render_witness(report.original, 2))
            continue
        confirmed = "confirmed still-failing" if report.replay_confirmed else (
            "NOT confirmed by replay"
        )
        lines.append(
            f"{header} — witness size {report.original_size} -> "
            f"{report.minimized_size} in {len(report.steps)} shrink steps, "
            f"replay {confirmed}"
        )
        lines.append(render_witness(report.minimized, 2))
        if report.steps:
            edits = ", ".join(str(step) for step in report.steps)
            lines.append(f"  shrunk by: {edits}")
    return "\n".join(lines)
