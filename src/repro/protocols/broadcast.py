"""Broadcast consensus (Figure 1 of the paper).

``n`` nodes agree on a common value: node ``i`` broadcasts ``value[i]`` to
every node's bag channel, and every node collects ``n`` values and decides
on the maximum. The safety property is that all decisions agree
(equation (1) of the paper).

This module provides the paper's artifacts at the atomic-action level:

* :func:`make_atomic` — the program of Figure 1-② (``Main``, ``Broadcast``,
  ``Collect`` as atomic actions with pending asyncs);
* :func:`make_invariant` — the invariant action ``Inv`` of Figure 1-⑤
  (all prefixes of the round-robin schedule, parameterized by the
  nondeterministic ``k`` and ``l``);
* :func:`make_collect_abs` — the abstraction ``CollectAbs`` of Figure 1-④
  (gate strengthened to "no Broadcasts pending and ≥ n messages");
* :func:`make_sequentialization` — the one-shot IS application eliminating
  ``{Broadcast, Collect}`` from ``Main``, yielding ``Main'`` (Figure 1-③);
* :func:`make_iterated_sequentializations` — the two-application proof of
  Section 5.3 (eliminate ``Broadcast`` first, then ``Collect``; the second
  ``CollectAbs`` then needs no ghost clause in its gate);
* :func:`verify` — the end-to-end pipeline (IS conditions + sequential
  spec + optional ground-truth refinement check).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.action import Action, PendingAsync, Transition
from ..core.context import GhostContext
from ..core.explore import instance_summary
from ..core.mapping import FrozenDict
from ..core.multiset import EMPTY, Multiset
from ..core.program import MAIN, Program
from ..core.refinement import check_program_refinement
from ..core.semantics import initial_config
from ..core.sequentialize import ISApplication
from ..core.store import EMPTY_STORE, Store
from ..core.universe import StoreUniverse
from ..core.wellfounded import LexicographicMeasure, total_pa_count
from .common import (
    GHOST,
    ProtocolReport,
    bag_send,
    ghost_step,
    has_pa_to,
    sub_multisets,
    timed,
)

__all__ = [
    "GLOBAL_VARS",
    "default_values",
    "initial_global",
    "make_atomic",
    "make_invariant",
    "make_collect_abs",
    "make_sequentialization",
    "make_iterated_sequentializations",
    "make_symmetry",
    "make_universe",
    "spec_holds",
    "verify",
]

GLOBAL_VARS = ("value", "decision", "CH", GHOST)

_MAIN_PA = PendingAsync(MAIN, EMPTY_STORE)


def default_values(n: int) -> Tuple[int, ...]:
    """Distinct input values; the spread makes the max non-trivial."""
    return tuple(10 * i + (i % 3) for i in range(1, n + 1))


def _nodes(n: int) -> range:
    return range(1, n + 1)


def initial_global(n: int, values: Optional[Sequence[int]] = None) -> Store:
    """Initial global store: inputs set, no decisions, empty channels, and
    the ghost containing the single PA to ``Main``."""
    values = tuple(values if values is not None else default_values(n))
    if len(values) != n:
        raise ValueError("need exactly one input value per node")
    return Store(
        {
            "value": FrozenDict({i: values[i - 1] for i in _nodes(n)}),
            "decision": FrozenDict({i: float("-inf") for i in _nodes(n)}),
            "CH": FrozenDict({i: EMPTY for i in _nodes(n)}),
            GHOST: Multiset([_MAIN_PA]),
        }
    )


def _globals(state: Store) -> Store:
    return state.restrict(GLOBAL_VARS)


def _broadcast_pa(i: int) -> PendingAsync:
    return PendingAsync("Broadcast", Store({"i": i}))


def _collect_pa(i: int) -> PendingAsync:
    return PendingAsync("Collect", Store({"i": i}))


# --------------------------------------------------------------------- #
# The atomic-action program (Figure 1-②)
# --------------------------------------------------------------------- #


def make_main(n: int) -> Action:
    """``Main``: atomically create 2n new threads (n Broadcasts, n Collects)."""

    def transitions(state: Store) -> Iterator[Transition]:
        created = [_broadcast_pa(i) for i in _nodes(n)]
        created += [_collect_pa(i) for i in _nodes(n)]
        new_global = _globals(state).set(GHOST, ghost_step(state, _MAIN_PA, created))
        yield Transition(new_global, Multiset(created))

    return Action(MAIN, lambda _s: True, transitions)


def make_broadcast(n: int) -> Action:
    """``Broadcast(i)``: atomically send ``value[i]`` to every node."""

    def transitions(state: Store) -> Iterator[Transition]:
        i = state["i"]
        message = state["value"][i]
        channels: FrozenDict = state["CH"]
        channels = channels.update(
            {j: bag_send(channels[j], message) for j in _nodes(n)}
        )
        new_global = _globals(state).update(
            {"CH": channels, GHOST: ghost_step(state, _broadcast_pa(i))}
        )
        yield Transition(new_global)

    return Action("Broadcast", lambda _s: True, transitions, params=("i",))


def _collect_transitions(n: int):
    """Shared transition enumerator of ``Collect`` and ``CollectAbs``:
    receive any ``n`` of the available messages and decide their maximum
    (blocks while fewer than ``n`` messages are available)."""

    def transitions(state: Store) -> Iterator[Transition]:
        i = state["i"]
        channel: Multiset = state["CH"][i]
        if len(channel) < n:
            return
        for received in sub_multisets(channel, n):
            new_global = _globals(state).update(
                {
                    "CH": state["CH"].set(i, channel - received),
                    "decision": state["decision"].set(i, max(received)),
                    GHOST: ghost_step(state, _collect_pa(i)),
                }
            )
            yield Transition(new_global)

    return transitions


def make_collect(n: int) -> Action:
    """``Collect(i)``: atomically receive n values and decide the maximum."""
    return Action("Collect", lambda _s: True, _collect_transitions(n), params=("i",))


def make_collect_abs(n: int, require_no_broadcasts: bool = True) -> Action:
    """``CollectAbs(i)`` (Figure 1-④): ``Collect`` with the gate
    strengthened to assert no pending ``Broadcast`` and ≥ n messages.

    With ``require_no_broadcasts=False`` this is the weaker abstraction
    sufficient for the *second* application of iterated IS (Section 5.3),
    where ``Broadcast`` has already disappeared from the action pool.
    """

    def gate(state: Store) -> bool:
        if require_no_broadcasts and has_pa_to(state, "Broadcast"):
            return False
        return len(state["CH"][state["i"]]) >= n

    return Action("CollectAbs", gate, _collect_transitions(n), params=("i",))


def make_atomic(n: int, values: Optional[Sequence[int]] = None) -> Program:
    """The atomic-action program :math:`\\mathcal{P}_2` of Figure 1-②."""
    return Program(
        {
            MAIN: make_main(n),
            "Broadcast": make_broadcast(n),
            "Collect": make_collect(n),
        },
        global_vars=GLOBAL_VARS,
    )


# --------------------------------------------------------------------- #
# IS artifacts (Figures 1-③/④/⑤)
# --------------------------------------------------------------------- #


def _broadcast_prefix(state: Store, n: int, k: int) -> FrozenDict:
    """Channels after Broadcasts 1..k executed from ``state``."""
    channels: FrozenDict = state["CH"]
    additions: Dict[int, Multiset] = {}
    for j in _nodes(n):
        channel = channels[j]
        for i in range(1, k + 1):
            channel = bag_send(channel, state["value"][i])
        additions[j] = channel
    return channels.update(additions)


def _collect_prefixes(
    channels: FrozenDict, decision: FrozenDict, n: int, start: int
) -> Iterator[Tuple[FrozenDict, FrozenDict, int]]:
    """All states after Collects ``start..l`` executed in order, for every
    ``l`` from ``start - 1`` (nothing more executed) to ``n``.

    Yields ``(channels, decision, next_collect)`` where ``next_collect`` is
    the first Collect still pending.
    """
    yield channels, decision, start
    if start > n:
        return
    channel = channels[start]
    if len(channel) < n:
        return
    for received in sub_multisets(channel, n):
        yield from _collect_prefixes(
            channels.set(start, channel - received),
            decision.set(start, max(received)),
            n,
            start + 1,
        )


def make_invariant(n: int) -> Action:
    """The invariant action ``Inv`` of Figure 1-⑤.

    Summarizes every prefix of the sequential schedule defining ``Main'``:
    Broadcasts 1..k executed (k nondeterministic), then — only when k = n —
    Collects 1..l executed (l nondeterministic). The remaining operations
    stay pending asyncs.
    """

    def transitions(state: Store) -> Iterator[Transition]:
        base_ghost = ghost_step(state, _MAIN_PA)
        for k in range(n + 1):
            channels_k = _broadcast_prefix(state, n, k)
            remaining_broadcasts = [_broadcast_pa(i) for i in range(k + 1, n + 1)]
            if k < n:
                created = Multiset(
                    remaining_broadcasts + [_collect_pa(i) for i in _nodes(n)]
                )
                new_global = _globals(state).update(
                    {"CH": channels_k, GHOST: base_ghost.union(created)}
                )
                yield Transition(new_global, created)
            else:
                for channels, decision, next_collect in _collect_prefixes(
                    channels_k, state["decision"], n, 1
                ):
                    created = Multiset(
                        [_collect_pa(i) for i in range(next_collect, n + 1)]
                    )
                    new_global = _globals(state).update(
                        {
                            "CH": channels,
                            "decision": decision,
                            GHOST: base_ghost.union(created),
                        }
                    )
                    yield Transition(new_global, created)

    return Action("Inv", lambda _s: True, transitions)


def make_measure() -> LexicographicMeasure:
    """The well-founded order of Example 4.1: the number of pending asyncs
    (Broadcast/Collect create no PAs, so every execution decreases it)."""
    return LexicographicMeasure((total_pa_count(),), name="|Ω|")


def make_sequentialization(n: int) -> ISApplication:
    """The one-shot IS application of Example 4.1: eliminate both
    ``Broadcast`` and ``Collect`` from ``Main`` in a single induction."""
    program = make_atomic(n)
    return ISApplication(
        program=program,
        m_name=MAIN,
        eliminated=("Broadcast", "Collect"),
        invariant=make_invariant(n),
        measure=make_measure(),
        abstractions={"Collect": make_collect_abs(n)},
    )


# --------------------------------------------------------------------- #
# Iterated IS (Section 5.3): eliminate Broadcast, then Collect
# --------------------------------------------------------------------- #


def make_broadcast_invariant(n: int) -> Action:
    """Invariant for the first iterated application: Broadcasts 1..k done,
    the rest (and all Collects) pending."""

    def transitions(state: Store) -> Iterator[Transition]:
        base_ghost = ghost_step(state, _MAIN_PA)
        for k in range(n + 1):
            channels_k = _broadcast_prefix(state, n, k)
            created = Multiset(
                [_broadcast_pa(i) for i in range(k + 1, n + 1)]
                + [_collect_pa(i) for i in _nodes(n)]
            )
            new_global = _globals(state).update(
                {"CH": channels_k, GHOST: base_ghost.union(created)}
            )
            yield Transition(new_global, created)

    return Action("InvBroadcast", lambda _s: True, transitions)


def make_collect_invariant(n: int) -> Action:
    """Invariant for the second iterated application: all Broadcasts done
    (that is now part of the rewritten ``Main``), Collects 1..l done."""

    def transitions(state: Store) -> Iterator[Transition]:
        base_ghost = ghost_step(state, _MAIN_PA)
        channels_n = _broadcast_prefix(state, n, n)
        for channels, decision, next_collect in _collect_prefixes(
            channels_n, state["decision"], n, 1
        ):
            created = Multiset([_collect_pa(i) for i in range(next_collect, n + 1)])
            new_global = _globals(state).update(
                {"CH": channels, "decision": decision, GHOST: base_ghost.union(created)}
            )
            yield Transition(new_global, created)

    return Action("InvCollect", lambda _s: True, transitions)


def make_iterated_sequentializations(n: int) -> List[ISApplication]:
    """The two-application proof preferred in Table 1 (#IS = 2).

    The first application eliminates ``Broadcast``; the second eliminates
    ``Collect`` from the resulting program, where ``Broadcast`` has left the
    action pool, so ``CollectAbs`` no longer needs the
    "no pending Broadcasts" gate clause (Section 5.3).
    """
    program = make_atomic(n)
    first = ISApplication(
        program=program,
        m_name=MAIN,
        eliminated=("Broadcast",),
        invariant=make_broadcast_invariant(n),
        measure=make_measure(),
    )
    after_first = first.apply_and_drop()
    second = ISApplication(
        program=after_first,
        m_name=MAIN,
        eliminated=("Collect",),
        invariant=make_collect_invariant(n),
        measure=make_measure(),
        abstractions={"Collect": make_collect_abs(n, require_no_broadcasts=False)},
    )
    return [first, second]


# --------------------------------------------------------------------- #
# Low-level implementation P1 (Figure 1-①)
# --------------------------------------------------------------------- #


def make_module(n: int):
    """The fine-grained implementation of Figure 1-①, in the mini-CIVL
    language: per-message sends, per-message blocking receives, and a
    running-maximum fold instead of the atomic ``max``.

    ``repro.reduction.analyze_module`` derives the mover types of Section
    2.1 (sends are left movers, receives right movers, local accesses both)
    and certifies the atomicity pattern, licensing the summarization of
    each procedure into the atomic actions of :func:`make_atomic`.
    """
    from ..lang import (
        Async,
        Foreach,
        If,
        MapAssign,
        MapGet,
        Module,
        Procedure,
        Receive,
        Send,
        V,
        C,
    )

    def nodes(_state: Store):
        return tuple(_nodes(n))

    main = Procedure(
        MAIN,
        (),
        body=(
            Foreach.of(
                "i",
                nodes,
                [Async.of("Broadcast", i=V("i")), Async.of("Collect", i=V("i"))],
            ),
        ),
    )
    broadcast_proc = Procedure(
        "Broadcast",
        ("i",),
        body=(
            Foreach.of(
                "j", nodes, [Send("CH", V("j"), MapGet(V("value"), V("i")))]
            ),
        ),
    )
    collect_proc = Procedure(
        "Collect",
        ("i",),
        locals={"v": None},
        body=(
            MapAssign("decision", V("i"), C(float("-inf"))),
            Foreach.of(
                "j",
                nodes,
                [
                    Receive("v", "CH", V("i")),
                    If.of(
                        V("v") > MapGet(V("decision"), V("i")),
                        [MapAssign("decision", V("i"), V("v"))],
                    ),
                ],
            ),
        ),
    )
    return Module(
        {MAIN: main, "Broadcast": broadcast_proc, "Collect": collect_proc},
        global_vars=GLOBAL_VARS,
    )


# --------------------------------------------------------------------- #
# Universe, spec, and pipeline
# --------------------------------------------------------------------- #


def make_universe(
    program: Program, n: int, values=None, max_configs=None, symmetry=None
) -> StoreUniverse:
    """Reachable-state universe of the given program under the ghost
    (linear-permission) PA context."""
    init = initial_config(initial_global(n, values))
    universe = StoreUniverse.from_reachable(
        program, [init], max_configs=max_configs, symmetry=symmetry
    )
    return universe.with_context(GhostContext(GHOST))


def make_symmetry(n: int):
    """Broadcast consensus is symmetric in the node identity only.

    Node ids index ``value``/``decision``/``CH`` and appear as the ``i``
    parameter of ``Broadcast``/``Collect``; message payloads are the raw
    input values, untouched by a node renaming.  Values are *not* a
    symmetry sort: ``Collect`` decides the maximum, an ordered comparison,
    so permuting values does not commute with the program.  With distinct
    inputs per node the initial store has a trivial stabilizer, but
    mid-protocol stores (partially drained channels, partial decisions)
    still collapse.  Group order: ``n!``.
    """
    from ..core import symmetry as sym

    node = sym.atom("node")
    return sym.SymmetrySpec(
        name=f"broadcast-n{n}",
        sorts={"node": tuple(range(1, n + 1))},
        global_rules={
            "value": sym.fmap(node, sym.ID),
            "decision": sym.fmap(node, sym.ID),
            "CH": sym.fmap(node, sym.ID),
        },
        local_rules={
            "Broadcast": {"i": node},
            "Collect": {"i": node},
            "CollectAbs": {"i": node},
        },
        ghost_var=GHOST,
    )


def spec_holds(final_global: Store, n: int, values: Sequence[int]) -> bool:
    """Equation (1): all nodes decided, on the common maximum value."""
    expected = max(values)
    decision = final_global["decision"]
    return all(decision[i] == expected for i in _nodes(n))


def verify(
    n: int = 3,
    values: Optional[Sequence[int]] = None,
    iterated: bool = True,
    ground_truth: bool = True,
    max_configs: Optional[int] = None,
    jobs: Optional[int] = None,
    fail_fast: bool = False,
    tracer=None,
    resilience=None,
    cache=None,
    warm=None,
    symmetry: bool = False,
) -> ProtocolReport:
    """Full pipeline: IS condition checks, sequential spec on the
    transformed program, and (optionally) the ground-truth refinement
    :math:`\\mathcal{P} \\preccurlyeq \\mathcal{P}'` by exhaustive
    exploration. A blown ``max_configs`` budget is reported as a BUDGET
    verdict on the report, not raised. ``symmetry=True`` quotients the IS
    universes by :func:`make_symmetry`'s node-permutation group."""
    from contextlib import nullcontext

    from ..engine.rcache import ObligationCache
    from .common import BudgetHit, ExplorationBudgetExceeded

    if warm is not None and cache is None:
        cache = warm.rcache
    cache = ObligationCache.ensure(cache)
    values = tuple(values if values is not None else default_values(n))
    parameters = {"n": n, "values": values, "iterated": iterated}
    spec = None
    if symmetry:
        spec = make_symmetry(n)
        parameters["symmetry"] = spec.name
    report = ProtocolReport("broadcast-consensus", parameters)
    instance_key = (
        "broadcast-consensus",
        repr((n, values, iterated)),
        max_configs,
        spec.token() if spec is not None else None,
    )
    original = make_atomic(n)

    def build_applications():
        if iterated:
            return make_iterated_sequentializations(n)
        return [make_sequentialization(n)]

    if warm is not None:
        applications = warm.pipeline(("apps",) + instance_key, build_applications)
    else:
        applications = build_applications()
    labels = (
        ["Broadcast", "Collect"] if iterated else ["Broadcast+Collect"]
    )

    final_program = original
    with (
        tracer.scope("broadcast-consensus")
        if tracer is not None
        else nullcontext()
    ):
        for label, application in zip(labels, applications):
            try:
                with timed(report, f"IS[{label}]", tracer=tracer):

                    def build_universe(application=application):
                        return make_universe(
                            application.program,
                            n,
                            values,
                            max_configs=max_configs,
                            symmetry=spec,
                        )

                    if warm is not None:
                        universe = warm.universe(
                            ("universe", label) + instance_key,
                            build_universe,
                        )
                    else:
                        universe = build_universe()
                    with (
                        tracer.scope(f"IS[{label}]")
                        if tracer is not None
                        else nullcontext()
                    ):
                        result = application.check(
                            universe,
                            jobs=jobs,
                            fail_fast=fail_fast,
                            tracer=tracer,
                            resilience=resilience,
                            checkpoint_label=f"broadcast-consensus-IS-{label}",
                            cache=cache,
                        )
            except ExplorationBudgetExceeded as exc:
                report.budget = BudgetHit(f"IS[{label}]", exc.explored, exc.limit)
                return report
            except KeyboardInterrupt:
                report.interrupted = True
                return report
            report.is_results.append((label, result))
            report.explain_targets.append((label, application, universe))
            if result.interrupted:
                report.interrupted = True
                return report
            final_program = application.apply_and_drop()

        try:
            with timed(report, "sequential spec", tracer=tracer):

                def compute_spec(final_program=final_program):
                    summary = instance_summary(
                        final_program,
                        initial_global(n, values),
                        max_configs=max_configs,
                    )
                    return (
                        (not summary.can_fail)
                        and bool(summary.final_globals)
                        and all(
                            spec_holds(final, n, values)
                            for final in summary.final_globals
                        )
                    )

                if warm is not None:
                    report.spec_ok = warm.stage(
                        ("spec",) + instance_key, compute_spec
                    )
                else:
                    report.spec_ok = compute_spec()
        except ExplorationBudgetExceeded as exc:
            report.budget = BudgetHit("sequential spec", exc.explored, exc.limit)
            return report
        except KeyboardInterrupt:
            report.interrupted = True
            return report

        if ground_truth:
            try:
                with timed(report, "ground truth", tracer=tracer):

                    def compute_ground_truth(final_program=final_program):
                        return check_program_refinement(
                            original,
                            final_program,
                            [(initial_global(n, values), EMPTY_STORE)],
                            max_configs=max_configs,
                            name="P2 ≼ P' (exhaustive)",
                        )

                    if warm is not None:
                        report.ground_truth = warm.stage(
                            ("ground-truth",) + instance_key,
                            compute_ground_truth,
                        )
                    else:
                        report.ground_truth = compute_ground_truth()
            except ExplorationBudgetExceeded as exc:
                report.budget = BudgetHit("ground truth", exc.explored, exc.limit)
            except KeyboardInterrupt:
                report.interrupted = True
    return report
