"""Ping-Pong (Section 5.3).

A Ping process sends increasing numbers ``1..B`` to a Pong process and
expects each number to be acknowledged back. The verified assertions state
that Pong receives increasing numbers and Ping receives correct
acknowledgments; both live in the gates of the message-handler actions, so
IS (which preserves failures) verifies them: the sequentialization cannot
fail, hence neither can the original program.

The sequentialization makes the alternation explicit: in round ``x``,
``Ping(x)`` sends, ``Pong(x)`` acknowledges, ``PingAwait(x)`` checks the
acknowledgment and starts round ``x + 1``. Because handlers *replace* their
own PA with the next round's, the cooperation measure is a PA *potential*
(remaining work per pending async) rather than a plain count.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.action import Action, PendingAsync, Transition
from ..core.multiset import EMPTY, Multiset
from ..core.program import MAIN, Program
from ..core.schedule import choice_from_policy, invariant_from_policy, policy_by_key
from ..core.sequentialize import ISApplication
from ..core.store import EMPTY_STORE, Store
from ..core.wellfounded import LexicographicMeasure, pa_potential
from .common import GHOST, ProtocolReport, ghost_step, verify_protocol

__all__ = [
    "GLOBAL_VARS",
    "initial_global",
    "make_atomic",
    "make_abstractions",
    "make_measure",
    "make_sequentialization",
    "make_module",
    "spec_holds",
    "verify",
]

GLOBAL_VARS = ("ping_ch", "pong_ch", "last_ping", "last_pong", GHOST)

_MAIN_PA = PendingAsync(MAIN, EMPTY_STORE)


def _ping(x: int) -> PendingAsync:
    return PendingAsync("Ping", Store({"x": x}))


def _pong(x: int) -> PendingAsync:
    return PendingAsync("Pong", Store({"x": x}))


def _await(x: int) -> PendingAsync:
    return PendingAsync("PingAwait", Store({"x": x}))


def initial_global(rounds: int) -> Store:
    """Empty channels, no rounds completed, ghost = {Main}."""
    del rounds  # the bound lives in the actions, not the store
    return Store(
        {
            "ping_ch": EMPTY,
            "pong_ch": EMPTY,
            "last_ping": 0,
            "last_pong": 0,
            GHOST: Multiset([_MAIN_PA]),
        }
    )


def _globals(state: Store) -> Store:
    return state.restrict(GLOBAL_VARS)


def make_atomic(rounds: int) -> Program:
    """The atomic-action Ping-Pong program.

    * ``Main`` spawns ``Ping(1)`` and ``Pong(1)``.
    * ``Ping(x)`` sends ``x`` and spawns ``PingAwait(x)``.
    * ``Pong(x)`` receives a number, asserts it equals ``x`` (increasing
      numbers), acknowledges it, and continues as ``Pong(x + 1)``.
    * ``PingAwait(x)`` receives an acknowledgment, asserts it equals ``x``,
      and continues as ``Ping(x + 1)``.
    """

    def main_transitions(state: Store) -> Iterator[Transition]:
        created = [_ping(1), _pong(1)]
        yield Transition(
            _globals(state).set(GHOST, ghost_step(state, _MAIN_PA, created)),
            Multiset(created),
        )

    def ping_transitions(state: Store) -> Iterator[Transition]:
        x = state["x"]
        created = [_await(x)]
        new_global = _globals(state).update(
            {
                "pong_ch": state["pong_ch"].add(x),
                GHOST: ghost_step(state, _ping(x), created),
            }
        )
        yield Transition(new_global, Multiset(created))

    def pong_gate(state: Store) -> bool:
        x = state["x"]
        return all(y == x for y in state["pong_ch"].support())

    def pong_transitions(state: Store) -> Iterator[Transition]:
        x = state["x"]
        for y in state["pong_ch"].support():
            created = [_pong(x + 1)] if x < rounds else []
            new_global = _globals(state).update(
                {
                    "pong_ch": state["pong_ch"].remove(y),
                    "ping_ch": state["ping_ch"].add(y),
                    "last_pong": y,
                    GHOST: ghost_step(state, _pong(x), created),
                }
            )
            yield Transition(new_global, Multiset(created))

    def await_gate(state: Store) -> bool:
        x = state["x"]
        return all(y == x for y in state["ping_ch"].support())

    def await_transitions(state: Store) -> Iterator[Transition]:
        x = state["x"]
        for y in state["ping_ch"].support():
            created = [_ping(x + 1)] if x < rounds else []
            new_global = _globals(state).update(
                {
                    "ping_ch": state["ping_ch"].remove(y),
                    "last_ping": y,
                    GHOST: ghost_step(state, _await(x), created),
                }
            )
            yield Transition(new_global, Multiset(created))

    return Program(
        {
            MAIN: Action(MAIN, lambda _s: True, main_transitions),
            "Ping": Action("Ping", lambda _s: True, ping_transitions, ("x",)),
            "Pong": Action("Pong", pong_gate, pong_transitions, ("x",)),
            "PingAwait": Action(
                "PingAwait", await_gate, await_transitions, ("x",)
            ),
        },
        global_vars=GLOBAL_VARS,
    )


def make_abstractions(rounds: int, program: Program):
    """Left-mover abstractions: the receiving handlers additionally assert
    that their message has already arrived (making them non-blocking)."""

    def pong_abs_gate(state: Store) -> bool:
        return len(state["pong_ch"]) >= 1 and program["Pong"].gate(state)

    def await_abs_gate(state: Store) -> bool:
        return len(state["ping_ch"]) >= 1 and program["PingAwait"].gate(state)

    return {
        "Pong": Action(
            "PongAbs", pong_abs_gate, program["Pong"].transitions, ("x",)
        ),
        "PingAwait": Action(
            "PingAwaitAbs", await_abs_gate, program["PingAwait"].transitions, ("x",)
        ),
    }


def make_measure(rounds: int) -> LexicographicMeasure:
    """PA potential: remaining handler executions of each pending async.

    ``Ping(x)`` needs the send plus the remaining rounds; ``PingAwait(x)``
    one less; ``Pong(x)`` its remaining receives. Every action strictly
    decreases the total potential.
    """

    def weight(pending: PendingAsync) -> int:
        x = pending.locals.get("x", 0)
        remaining_rounds = rounds - x
        if pending.action == "Ping":
            return 2 * remaining_rounds + 2
        if pending.action == "PingAwait":
            return 2 * remaining_rounds + 1
        if pending.action == "Pong":
            return remaining_rounds + 1
        return 1  # Main

    return LexicographicMeasure((pa_potential(weight),), name="pingpong potential")


_PHASE = {"Ping": 0, "Pong": 1, "PingAwait": 2}


def make_policy(rounds: int):
    """Round-robin schedule: ``Ping(x)``, ``Pong(x)``, ``PingAwait(x)``."""
    return policy_by_key(
        ("Ping", "Pong", "PingAwait"),
        lambda _g, p: (p.locals["x"], _PHASE[p.action]),
    )


def make_sequentialization(rounds: int) -> ISApplication:
    """One IS application eliminating all three handler actions from Main
    (Table 1 reports #IS = 1 for Ping-Pong)."""
    program = make_atomic(rounds)
    policy = make_policy(rounds)
    return ISApplication(
        program=program,
        m_name=MAIN,
        eliminated=("Ping", "Pong", "PingAwait"),
        invariant=invariant_from_policy(program, MAIN, policy),
        measure=make_measure(rounds),
        choice=choice_from_policy(policy),
        abstractions=make_abstractions(rounds, program),
    )


def initial_impl_global(rounds: int) -> Store:
    """Initial global store of the fine-grained layer (channels as one
    two-entry map ``CHS``)."""
    from ..core.mapping import FrozenDict

    del rounds
    return Store(
        {
            "CHS": FrozenDict({"ping": EMPTY, "pong": EMPTY}),
            "last_ping": 0,
            "last_pong": 0,
            GHOST: Multiset([_MAIN_PA]),
        }
    )


def make_module(rounds: int):
    """The fine-grained implementation in the mini-CIVL language."""
    from ..lang import (
        Assert,
        Assign,
        Async,
        If,
        Module,
        Procedure,
        Receive,
        Send,
        V,
        C,
        MapGet,
    )

    # Channels at this layer are a 2-entry map {"ping": ..., "pong": ...}
    # stored in one global, matching the per-direction bags of the atomic
    # layer via the layer refinement's variable correspondence.
    main = Procedure(
        MAIN,
        (),
        body=(Async.of("Ping", x=C(1)), Async.of("Pong", x=C(1))),
    )
    ping = Procedure(
        "Ping",
        ("x",),
        body=(
            Send("CHS", C("pong"), V("x")),
            Async.of("PingAwait", x=V("x")),
        ),
        linear_class="ping",
    )
    pong = Procedure(
        "Pong",
        ("x",),
        locals={"y": None},
        body=(
            Receive("y", "CHS", C("pong")),
            Assert(V("y") == V("x")),
            Assign("last_pong", V("y")),
            Send("CHS", C("ping"), V("y")),
            If.of(V("x") < C(rounds), [Async.of("Pong", x=V("x") + C(1))]),
        ),
        linear_class="pong",
    )
    ping_await = Procedure(
        "PingAwait",
        ("x",),
        locals={"y": None},
        body=(
            Receive("y", "CHS", C("ping")),
            Assert(V("y") == V("x")),
            Assign("last_ping", V("y")),
            If.of(V("x") < C(rounds), [Async.of("Ping", x=V("x") + C(1))]),
        ),
        linear_class="ping",
    )
    return Module(
        {MAIN: main, "Ping": ping, "Pong": pong, "PingAwait": ping_await},
        global_vars=("CHS", "last_ping", "last_pong", GHOST),
    )


def spec_holds(final_global: Store, rounds: int) -> bool:
    """All rounds completed, all messages consumed."""
    return (
        final_global["last_ping"] == rounds
        and final_global["last_pong"] == rounds
        and len(final_global["ping_ch"]) == 0
        and len(final_global["pong_ch"]) == 0
    )


def verify(
    rounds: int = 3,
    ground_truth: bool = True,
    max_configs: Optional[int] = None,
    jobs: Optional[int] = None,
    fail_fast: bool = False,
    tracer=None,
    resilience=None,
    cache=None,
    warm=None,
    symmetry: bool = False,
) -> ProtocolReport:
    """Full pipeline for Ping-Pong.

    Ping-Pong has two distinguished roles and no replicated identity, so
    there is no nontrivial permutation group to quotient by; ``symmetry``
    is accepted for pipeline uniformity and ignored."""
    application = make_sequentialization(rounds)
    return verify_protocol(
        "ping-pong",
        {"rounds": rounds},
        application.program,
        [("Ping+Pong+Await", application)],
        initial_global(rounds),
        lambda final: spec_holds(final, rounds),
        ground_truth=ground_truth,
        max_configs=max_configs,
        jobs=jobs,
        fail_fast=fail_fast,
        tracer=tracer,
        resilience=resilience,
        cache=cache,
        warm=warm,
    )
