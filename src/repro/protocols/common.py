"""Shared infrastructure for the case-study protocols (Section 5).

All protocols follow the paper's modelling conventions:

* protocol state lives in map-valued globals
  (:class:`~repro.core.mapping.FrozenDict`),
* message channels are bags (:class:`~repro.core.multiset.Multiset`) unless
  a protocol explicitly uses a FIFO queue,
* a ghost global ``pendingAsyncs`` mirrors the configuration's PA multiset
  :math:`\\Omega` (Figure 4(b)); every action updates it via
  :func:`ghost_step`, and gates of IS abstractions may refer to it
  (e.g. ``CollectAbs`` in Figure 1-④ asserts
  :math:`\\forall j.\\ \\mathtt{Broadcast}(j) \\notin \\Omega`).

The module also provides the common report type returned by each protocol's
``verify`` entry point.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.action import PendingAsync
from ..core.explore import ExplorationBudgetExceeded
from ..core.multiset import EMPTY, Multiset
from ..core.refinement import CheckResult
from ..core.sequentialize import ISResult
from ..core.store import Store

__all__ = [
    "GHOST",
    "ghost_step",
    "ghost_of",
    "has_pa_to",
    "count_pas_to",
    "sub_multisets",
    "bag_send",
    "BudgetHit",
    "ProtocolReport",
    "verify_protocol",
    "timed",
]

#: Conventional name of the ghost pending-async variable.
GHOST = "pendingAsyncs"


def ghost_of(state: Store) -> Multiset:
    """The ghost PA multiset of a (combined or global) store."""
    return state[GHOST]


def ghost_step(
    state: Store,
    self_pa: Optional[PendingAsync],
    created: Iterable[PendingAsync] = (),
) -> Multiset:
    """Ghost update for one action execution: remove the executing PA, add
    the created ones.

    Removal is tolerant (no-op when absent) so that actions remain total on
    the inconsistent stores enumerated during mover checks; along real
    executions the ghost is exact.
    """
    ghost = ghost_of(state)
    if self_pa is not None and self_pa in ghost:
        ghost = ghost.remove(self_pa)
    return ghost.union(Multiset(created))


def has_pa_to(state: Store, action_name: str) -> bool:
    """True if the ghost contains any PA to ``action_name``."""
    return any(p.action == action_name for p in ghost_of(state).support())


def count_pas_to(state: Store, action_name: str) -> int:
    """Number of ghost PAs to ``action_name`` (with multiplicity)."""
    return sum(
        count for p, count in ghost_of(state).counts() if p.action == action_name
    )


def sub_multisets(bag: Multiset, size: int) -> Iterator[Multiset]:
    """All distinct sub-multisets of ``bag`` with exactly ``size`` elements.

    Used to enumerate the outcomes of a blocking ``receive(k)`` over a bag
    channel: any ``k`` of the available messages may be delivered.
    """
    items: List[Tuple[object, int]] = sorted(bag.counts(), key=lambda kv: repr(kv[0]))

    def recurse(index: int, remaining: int) -> Iterator[Dict[object, int]]:
        if remaining == 0:
            yield {}
            return
        if index >= len(items):
            return
        element, available = items[index]
        max_take = min(available, remaining)
        for take in range(max_take + 1):
            for rest in recurse(index + 1, remaining - take):
                if take:
                    rest = dict(rest)
                    rest[element] = take
                yield rest

    if size > len(bag):
        return
    for counts in recurse(0, size):
        yield Multiset.from_counts(counts)


def bag_send(channel: Multiset, message) -> Multiset:
    """Append a message to a bag channel."""
    return channel.add(message)


@dataclass(frozen=True)
class BudgetHit:
    """A pipeline stage that blew its exploration budget.

    Wraps the :class:`~repro.core.explore.ExplorationBudgetExceeded` the
    stage raised: ``stage`` is the pipeline stage label (``IS[label]``,
    ``sequential spec``, ``ground truth``), ``explored``/``limit`` come
    from the exception. Reports carrying one render as BUDGET — neither
    verified nor refuted — instead of a traceback.
    """

    stage: str
    explored: int
    limit: int

    def __str__(self) -> str:
        return (
            f"{self.stage}: budget exceeded after {self.explored} "
            f"configurations (limit {self.limit})"
        )


@dataclass
class ProtocolReport:
    """Result of a protocol's full verification pipeline.

    ``ok`` requires every IS application to pass, the sequential spec to
    hold on the final program, and (when computed) the ground-truth
    refinement check to pass. A report whose pipeline blew its
    ``max_configs`` budget carries a :class:`BudgetHit` and renders as
    BUDGET: it neither passed nor failed, it ran out of room.

    ``explain_targets`` records, per IS check, the application and universe
    it ran against — everything ``repro.diagnose.explain_result`` needs to
    replay and shrink the counterexamples of a failed report.

    Status forms a small lattice — ``OK`` / ``FAILED`` / ``BUDGET`` /
    ``TIMEOUT`` / ``INTERRUPTED``: a genuine counterexample anywhere wins
    (``FAILED``), a blown budget reports before disruption kinds, and
    ``TIMEOUT``/``INTERRUPTED`` mark runs that are *inconclusive* —
    obligations hit their deadline or the run was stopped — rather than
    refuted. ``ok`` is ``True`` only for a clean, complete ``OK``.
    """

    name: str
    parameters: Dict[str, object]
    is_results: List[Tuple[str, ISResult]] = field(default_factory=list)
    spec_ok: Optional[bool] = None
    ground_truth: Optional[CheckResult] = None
    timings: Dict[str, float] = field(default_factory=dict)
    budget: Optional[BudgetHit] = None
    interrupted: bool = False
    #: True when the universe was *sampled* (random walks) rather than
    #: exhaustively harvested: a PASS is then a bounded check, not a
    #: proof. Surfaced by ``table1`` and the ``repro serve`` job payloads
    #: so a sampled PASS can't masquerade as an exhaustive one.
    bounded: bool = False
    explain_targets: List[Tuple[str, object, object]] = field(
        default_factory=list, compare=False, repr=False
    )

    @property
    def num_is_applications(self) -> int:
        return len(self.is_results)

    @property
    def ok(self) -> bool:
        if self.budget is not None or self.interrupted:
            return False
        if any(not result.holds for _, result in self.is_results):
            return False
        if self.spec_ok is False:
            return False
        if self.ground_truth is not None and not self.ground_truth.holds:
            return False
        return True

    @property
    def _genuinely_failed(self) -> bool:
        """A real refutation somewhere — outranks every disruption."""
        if any(
            any(r.verdict == "FAIL" for r in result.conditions.values())
            for _, result in self.is_results
        ):
            return True
        if self.spec_ok is False:
            return True
        if self.ground_truth is not None and not self.ground_truth.holds:
            return True
        return False

    @property
    def timed_out(self) -> bool:
        """Some obligation hit its deadline (or crashed/was skipped) and
        nothing genuinely failed — the pipeline is inconclusive."""
        return any(result.timed_out for _, result in self.is_results)

    @property
    def status(self) -> str:
        """One of ``OK``/``FAILED``/``BUDGET``/``TIMEOUT``/``INTERRUPTED``
        (see the class docstring for the ordering)."""
        if self.budget is not None:
            return "BUDGET"
        if self._genuinely_failed:
            return "FAILED"
        if self.interrupted:
            return "INTERRUPTED"
        if self.timed_out:
            return "TIMEOUT"
        return "OK" if self.ok else "FAILED"

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    def summary(self) -> str:
        parts = [f"{self.name}: {self.status} "
                 f"({self.num_is_applications} IS applications,"
                 f" {self.total_time:.2f}s)"]
        for label, result in self.is_results:
            if result.holds:
                verdict = "PASS"
            elif result.interrupted:
                verdict = "INTERRUPTED"
            elif result.timed_out:
                verdict = "TIMEOUT"
            else:
                verdict = "FAIL"
            parts.append(f"  IS[{label}]: {verdict}")
        if self.spec_ok is not None:
            parts.append(f"  sequential spec: {'PASS' if self.spec_ok else 'FAIL'}")
        if self.ground_truth is not None:
            parts.append(
                f"  ground-truth refinement: "
                f"{'PASS' if self.ground_truth.holds else 'FAIL'}"
            )
        if self.budget is not None:
            parts.append(f"  {self.budget}")
        if self.interrupted:
            parts.append("  interrupted: partial report (salvaged outcomes)")
        if self.bounded:
            parts.append(
                "  bounded: sampled universe — a PASS is not exhaustive"
            )
        return "\n".join(parts)


def verify_protocol(
    name: str,
    parameters: Dict[str, object],
    original,
    applications,
    initial_global: Store,
    spec_fn: Callable[[Store], bool],
    ground_truth: bool = True,
    max_configs: Optional[int] = None,
    jobs: Optional[int] = None,
    fail_fast: bool = False,
    tracer=None,
    resilience=None,
    cache=None,
    warm=None,
    symmetry=None,
) -> ProtocolReport:
    """Generic protocol pipeline: check each IS application over the
    reachable universe (under the ghost PA context), then the sequential
    spec on the final program, then (optionally) ground-truth refinement.

    ``applications`` is a list of ``(label, ISApplication)`` pairs whose
    programs are already chained (each application's program is the output
    of the previous one). ``jobs`` selects the obligation-discharge backend
    (see ``repro.engine.scheduler``); verdicts are backend-independent.
    ``fail_fast`` skips obligations — transitively — once a dependency
    failed; skipped conditions report an explicit ``skipped``
    counterexample instead of running. ``tracer`` (a
    :class:`repro.obs.Tracer`) records phase spans for every pipeline
    stage and obligation spans for every IS check, scoped under the
    protocol name and IS label; it never affects verdicts or reports.

    ``resilience`` (a
    :class:`~repro.engine.resilience.ResilienceConfig`) arms
    per-obligation deadlines, crash retries, and checkpoint/resume for
    every IS check; each application journals under the label
    ``{protocol}-IS-{label}``. A ``KeyboardInterrupt`` anywhere in the
    pipeline yields a *partial* report (``interrupted=True``,
    ``status == "INTERRUPTED"``) carrying everything completed — and
    journaled — before the stop, instead of unwinding with a traceback.

    ``cache`` (an :class:`~repro.engine.rcache.ObligationCache` or a
    directory path) arms the persistent result cache for every IS check:
    obligations whose dependency fingerprints are unchanged are seeded
    from the store instead of executed (``ISResult.cached_keys``), and
    fresh results are stored back. One cache instance is shared across
    the pipeline's applications.

    ``warm`` (a :class:`~repro.engine.warm.WarmState`) marks this run as
    one request against a resident daemon: the per-run process-cache
    reset is skipped (interner/evaluation/columnar memos stay hot), the
    store universes and IS applications are reused from — and stored
    into — the warm maps keyed by the full instance identity, the
    sequential-spec and ground-truth stages are memoized per instance,
    and ``warm.rcache`` supplies the result cache unless ``cache`` is
    given explicitly. Verdicts are warm/cold-identical (see
    ``repro.engine.warm`` for the soundness argument and
    ``tests/serve/test_warm.py`` for the proof-by-test).

    ``symmetry`` (a :class:`~repro.core.symmetry.SymmetrySpec`) runs every
    IS check over the orbit-quotiented universe: the reachability
    exploration canonicalizes configurations on the fly, so both the BFS
    and the harvested universe shrink by up to the group order. Sound for
    equivariant protocols (the only ones that declare a spec — see
    DESIGN.md); the sequential-spec and ground-truth stages run
    unquotiented, since they explore the transformed program directly.
    The symmetry identity is part of the warm-state instance key and of
    every cache fingerprint, so quotiented runs never alias unquotiented
    ones.
    """
    from ..core.cache import reset_process_cache
    from ..core.context import GhostContext
    from ..core.explore import instance_summary
    from ..core.refinement import check_program_refinement
    from ..core.semantics import initial_config
    from ..core.store import EMPTY_STORE
    from ..core.universe import StoreUniverse
    from ..engine.rcache import ObligationCache

    # Each verification run starts from empty process-level caches: the
    # intern table, the evaluation memos, and the columnar tables all grow
    # monotonically during a run, and letting them persist across runs
    # accumulated the previous protocols' stores forever (the historical
    # module-level ``combine`` lru_cache had exactly this leak). A warm
    # (daemon) run deliberately keeps them: the tables are
    # content-addressed and the daemon's request mix revisits the same
    # instances, so residency is a bounded win, not a leak.
    if warm is None:
        reset_process_cache()
    elif cache is None:
        cache = warm.rcache
    cache = ObligationCache.ensure(cache)
    report = ProtocolReport(name, dict(parameters))
    instance_key = (
        name,
        repr(sorted(parameters.items())),
        max_configs,
        symmetry.token() if symmetry is not None else None,
    )
    if warm is not None:
        applications = warm.pipeline(
            ("apps",) + instance_key, lambda: list(applications)
        )
    final_program = original
    with tracer.scope(name) if tracer is not None else nullcontext():
        for label, application in applications:
            try:
                with timed(report, f"IS[{label}]", tracer=tracer):

                    def build_universe(application=application):
                        return StoreUniverse.from_reachable(
                            application.program,
                            [initial_config(initial_global)],
                            max_configs=max_configs,
                            symmetry=symmetry,
                        ).with_context(GhostContext(GHOST))

                    if warm is not None:
                        universe = warm.universe(
                            ("universe", label) + instance_key,
                            build_universe,
                        )
                    else:
                        universe = build_universe()
                    with (
                        tracer.scope(f"IS[{label}]")
                        if tracer is not None
                        else nullcontext()
                    ):
                        result = application.check(
                            universe,
                            jobs=jobs,
                            fail_fast=fail_fast,
                            tracer=tracer,
                            resilience=resilience,
                            checkpoint_label=f"{name}-IS-{label}",
                            cache=cache,
                        )
            except ExplorationBudgetExceeded as exc:
                report.budget = BudgetHit(f"IS[{label}]", exc.explored, exc.limit)
                return report
            except KeyboardInterrupt:
                report.interrupted = True
                return report
            report.is_results.append((label, result))
            report.explain_targets.append((label, application, universe))
            if result.interrupted:
                report.interrupted = True
                return report
            final_program = application.apply_and_drop()

        try:
            with timed(report, "sequential spec", tracer=tracer):

                def compute_spec(final_program=final_program):
                    summary = instance_summary(
                        final_program, initial_global, max_configs=max_configs
                    )
                    return (
                        not summary.can_fail
                        and bool(summary.final_globals)
                        and all(
                            spec_fn(final) for final in summary.final_globals
                        )
                    )

                if warm is not None:
                    report.spec_ok = warm.stage(
                        ("spec",) + instance_key, compute_spec
                    )
                else:
                    report.spec_ok = compute_spec()
        except ExplorationBudgetExceeded as exc:
            report.budget = BudgetHit("sequential spec", exc.explored, exc.limit)
            return report
        except KeyboardInterrupt:
            report.interrupted = True
            return report

        if ground_truth:
            try:
                with timed(report, "ground truth", tracer=tracer):

                    def compute_ground_truth(final_program=final_program):
                        return check_program_refinement(
                            original,
                            final_program,
                            [(initial_global, EMPTY_STORE)],
                            max_configs=max_configs,
                            name="P ≼ P' (exhaustive)",
                        )

                    if warm is not None:
                        report.ground_truth = warm.stage(
                            ("ground-truth",) + instance_key,
                            compute_ground_truth,
                        )
                    else:
                        report.ground_truth = compute_ground_truth()
            except ExplorationBudgetExceeded as exc:
                report.budget = BudgetHit("ground truth", exc.explored, exc.limit)
            except KeyboardInterrupt:
                report.interrupted = True
    return report


class timed:
    """Context manager recording elapsed wall-clock into a report's timings.

    When a ``tracer`` is supplied, the same interval is also recorded as a
    ``phase`` span (at the tracer's current scope), so pipeline stages —
    ``IS[label]``, ``sequential spec``, ``ground truth`` — frame the
    obligation spans in an exported trace.

    >>> with timed(report, "IS"):
    ...     run_checks()
    """

    def __init__(self, report: ProtocolReport, label: str, tracer=None):
        self.report = report
        self.label = label
        self.tracer = tracer

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self.report.timings[self.label] = (
            self.report.timings.get(self.label, 0.0) + elapsed
        )
        if self.tracer is not None:
            from ..obs.tracer import Span

            self.tracer.add(
                Span(
                    name=self.label,
                    category="phase",
                    start=self._start,
                    duration=elapsed,
                    pid=os.getpid(),
                )
            )
